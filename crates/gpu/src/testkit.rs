//! Small synthetic workloads for tests, docs and calibration.
//!
//! These exercise the simulator's major paths with controlled shapes:
//! pure compute (with or without serial dependency chains), streaming
//! memory, random gathers and atomic contention. The gSuite GNN kernels in
//! `gsuite-core` are the real workloads; these exist so the simulator can
//! be validated in isolation.

use crate::isa::{TraceBuf, TraceBuilder};
use crate::workload::{Grid, KernelWorkload};

/// Pure-ALU workload: every warp issues `ops` FP32 instructions and one
/// final control instruction.
#[derive(Debug, Clone)]
pub struct ComputeWorkload {
    ctas: u64,
    warps_per_cta: u32,
    ops: usize,
    seed: u64,
    serial: bool,
}

impl ComputeWorkload {
    /// `ctas` x `warps_per_cta` warps each running `ops` FP32 ops.
    pub fn new(ctas: u64, warps_per_cta: u32, ops: usize, seed: u64) -> Self {
        ComputeWorkload {
            ctas,
            warps_per_cta,
            ops,
            seed,
            serial: false,
        }
    }

    /// When `true`, each op reads the previous op's result (a latency-bound
    /// dependency chain); when `false`, ops are independent
    /// (throughput-bound).
    pub fn serial(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }
}

impl KernelWorkload for ComputeWorkload {
    fn name(&self) -> String {
        format!("compute{}", if self.serial { "-serial" } else { "" })
    }

    fn grid(&self) -> Grid {
        Grid::new(self.ctas, self.warps_per_cta)
    }

    fn trace_into(&self, buf: &mut TraceBuf, _cta: u64, _warp: u32) {
        let _ = self.seed;
        let mut tb = TraceBuilder::on(buf, 32);
        let mut prev = None;
        for _ in 0..self.ops {
            prev = Some(match (self.serial, prev) {
                (true, Some(p)) => tb.fp32(&[p]),
                _ => tb.fp32(&[]),
            });
        }
        tb.control();
    }
}

/// Streaming-memory workload: each warp reads `bytes_per_warp` of global
/// memory with perfectly coalesced loads, touching distinct addresses per
/// warp (no reuse — a DRAM bandwidth test).
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    ctas: u64,
    warps_per_cta: u32,
    bytes_per_warp: u64,
}

impl StreamWorkload {
    /// `ctas` x `warps_per_cta` warps each streaming `bytes_per_warp` bytes.
    pub fn new(ctas: u64, warps_per_cta: u32, bytes_per_warp: u64) -> Self {
        StreamWorkload {
            ctas,
            warps_per_cta,
            bytes_per_warp,
        }
    }
}

impl KernelWorkload for StreamWorkload {
    fn name(&self) -> String {
        "stream".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::new(self.ctas, self.warps_per_cta)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let warp_id = cta * self.warps_per_cta as u64 + warp as u64;
        let base = warp_id * self.bytes_per_warp;
        let mut tb = TraceBuilder::on(buf, 32);
        let mut offset = 0u64;
        while offset < self.bytes_per_warp {
            let r = tb.load_lanes(base + offset, 4);
            tb.fp32(&[r]);
            offset += 32 * 4;
        }
        tb.control();
    }
}

/// Random-gather workload over a table of `table_bytes` bytes: each warp
/// performs `gathers` loads at pseudo-random per-lane addresses — the
/// access pattern of `indexSelect` on a shuffled graph.
#[derive(Debug, Clone)]
pub struct GatherWorkload {
    ctas: u64,
    warps_per_cta: u32,
    gathers: usize,
    table_bytes: u64,
    seed: u64,
}

impl GatherWorkload {
    /// `ctas` x `warps_per_cta` warps each issuing `gathers` random gathers
    /// into a `table_bytes`-byte table.
    pub fn new(ctas: u64, warps_per_cta: u32, gathers: usize, table_bytes: u64, seed: u64) -> Self {
        GatherWorkload {
            ctas,
            warps_per_cta,
            gathers,
            table_bytes,
            seed,
        }
    }
}

impl KernelWorkload for GatherWorkload {
    fn name(&self) -> String {
        "gather".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::new(self.ctas, self.warps_per_cta)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let mut state = self
            .seed
            .wrapping_add(cta.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(warp as u64);
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let slots = (self.table_bytes / 4).max(1);
        let mut tb = TraceBuilder::on(buf, 32);
        for _ in 0..self.gathers {
            let idx = tb.int(&[]);
            let v = tb.load_gather_with(4, &[idx], |_| (next() % slots) * 4);
            tb.fp32(&[v]);
        }
        tb.control();
    }
}

/// Atomic-contention workload: every warp hammers atomics onto a target
/// array of `targets` distinct words; `targets = 1` is the pathological
/// hot-spot case.
#[derive(Debug, Clone)]
pub struct AtomicWorkload {
    ctas: u64,
    warps_per_cta: u32,
    atomics: usize,
    targets: u64,
}

impl AtomicWorkload {
    /// `ctas` x `warps_per_cta` warps each issuing `atomics` atomic RMWs
    /// spread over `targets` words.
    pub fn new(ctas: u64, warps_per_cta: u32, atomics: usize, targets: u64) -> Self {
        AtomicWorkload {
            ctas,
            warps_per_cta,
            atomics,
            targets: targets.max(1),
        }
    }
}

impl KernelWorkload for AtomicWorkload {
    fn name(&self) -> String {
        "atomic".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::new(self.ctas, self.warps_per_cta)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let mut tb = TraceBuilder::on(buf, 32);
        for i in 0..self.atomics {
            let v = tb.fp32(&[]);
            tb.atomic_scatter_with(v, 4, |lane| {
                let word = (cta + warp as u64 + i as u64 + lane) % self.targets;
                word * 4
            });
        }
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuConfig, SimOptions, Simulator};

    fn run(w: &dyn KernelWorkload) -> crate::SimStats {
        Simulator::new(GpuConfig::v100_scaled(2), SimOptions::default()).run(w)
    }

    #[test]
    fn gather_has_lower_l1_hit_rate_than_stream() {
        // A table far larger than L1, random gathers vs streaming reuse-free
        // loads: the gather should touch many more sectors per instruction.
        let gather = GatherWorkload::new(8, 2, 32, 16 * 1024 * 1024, 7);
        let stream = StreamWorkload::new(8, 2, 32 * 128);
        let g = run(&gather);
        let s = run(&stream);
        // streams: 4 sectors per 32-lane load; gathers: up to 32.
        let g_sectors_per_access = g.l1.accesses as f64 / g.instr_mix.load_store as f64;
        let s_sectors_per_access = s.l1.accesses as f64 / s.instr_mix.load_store as f64;
        assert!(
            g_sectors_per_access > 3.0 * s_sectors_per_access,
            "gather {g_sectors_per_access} vs stream {s_sectors_per_access}"
        );
    }

    #[test]
    fn hot_atomics_slower_than_spread_atomics() {
        let hot = AtomicWorkload::new(4, 2, 16, 1);
        let spread = AtomicWorkload::new(4, 2, 16, 1 << 20);
        let h = run(&hot);
        let s = run(&spread);
        assert!(
            h.cycles > s.cycles,
            "hot-spot atomics ({}) must serialize vs spread ({})",
            h.cycles,
            s.cycles
        );
    }

    #[test]
    fn compute_workload_is_compute_bound() {
        let w = ComputeWorkload::new(32, 4, 256, 0);
        let stats = run(&w);
        assert!(stats.compute_utilization > 0.2);
        assert!(stats.memory_utilization < 0.05);
    }

    #[test]
    fn stream_workload_is_memory_bound() {
        let w = StreamWorkload::new(64, 4, 4096);
        let stats = run(&w);
        assert!(
            stats.memory_utilization > 0.5,
            "stream should saturate DRAM, got {}",
            stats.memory_utilization
        );
    }

    #[test]
    fn streamed_and_shimmed_traces_agree() {
        // trace() (owned shim) and trace_into (streaming) must be identical.
        let w = GatherWorkload::new(2, 2, 8, 1 << 16, 9);
        let owned = w.trace(1, 1);
        let mut streamed = crate::TraceBuf::new();
        streamed.clear();
        w.trace_into(&mut streamed, 1, 1);
        assert_eq!(owned, streamed);
        assert!(!owned.is_empty());
    }
}
