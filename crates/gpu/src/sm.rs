//! Streaming-multiprocessor internals: resident warps, CTA slots, the
//! register scoreboard, per-class functional-unit availability and the
//! greedy-then-oldest scheduler state.

use crate::isa::{Instr, InstrClass, Reg, TraceBuf, NO_REG, REG_WINDOW};
use crate::stats::StallReason;

/// Why a warp is not schedulable right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockReason {
    /// Waiting on a load result, an MSHR slot or a store-queue slot.
    Memory,
    /// Waiting on an ALU/SFU result.
    Execution,
    /// Waiting on instruction fetch (warp start / post-branch refill).
    IFetch,
    /// Waiting at a CTA barrier.
    Barrier,
}

impl BlockReason {
    pub(crate) fn stall_reason(self) -> StallReason {
        match self {
            BlockReason::Memory => StallReason::MemoryDependency,
            BlockReason::Execution => StallReason::ExecutionDependency,
            BlockReason::IFetch => StallReason::InstructionFetch,
            BlockReason::Barrier => StallReason::Synchronization,
        }
    }
}

/// Functional-unit classes with issue-rate limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FuKind {
    Fp32 = 0,
    Int = 1,
    Sfu = 2,
    Ldst = 3,
}

impl FuKind {
    pub(crate) fn of(class: InstrClass) -> Option<FuKind> {
        match class {
            InstrClass::Fp32 => Some(FuKind::Fp32),
            InstrClass::Int => Some(FuKind::Int),
            InstrClass::Sfu => Some(FuKind::Sfu),
            InstrClass::LoadGlobal | InstrClass::StoreGlobal | InstrClass::AtomicGlobal => {
                Some(FuKind::Ldst)
            }
            InstrClass::Control | InstrClass::Sync => None,
        }
    }
}

/// Sentinel in [`SmState::cur_fu`] for instructions without an issue-rate
/// limit (control flow, barriers).
pub(crate) const NO_FU: u8 = u8::MAX;

/// The [`SmState::cur_fu`] encoding of a class.
pub(crate) fn fu_code(class: InstrClass) -> u8 {
    FuKind::of(class).map_or(NO_FU, |fu| fu as u8)
}

/// One resident warp.
///
/// The trace lives in a pooled [`TraceBuf`] handed over at placement and
/// reclaimed at retirement, so warp turnover allocates nothing in steady
/// state. Register dependencies are tracked two ways: loads set a bit in
/// [`WarpState::pending_mem`] (cleared by the load-completion event, since
/// memory latency is not known at issue time), while ALU/SFU results record
/// their fixed-latency ready cycle in [`WarpState::reg_ready_at`] — no event
/// traffic for the common compute case.
///
/// `repr(C)` keeps the scheduler-hot header fields on the leading cache
/// lines and the 512-byte scoreboard array at the tail; warp slots are
/// scanned constantly by the issue loop.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct WarpState {
    pub pc: usize,
    pub cta_slot: usize,
    pub sched: usize,
    /// Global launch order; lower = older (GTO tie-break).
    pub age: u64,
    /// Bitmask of registers pending a load result.
    pub pending_mem: u64,
    pub blocked: Option<BlockReason>,
    pub block_start: u64,
    pub done: bool,
    /// True while the warp sits in its scheduler's ready list.
    pub in_ready: bool,
    pub trace: TraceBuf,
    /// Cycle at which each ALU/SFU-written register becomes readable
    /// (inline array — no per-warp heap allocation).
    pub reg_ready_at: [u64; REG_WINDOW as usize],
}

impl WarpState {
    pub(crate) fn new(trace: TraceBuf, cta_slot: usize, sched: usize, age: u64) -> Self {
        WarpState {
            pc: 0,
            cta_slot,
            sched,
            age,
            pending_mem: 0,
            blocked: None,
            block_start: 0,
            done: false,
            in_ready: false,
            trace,
            reg_ready_at: [0; REG_WINDOW as usize],
        }
    }

    #[inline]
    pub(crate) fn current(&self) -> &Instr {
        &self.trace.instrs()[self.pc]
    }

    /// Pending-load registers blocking `instr` (sources plus WAW on the
    /// destination).
    #[inline]
    pub(crate) fn mem_blocking(&self, instr: &Instr) -> u64 {
        let mut mask = 0u64;
        for src in instr.sources() {
            mask |= reg_bit(src);
        }
        if instr.dst != NO_REG {
            mask |= reg_bit(instr.dst);
        }
        self.pending_mem & mask
    }

    /// Cycle at which all of `instr`'s ALU-produced sources are readable
    /// (0 when none are in flight).
    #[inline]
    pub(crate) fn alu_ready_at(&self, instr: &Instr) -> u64 {
        let mut ready = 0u64;
        for src in instr.sources() {
            ready = ready.max(self.reg_ready_at[(src % REG_WINDOW) as usize]);
        }
        ready
    }
}

#[inline]
pub(crate) fn reg_bit(reg: Reg) -> u64 {
    debug_assert!(reg < REG_WINDOW, "trace register {reg} outside window");
    1u64 << (reg % REG_WINDOW)
}

/// One resident CTA.
#[derive(Debug)]
pub(crate) struct CtaState {
    /// Warp slot ids belonging to this CTA.
    pub warp_slots: Vec<usize>,
    /// Warps not yet retired.
    pub live_warps: usize,
    /// Warps currently waiting at the barrier.
    pub arrived: usize,
}

/// Per-SM state.
#[derive(Debug)]
pub(crate) struct SmState {
    pub warps: Vec<Option<WarpState>>,
    pub free_warp_slots: Vec<usize>,
    pub ctas: Vec<Option<CtaState>>,
    pub free_cta_slots: Vec<usize>,
    /// Ready `(warp slot, age)` pairs per scheduler, kept **sorted by
    /// ascending age**. Carrying the age in the list keeps the GTO
    /// oldest-first pick a single linear walk over a compact array instead
    /// of repeated min-scans dereferencing scattered [`WarpState`]s.
    pub ready: Vec<Vec<(usize, u64)>>,
    /// Last warp each scheduler issued from (greedy part of GTO).
    pub last_issued: Vec<Option<usize>>,
    /// Live (not done) warps per scheduler — Idle/Stall classification.
    pub resident: Vec<usize>,
    /// Fractional next-free timestamps per functional unit.
    pub fu_free: [f64; 4],
    /// Functional unit of each resident warp's *current* instruction
    /// ([`FuKind`] as `u8`, or [`NO_FU`]). A compact shadow of the warps'
    /// program counters: the scheduler skips FU-busy candidates by reading
    /// this one dense array instead of dereferencing scattered
    /// [`WarpState`]s — the dominant cost of the issue loop otherwise.
    pub cur_fu: Vec<u8>,
    /// Outstanding load sectors (MSHR occupancy).
    pub inflight_loads: usize,
    /// Outstanding store/atomic sectors.
    pub inflight_stores: usize,
    /// Warps blocked waiting for MSHR or store-queue space (FIFO).
    pub mem_waiters: std::collections::VecDeque<usize>,
}

impl SmState {
    pub(crate) fn new(warps_per_sm: usize, ctas_per_sm: usize, schedulers: usize) -> Self {
        SmState {
            warps: (0..warps_per_sm).map(|_| None).collect(),
            free_warp_slots: (0..warps_per_sm).rev().collect(),
            ctas: (0..ctas_per_sm).map(|_| None).collect(),
            free_cta_slots: (0..ctas_per_sm).rev().collect(),
            ready: vec![Vec::new(); schedulers],
            last_issued: vec![None; schedulers],
            resident: vec![0; schedulers],
            fu_free: [0.0; 4],
            cur_fu: vec![NO_FU; warps_per_sm],
            inflight_loads: 0,
            inflight_stores: 0,
            mem_waiters: std::collections::VecDeque::new(),
        }
    }

    /// Whether a CTA of `warps_per_cta` warps fits right now.
    pub(crate) fn has_room(&self, warps_per_cta: usize) -> bool {
        !self.free_cta_slots.is_empty() && self.free_warp_slots.len() >= warps_per_cta
    }

    /// Moves `slot` into its scheduler's ready list (idempotent),
    /// preserving the list's ascending-age order.
    pub(crate) fn push_ready(&mut self, slot: usize) {
        let warp = self.warps[slot].as_mut().expect("warp exists");
        if warp.done || warp.in_ready {
            return;
        }
        warp.in_ready = true;
        let sched = warp.sched;
        let age = warp.age;
        let list = &mut self.ready[sched];
        // Newly readied warps are usually the youngest: check the common
        // append case before binary-searching.
        if list.last().is_none_or(|&(_, a)| a < age) {
            list.push((slot, age));
        } else {
            let pos = list.partition_point(|&(_, a)| a < age);
            list.insert(pos, (slot, age));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, TraceBuilder};

    fn trace_of(build: impl FnOnce(&mut TraceBuilder<'_>)) -> TraceBuf {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 32);
        build(&mut tb);
        buf
    }

    fn warp_with(trace: TraceBuf) -> WarpState {
        WarpState::new(trace, 0, 0, 0)
    }

    #[test]
    fn mem_blocking_tracks_pending_loads() {
        let mut a_reg = 0;
        let trace = trace_of(|tb| {
            let a = tb.load_lanes(0, 4); // reg <- mem
            let b = tb.fp32(&[a]);
            let _c = tb.fp32(&[a, b]);
            a_reg = a;
        });
        let mut w = warp_with(trace);
        w.pending_mem = reg_bit(a_reg);
        w.pc = 2;
        let instr = *w.current();
        assert_eq!(w.mem_blocking(&instr), reg_bit(a_reg));
    }

    #[test]
    fn alu_ready_takes_max_over_sources() {
        let mut regs = (0, 0);
        let trace = trace_of(|tb| {
            let a = tb.fp32(&[]);
            let b = tb.fp32(&[]);
            let _c = tb.fp32(&[a, b]);
            regs = (a, b);
        });
        let mut w = warp_with(trace);
        w.reg_ready_at[regs.0 as usize] = 10;
        w.reg_ready_at[regs.1 as usize] = 25;
        w.pc = 2;
        let instr = *w.current();
        assert_eq!(w.alu_ready_at(&instr), 25);
        assert_eq!(w.mem_blocking(&instr), 0);
    }

    #[test]
    fn waw_blocks_via_dst() {
        let mut buf = TraceBuf::new();
        buf.push(Instr::fp32(3, &[], 32));
        let mut w = warp_with(buf);
        w.pending_mem = reg_bit(3);
        let instr = *w.current();
        assert_eq!(w.mem_blocking(&instr), reg_bit(3));
    }

    #[test]
    fn no_reg_never_blocks() {
        let mut buf = TraceBuf::new();
        buf.push(Instr::control(32));
        let mut w = warp_with(buf);
        w.pending_mem = u64::MAX;
        let instr = *w.current();
        assert_eq!(w.mem_blocking(&instr), 0);
        assert_eq!(w.alu_ready_at(&instr), 0);
    }

    #[test]
    fn fu_mapping() {
        assert_eq!(FuKind::of(InstrClass::Fp32), Some(FuKind::Fp32));
        assert_eq!(FuKind::of(InstrClass::AtomicGlobal), Some(FuKind::Ldst));
        assert_eq!(FuKind::of(InstrClass::Control), None);
        assert_eq!(FuKind::of(InstrClass::Sync), None);
    }

    #[test]
    fn sm_room_accounting() {
        let mut sm = SmState::new(8, 2, 2);
        assert!(sm.has_room(4));
        assert!(!sm.has_room(9));
        sm.free_cta_slots.pop();
        for _ in 0..6 {
            sm.free_warp_slots.pop();
        }
        assert!(sm.has_room(2));
        assert!(!sm.has_room(3));
        sm.free_cta_slots.pop();
        assert!(!sm.has_room(1), "no CTA slots left");
    }

    #[test]
    fn push_ready_is_idempotent() {
        let mut sm = SmState::new(4, 1, 1);
        let mut buf = TraceBuf::new();
        buf.push(Instr::control(32));
        sm.warps[0] = Some(warp_with(buf));
        sm.push_ready(0);
        sm.push_ready(0);
        assert_eq!(sm.ready[0].len(), 1);
    }

    #[test]
    fn block_reason_maps_to_stall_reason() {
        assert_eq!(
            BlockReason::Memory.stall_reason(),
            StallReason::MemoryDependency
        );
        assert_eq!(
            BlockReason::Barrier.stall_reason(),
            StallReason::Synchronization
        );
    }
}
