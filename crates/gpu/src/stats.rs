//! Per-kernel statistics — one field per metric the paper reports.

use serde::{Deserialize, Serialize};

/// Why a resident warp could not issue in a given cycle.
///
/// These are exactly the issue-stall categories of the paper's Fig. 6
/// (GPGPU-Sim / nvprof terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallReason {
    /// The warp issued an instruction (not a stall; kept in the same
    /// distribution as the paper does).
    InstructionIssued,
    /// Waiting on an outstanding global-memory load result or a full
    /// MSHR/store queue.
    MemoryDependency,
    /// Waiting on an ALU/SFU result still in its latency window.
    ExecutionDependency,
    /// Waiting on instruction fetch/decode (warp start, post-branch refill).
    InstructionFetch,
    /// Waiting at a CTA barrier.
    Synchronization,
    /// Ready to issue but the scheduler picked another warp (or the
    /// functional unit had no issue slot this cycle).
    NotSelected,
}

impl StallReason {
    /// All reasons, in the paper's legend order.
    pub const ALL: [StallReason; 6] = [
        StallReason::MemoryDependency,
        StallReason::ExecutionDependency,
        StallReason::InstructionIssued,
        StallReason::InstructionFetch,
        StallReason::Synchronization,
        StallReason::NotSelected,
    ];

    /// Display label matching the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::InstructionIssued => "InstructionIssued",
            StallReason::MemoryDependency => "MemoryDependency",
            StallReason::ExecutionDependency => "ExecutionDependency",
            StallReason::InstructionFetch => "InstructionFetch",
            StallReason::Synchronization => "Synchronization",
            StallReason::NotSelected => "NotSelected",
        }
    }
}

/// Warp-cycle counts per stall reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Warp-cycles in which an instruction issued.
    pub issued: u64,
    /// Warp-cycles blocked on memory results.
    pub memory_dependency: u64,
    /// Warp-cycles blocked on ALU/SFU results.
    pub execution_dependency: u64,
    /// Warp-cycles blocked on instruction fetch.
    pub instruction_fetch: u64,
    /// Warp-cycles blocked at barriers.
    pub synchronization: u64,
    /// Warp-cycles ready but not selected.
    pub not_selected: u64,
}

impl StallBreakdown {
    /// Adds `cycles` to the counter for `reason`.
    pub fn add(&mut self, reason: StallReason, cycles: u64) {
        match reason {
            StallReason::InstructionIssued => self.issued += cycles,
            StallReason::MemoryDependency => self.memory_dependency += cycles,
            StallReason::ExecutionDependency => self.execution_dependency += cycles,
            StallReason::InstructionFetch => self.instruction_fetch += cycles,
            StallReason::Synchronization => self.synchronization += cycles,
            StallReason::NotSelected => self.not_selected += cycles,
        }
    }

    /// Count for one reason.
    pub fn get(&self, reason: StallReason) -> u64 {
        match reason {
            StallReason::InstructionIssued => self.issued,
            StallReason::MemoryDependency => self.memory_dependency,
            StallReason::ExecutionDependency => self.execution_dependency,
            StallReason::InstructionFetch => self.instruction_fetch,
            StallReason::Synchronization => self.synchronization,
            StallReason::NotSelected => self.not_selected,
        }
    }

    /// Total warp-cycles accounted.
    pub fn total(&self) -> u64 {
        StallReason::ALL.iter().map(|&r| self.get(r)).sum()
    }

    /// Fraction of warp-cycles attributed to `reason` (0 when empty).
    pub fn fraction(&self, reason: StallReason) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(reason) as f64 / total as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for reason in StallReason::ALL {
            self.add(reason, other.get(reason));
        }
    }
}

/// Scheduler-cycle occupancy buckets — the paper's Fig. 7 categories.
///
/// `Stall`: warps resident but none could issue. `Idle`: no runnable warps
/// resident on the scheduler. `W8`/`W20`/`W32`: an instruction issued with
/// ≤8, 9–20, or 21–32 active lanes respectively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyBuckets {
    /// Scheduler-cycles stalled (resident warps, none eligible).
    pub stall: u64,
    /// Scheduler-cycles with no resident runnable warps.
    pub idle: u64,
    /// Issues with 1–8 active lanes.
    pub w8: u64,
    /// Issues with 9–20 active lanes.
    pub w20: u64,
    /// Issues with 21–32 active lanes.
    pub w32: u64,
}

impl OccupancyBuckets {
    /// Records one issue with `active` lanes.
    pub fn record_issue(&mut self, active: u8) {
        match active {
            0..=8 => self.w8 += 1,
            9..=20 => self.w20 += 1,
            _ => self.w32 += 1,
        }
    }

    /// Total scheduler-cycles accounted.
    pub fn total(&self) -> u64 {
        self.stall + self.idle + self.w8 + self.w20 + self.w32
    }

    /// `(label, fraction)` pairs in the paper's legend order.
    pub fn fractions(&self) -> [(&'static str, f64); 5] {
        let total = self.total().max(1) as f64;
        [
            ("Stall", self.stall as f64 / total),
            ("Idle", self.idle as f64 / total),
            ("W8", self.w8 as f64 / total),
            ("W20", self.w20 as f64 / total),
            ("W32", self.w32 as f64 / total),
        ]
    }

    /// Merges another set of buckets into this one.
    pub fn merge(&mut self, other: &OccupancyBuckets) {
        self.stall += other.stall;
        self.idle += other.idle;
        self.w8 += other.w8;
        self.w20 += other.w20;
        self.w32 += other.w32;
    }
}

/// Issued-instruction counts by class — the paper's Fig. 5 mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrMix {
    /// FP32 ALU instructions.
    pub fp32: u64,
    /// Integer ALU instructions.
    pub int: u64,
    /// Global loads, stores and atomics.
    pub load_store: u64,
    /// Control flow and barriers.
    pub control: u64,
    /// Everything else (SFU).
    pub other: u64,
}

impl InstrMix {
    /// Total issued instructions.
    pub fn total(&self) -> u64 {
        self.fp32 + self.int + self.load_store + self.control + self.other
    }

    /// `(label, fraction)` pairs in the paper's legend order.
    pub fn fractions(&self) -> [(&'static str, f64); 5] {
        let total = self.total().max(1) as f64;
        [
            ("FP32", self.fp32 as f64 / total),
            ("INT", self.int as f64 / total),
            ("Load/Store", self.load_store as f64 / total),
            ("Control", self.control as f64 / total),
            ("other", self.other as f64 / total),
        ]
    }

    /// Merges another mix into this one.
    pub fn merge(&mut self, other: &InstrMix) {
        self.fp32 += other.fp32;
        self.int += other.int;
        self.load_store += other.load_store;
        self.control += other.control;
        self.other += other.other;
    }
}

/// Access/hit counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Sector lookups.
    pub accesses: u64,
    /// Sector hits.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
    }
}

/// Complete result of simulating one kernel launch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Kernel name.
    pub kernel: String,
    /// Simulated cycles (of the sampled portion of the grid).
    pub cycles: u64,
    /// Estimated wall time in milliseconds for the *full* grid
    /// (sampled time divided by [`SimStats::sampled_fraction`]).
    pub time_ms: f64,
    /// Fraction of the grid's CTAs that were cycle-simulated (1.0 = all).
    pub sampled_fraction: f64,
    /// Issued-instruction mix.
    pub instr_mix: InstrMix,
    /// Warp-cycle stall distribution.
    pub stalls: StallBreakdown,
    /// Scheduler-cycle occupancy buckets.
    pub occupancy: OccupancyBuckets,
    /// L1D counters (all SMs merged).
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Bytes transferred from DRAM.
    pub dram_bytes: u64,
    /// Fraction of issue slots spent on compute instructions, in `[0, 1]`.
    pub compute_utilization: f64,
    /// Fraction of DRAM bandwidth consumed, in `[0, 1]`.
    pub memory_utilization: f64,
}

impl SimStats {
    /// Warp instructions issued in total.
    pub fn instructions(&self) -> u64 {
        self.instr_mix.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_roundtrip() {
        let mut b = StallBreakdown::default();
        b.add(StallReason::MemoryDependency, 10);
        b.add(StallReason::InstructionIssued, 30);
        assert_eq!(b.get(StallReason::MemoryDependency), 10);
        assert_eq!(b.total(), 40);
        assert!((b.fraction(StallReason::MemoryDependency) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stall_merge_adds() {
        let mut a = StallBreakdown::default();
        a.add(StallReason::Synchronization, 5);
        let mut b = StallBreakdown::default();
        b.add(StallReason::Synchronization, 7);
        b.add(StallReason::NotSelected, 1);
        a.merge(&b);
        assert_eq!(a.get(StallReason::Synchronization), 12);
        assert_eq!(a.total(), 13);
    }

    #[test]
    fn occupancy_bucket_boundaries() {
        let mut o = OccupancyBuckets::default();
        o.record_issue(1);
        o.record_issue(8);
        o.record_issue(9);
        o.record_issue(20);
        o.record_issue(21);
        o.record_issue(32);
        assert_eq!(o.w8, 2);
        assert_eq!(o.w20, 2);
        assert_eq!(o.w32, 2);
    }

    #[test]
    fn occupancy_fractions_sum_to_one() {
        let mut o = OccupancyBuckets {
            stall: 10,
            idle: 10,
            ..OccupancyBuckets::default()
        };
        o.record_issue(32);
        let sum: f64 = o.fractions().iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instr_mix_fractions() {
        let mix = InstrMix {
            fp32: 50,
            int: 30,
            load_store: 15,
            control: 5,
            other: 0,
        };
        assert_eq!(mix.total(), 100);
        let f = mix.fractions();
        assert_eq!(f[0], ("FP32", 0.5));
        assert_eq!(f[3], ("Control", 0.05));
    }

    #[test]
    fn cache_stats_rates() {
        let c = CacheStats {
            accesses: 8,
            hits: 6,
        };
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
