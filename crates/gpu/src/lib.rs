//! # gsuite-gpu
//!
//! A from-scratch, cycle-level SIMT GPU simulator — the stand-in for
//! GPGPU-Sim (and, indirectly, the V100 silicon) in gSuite-rs.
//!
//! The paper characterizes GNN inference kernels with a timing-detailed GPU
//! simulator; every architectural metric in its evaluation (issue-stall
//! distribution, warp occupancy, L1/L2 hit rates, compute/memory
//! utilization, instruction mix) is *defined* by the machinery modeled here:
//!
//! * **SMs** with resident CTAs, greedy-then-oldest warp schedulers, a
//!   register scoreboard and per-class functional-unit throughput limits;
//! * a **memory subsystem** with a 32-byte-sector access coalescer,
//!   set-associative L1D per SM, a shared banked L2, a DRAM
//!   bandwidth/latency queue, MSHR limits and an atomic unit with
//!   per-sector serialization (the scatter kernel's contention);
//! * **accounting** for exactly the paper's metrics: stall reasons
//!   (MemoryDependency, ExecutionDependency, InstructionFetch,
//!   Synchronization, NotSelected, InstructionIssued), occupancy buckets
//!   (Stall / Idle / W8 / W20 / W32), cache hits, DRAM traffic, and
//!   functional-unit busy time.
//!
//! Kernels are *trace-driven*: anything implementing [`KernelWorkload`]
//! exposes a grid of CTAs and per-warp instruction traces whose memory
//! addresses come from live input data, so irregular-access behaviour (the
//! heart of GNN inference) is genuine rather than synthesized. Traces are
//! *streamed* through reusable [`TraceBuf`] arenas
//! ([`KernelWorkload::trace_into`]): instructions are `Copy`, gather
//! addresses live in a shared side-buffer, and the simulator recycles
//! buffers across warps, so steady-state trace generation and replay do
//! not touch the allocator.
//!
//! The simulator is event-driven between issue cycles, which keeps
//! multi-million-instruction kernels tractable on one host core, and
//! supports CTA sampling ([`SimOptions::max_ctas`]) for grids far larger
//! than what cycle simulation can cover — the same methodology
//! architectural papers use with GPGPU-Sim.
//!
//! # Example
//!
//! ```
//! use gsuite_gpu::{testkit::StreamWorkload, GpuConfig, SimOptions, Simulator};
//!
//! // 64 warps each streaming through 1 KiB of global memory.
//! let workload = StreamWorkload::new(16, 4, 256);
//! let sim = Simulator::new(GpuConfig::v100_scaled(4), SimOptions::default());
//! let stats = sim.run(&workload);
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.l1.accesses, stats.l1.hits + stats.l1.misses());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod isa;
mod memsys;
mod sim;
mod sm;
mod stats;
pub mod testkit;
mod workload;

pub use cache::{CacheConfig, SetAssocCache};
pub use config::GpuConfig;
pub use isa::{Instr, InstrClass, MemAccess, MemRef, Reg, TraceBuf, TraceBuilder, NO_REG};
pub use memsys::MemSubsystem;
pub use sim::{SimOptions, Simulator};
pub use stats::{CacheStats, InstrMix, OccupancyBuckets, SimStats, StallBreakdown, StallReason};
pub use workload::{Grid, KernelWorkload};
