//! Set-associative cache model (tags only — data values live on the host).
//!
//! Both L1D and L2 are modeled as sectored caches tracking 32-byte sectors,
//! which is how Volta-class hardware moves data. The model is functional
//! (hit/miss + LRU state); timing is applied by the memory subsystem.

use serde::{Deserialize, Serialize};

use crate::config::SECTOR_BYTES;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// A cache of `capacity_bytes` with `associativity` ways.
    ///
    /// # Panics
    ///
    /// Panics if capacity or associativity is zero, or capacity is not a
    /// multiple of `associativity * 32` bytes.
    pub fn new(capacity_bytes: usize, associativity: usize) -> Self {
        assert!(capacity_bytes > 0 && associativity > 0);
        assert_eq!(
            capacity_bytes % (associativity * SECTOR_BYTES as usize),
            0,
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            capacity_bytes,
            associativity,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.associativity * SECTOR_BYTES as usize)
    }

    /// Total sector slots.
    pub fn num_sectors(&self) -> usize {
        self.capacity_bytes / SECTOR_BYTES as usize
    }
}

/// Division-free `x % d` for a fixed divisor (Lemire's fastmod, 64-bit
/// variant): three widening multiplies instead of a hardware divide. Set
/// lookup runs once per simulated memory sector, and real geometries (the
/// V100's 12288-set L2) are not powers of two.
#[derive(Debug, Clone, Copy)]
struct FastMod {
    d: u64,
    /// `floor(2^128 / d) + 1`.
    m: u128,
}

impl FastMod {
    fn new(d: u64) -> Self {
        assert!(d > 0, "divisor must be nonzero");
        // For d == 1 this wraps to m == 0, making every remainder 0 —
        // which is exactly right.
        FastMod {
            d,
            m: (u128::MAX / d as u128).wrapping_add(1),
        }
    }

    #[inline]
    fn rem(&self, x: u64) -> u64 {
        let lowbits = self.m.wrapping_mul(x as u128);
        let hi = (lowbits >> 64) as u64;
        let lo = lowbits as u64;
        // High 64 bits of (lowbits * d) >> 64, i.e. bits 128.. of
        // lowbits * d — this is exactly x % d.
        let t = (hi as u128) * (self.d as u128) + (((lo as u128) * (self.d as u128)) >> 64);
        (t >> 64) as u64
    }
}

/// LRU set-associative sector cache.
///
/// Addresses are pre-divided by the sector size: the cache operates on
/// *sector ids* (`addr / 32`), not raw byte addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (mask-based set lookup on
    /// the hot path), else 0 and the [`FastMod`] path is taken.
    set_mask: usize,
    /// Division-free modulo for non-power-of-two set counts.
    set_mod: FastMod,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Monotone per-access stamp for LRU.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    hits: u64,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        let ways = config.associativity;
        SetAssocCache {
            config,
            ways,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            set_mod: FastMod::new(sets as u64),
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_of(&self, sector: u64) -> usize {
        // Every sector lookup lands here; the L1 geometries are powers of
        // two (mask), and non-power-of-two L2 geometries use the
        // division-free modulo. Both compute exactly `sector % sets`.
        if self.set_mask != 0 {
            (sector as usize) & self.set_mask
        } else {
            self.set_mod.rem(sector) as usize
        }
    }

    /// Looks up `sector`; on miss, fills it (evicting LRU). Returns `true`
    /// on hit. This is the common read path — every simulated memory
    /// sector funnels through here, so the hit probe and the LRU victim
    /// search share a single pass over the set.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let set = self.set_of(sector);
        let base = set * self.ways;
        let mut lru = base;
        let mut lru_stamp = u64::MAX;
        for idx in base..base + self.ways {
            if self.tags[idx] == sector {
                self.stamps[idx] = self.clock;
                self.hits += 1;
                return true;
            }
            if self.stamps[idx] < lru_stamp {
                lru_stamp = self.stamps[idx];
                lru = idx;
            }
        }
        // Miss: evict LRU way.
        self.tags[lru] = sector;
        self.stamps[lru] = self.clock;
        false
    }

    /// Probes without filling or counting (test/diagnostic helper).
    pub fn probe(&self, sector: u64) -> bool {
        let set = self.set_of(sector);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&sector)
    }

    /// Inserts `sector` without counting an access (fill from lower level).
    pub fn fill(&mut self, sector: u64) {
        self.clock += 1;
        let set = self.set_of(sector);
        let base = set * self.ways;
        if let Some(way) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == sector)
        {
            self.stamps[base + way] = self.clock;
            return;
        }
        let lru = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("associativity >= 1");
        self.tags[base + lru] = sector;
        self.stamps[base + lru] = self.clock;
    }

    /// Number of lookups so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.accesses = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastmod_matches_hardware_modulo() {
        // The actual set counts in play plus awkward divisors.
        for d in [1u64, 3, 5, 600, 1024, 1023, 12288, 4095, 75] {
            let fm = FastMod::new(d);
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                assert_eq!(fm.rem(x), x % d, "x={x} d={d}");
            }
            for x in 0..2000u64 {
                assert_eq!(fm.rem(x), x % d, "x={x} d={d}");
            }
            assert_eq!(fm.rem(u64::MAX), u64::MAX % d, "d={d}");
        }
    }

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 32B = 256 B
        SetAssocCache::new(CacheConfig::new(256, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(128 * 1024, 4);
        assert_eq!(c.num_sets(), 1024);
        assert_eq!(c.num_sectors(), 4096);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_capacity_rejected() {
        let _ = CacheConfig::new(100, 3);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(7));
        assert!(c.access(7));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.hits(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // sectors 0, 4, 8 all map to set 0 (4 sets).
        c.access(0);
        c.access(4);
        c.access(0); // refresh 0 -> LRU is 4
        assert!(!c.access(8)); // evicts 4
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for s in 0..4u64 {
            c.access(s);
        }
        for s in 0..4u64 {
            assert!(c.access(s), "sector {s} should still be resident");
        }
    }

    #[test]
    fn fill_does_not_count_access() {
        let mut c = tiny();
        c.fill(3);
        assert_eq!(c.accesses(), 0);
        assert!(c.access(3), "filled sector hits");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 8 sectors capacity
        let n = 64u64;
        for round in 0..3 {
            for s in 0..n {
                let hit = c.access(s);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // Cyclic sweep over 8x capacity with LRU: ~0% hits.
        assert!(c.hit_rate() < 0.05, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(1);
        c.access(1);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert!(!c.probe(1));
    }
}
