//! The simulator driver: CTA placement, the issue loop, event processing
//! and statistics finalization.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::config::GpuConfig;
use crate::isa::{InstrClass, Reg, TraceBuf, NO_REG};
use crate::memsys::MemSubsystem;
use crate::sm::{fu_code, reg_bit, BlockReason, CtaState, FuKind, SmState, WarpState, NO_FU};
use crate::stats::{InstrMix, OccupancyBuckets, SimStats, StallBreakdown, StallReason};
use crate::workload::KernelWorkload;

/// Knobs controlling one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOptions {
    /// Simulate at most this many CTAs of the grid (sampling); statistics
    /// distributions come from the sample and the time estimate is scaled
    /// back up by the sampled fraction. `None` = the whole grid.
    pub max_ctas: Option<u64>,
    /// Hard cycle budget as a safety valve; simulation stops (and reports
    /// what it has) when exceeded. `None` = unlimited.
    pub max_cycles: Option<u64>,
}

/// A configured cycle-level GPU simulator.
///
/// Create one per device configuration and call [`Simulator::run`] once per
/// kernel launch; runs are independent (caches start cold each launch, as
/// the paper's per-kernel profiling does). `run` takes `&self`, so one
/// simulator can serve concurrent launches from multiple threads (see
/// `gsuite_core::pipeline::PipelineRun::profile_par`).
#[derive(Debug, Clone)]
pub struct Simulator {
    config: GpuConfig,
    options: SimOptions,
}

impl Simulator {
    /// A simulator for `config` with run `options`.
    pub fn new(config: GpuConfig, options: SimOptions) -> Self {
        Simulator { config, options }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The run options.
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// Runs `workload` to completion and returns its statistics.
    ///
    /// # Panics
    ///
    /// Panics on scheduling deadlock, which indicates an invalid workload
    /// (e.g. CTAs whose warps execute unmatched barriers).
    pub fn run<W: KernelWorkload + ?Sized>(&self, workload: &W) -> SimStats {
        Run::new(&self.config, self.options, workload).execute()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A load's data arrived: free MSHR sectors, clear the register.
    LoadDone {
        sm: usize,
        slot: usize,
        gen: u64,
        reg: Reg,
        sectors: u32,
    },
    /// A store/atomic drained: free store-queue sectors.
    StoreDone { sm: usize, sectors: u32 },
    /// A timed wake (instruction fetch done, ALU latency elapsed).
    Wake { sm: usize, slot: usize, gen: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Run<'a, W: KernelWorkload + ?Sized> {
    cfg: &'a GpuConfig,
    options: SimOptions,
    workload: &'a W,
    mem: MemSubsystem,
    sms: Vec<SmState>,
    /// Per-SM per-slot generation counters guarding stale events.
    gens: Vec<Vec<u64>>,
    events: BinaryHeap<Event>,
    seq: u64,
    now: u64,
    next_cta: u64,
    sim_ctas: u64,
    retired_ctas: u64,
    warp_age: u64,
    // accumulating statistics
    mix: InstrMix,
    stalls: StallBreakdown,
    occ: OccupancyBuckets,
    /// Accumulated scheduler-idle cycles (integrated at resident-count
    /// transitions rather than per cycle, for speed).
    idle_acc: u64,
    /// Per `(sm, sched)` cycle at which the scheduler last became empty.
    idle_start: Vec<u64>,
    /// Count of scheduler keys flagged active; the issue phase walks the
    /// `is_active` bitmap in key order (deterministic SM-major order) and
    /// skips the walk entirely when nothing is flagged.
    active_count: usize,
    is_active: Vec<bool>,
    /// Precomputed `1.0 / fu_rate` per functional unit (avoids an f64
    /// division on every issue).
    inv_fu_rate: [f64; 4],
    // scratch buffers reused across instructions
    scratch_sectors: Vec<u64>,
    /// Reusable barrier-release worklist (avoids cloning CTA slot lists).
    barrier_scratch: Vec<usize>,
    /// Retired warps' trace buffers, recycled into new placements so
    /// steady-state trace streaming never touches the allocator.
    trace_pool: Vec<TraceBuf>,
}

impl<'a, W: KernelWorkload + ?Sized> Run<'a, W> {
    fn new(cfg: &'a GpuConfig, options: SimOptions, workload: &'a W) -> Self {
        let grid = workload.grid();
        let sim_ctas = options
            .max_ctas
            .map_or(grid.ctas, |cap| grid.ctas.min(cap.max(1)));
        Run {
            cfg,
            options,
            workload,
            mem: MemSubsystem::new(cfg),
            sms: (0..cfg.num_sms)
                .map(|_| SmState::new(cfg.warps_per_sm, cfg.ctas_per_sm, cfg.schedulers_per_sm))
                .collect(),
            gens: vec![vec![0; cfg.warps_per_sm]; cfg.num_sms],
            events: BinaryHeap::with_capacity(cfg.num_sms * cfg.warps_per_sm * 2),
            seq: 0,
            now: 0,
            next_cta: 0,
            sim_ctas,
            retired_ctas: 0,
            warp_age: 0,
            mix: InstrMix::default(),
            stalls: StallBreakdown::default(),
            occ: OccupancyBuckets::default(),
            idle_acc: 0,
            idle_start: vec![0; cfg.num_sms * cfg.schedulers_per_sm],
            active_count: 0,
            is_active: vec![false; cfg.num_sms * cfg.schedulers_per_sm],
            inv_fu_rate: [
                1.0 / cfg.fp32_rate,
                1.0 / cfg.int_rate,
                1.0 / cfg.sfu_rate,
                1.0 / cfg.ldst_rate,
            ],
            scratch_sectors: Vec::with_capacity(128),
            barrier_scratch: Vec::with_capacity(32),
            trace_pool: Vec::new(),
        }
    }

    #[inline]
    fn sched_key(&self, sm: usize, sched: usize) -> usize {
        sm * self.cfg.schedulers_per_sm + sched
    }

    /// Refreshes the [`SmState::cur_fu`] shadow entry for `slot` from the
    /// warp's current instruction. Must run whenever a live warp's PC
    /// changes.
    #[inline]
    fn refresh_cur_fu(&mut self, sm: usize, slot: usize) {
        let code = match self.sms[sm].warps[slot].as_ref() {
            Some(w) if !w.done && w.pc < w.trace.len() => fu_code(w.current().class),
            _ => NO_FU,
        };
        self.sms[sm].cur_fu[slot] = code;
    }

    /// Moves a warp into its scheduler's ready list and flags the scheduler
    /// as active for the issue phase.
    fn make_ready(&mut self, sm: usize, slot: usize) {
        let sched = match self.sms[sm].warps[slot].as_ref() {
            Some(w) if !w.done => w.sched,
            _ => return,
        };
        self.sms[sm].push_ready(slot);
        let key = self.sched_key(sm, sched);
        if !self.is_active[key] {
            self.is_active[key] = true;
            self.active_count += 1;
        }
    }

    fn push_event(&mut self, at: u64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            at: at.max(self.now + 1),
            seq: self.seq,
            kind,
        });
    }

    fn execute(mut self) -> SimStats {
        let grid = self.workload.grid();
        if grid.ctas == 0 {
            return SimStats {
                kernel: self.workload.name(),
                sampled_fraction: 1.0,
                ..SimStats::default()
            };
        }
        self.launch_wave();
        loop {
            self.process_due_events();
            if self.retired_ctas == self.sim_ctas && self.events.is_empty() {
                break;
            }
            if let Some(budget) = self.options.max_cycles {
                if self.now >= budget {
                    break;
                }
            }
            let any_ready = self.issue_phase();
            if any_ready {
                self.now += 1;
            } else if let Some(at) = self.events.peek().map(|e| e.at) {
                // Nothing can issue before the next event: jump straight to
                // it (idle/stall cycles are integrated at finalize time).
                self.now = at;
            } else if self.retired_ctas == self.sim_ctas {
                break;
            } else {
                panic!(
                    "simulation deadlock at cycle {}: {}/{} CTAs retired, no events pending \
                     (unmatched barriers in the workload?)",
                    self.now, self.retired_ctas, self.sim_ctas
                );
            }
        }
        self.finalize(grid.ctas)
    }

    /// Fills every SM with CTAs round-robin while room and work remain.
    fn launch_wave(&mut self) {
        let warps_per_cta = self.workload.grid().warps_per_cta as usize;
        loop {
            let mut progressed = false;
            for sm in 0..self.sms.len() {
                if self.next_cta >= self.sim_ctas {
                    return;
                }
                if self.sms[sm].has_room(warps_per_cta) {
                    let cta = self.next_cta;
                    self.next_cta += 1;
                    self.place_cta(sm, cta);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn place_cta(&mut self, sm_idx: usize, cta: u64) {
        let warps_per_cta = self.workload.grid().warps_per_cta;
        let cta_slot = self.sms[sm_idx]
            .free_cta_slots
            .pop()
            .expect("has_room checked");
        let mut warp_slots = Vec::with_capacity(warps_per_cta as usize);
        let mut live = 0usize;
        for w in 0..warps_per_cta {
            // Stream the warp's trace into a recycled buffer; hand it back
            // to the pool immediately if the warp turns out to be empty.
            let mut trace = self.trace_pool.pop().unwrap_or_default();
            trace.clear();
            self.workload.trace_into(&mut trace, cta, w);
            if trace.is_empty() {
                self.trace_pool.push(trace);
                continue;
            }
            let slot = self.sms[sm_idx]
                .free_warp_slots
                .pop()
                .expect("has_room checked");
            self.gens[sm_idx][slot] += 1;
            let gen = self.gens[sm_idx][slot];
            let sched = slot % self.cfg.schedulers_per_sm;
            self.warp_age += 1;
            let mut warp = WarpState::new(trace, cta_slot, sched, self.warp_age);
            // Model the fetch/decode ramp at warp start.
            warp.blocked = Some(BlockReason::IFetch);
            warp.block_start = self.now;
            self.sms[sm_idx].resident[sched] += 1;
            if self.sms[sm_idx].resident[sched] == 1 {
                // Scheduler leaves the idle state: close the idle span.
                let key = self.sched_key(sm_idx, sched);
                self.idle_acc += self.now.saturating_sub(self.idle_start[key]);
            }
            self.sms[sm_idx].warps[slot] = Some(warp);
            self.refresh_cur_fu(sm_idx, slot);
            warp_slots.push(slot);
            live += 1;
            self.push_event(
                self.now + self.cfg.ifetch_latency,
                EventKind::Wake {
                    sm: sm_idx,
                    slot,
                    gen,
                },
            );
        }
        if live == 0 {
            // Degenerate CTA with no work at all.
            self.sms[sm_idx].free_cta_slots.push(cta_slot);
            self.retired_ctas += 1;
            return;
        }
        self.sms[sm_idx].ctas[cta_slot] = Some(CtaState {
            warp_slots,
            live_warps: live,
            arrived: 0,
        });
    }

    fn process_due_events(&mut self) {
        while self.events.peek().is_some_and(|event| event.at <= self.now) {
            let event = self.events.pop().expect("peeked");
            match event.kind {
                EventKind::LoadDone {
                    sm,
                    slot,
                    gen,
                    reg,
                    sectors,
                } => {
                    self.sms[sm].inflight_loads =
                        self.sms[sm].inflight_loads.saturating_sub(sectors as usize);
                    if self.gens[sm][slot] == gen {
                        if let Some(warp) = self.sms[sm].warps[slot].as_mut() {
                            warp.pending_mem &= !reg_bit(reg);
                        }
                        self.reevaluate(sm, slot);
                    }
                    self.wake_mem_waiters(sm);
                }
                EventKind::StoreDone { sm, sectors } => {
                    self.sms[sm].inflight_stores = self.sms[sm]
                        .inflight_stores
                        .saturating_sub(sectors as usize);
                    self.wake_mem_waiters(sm);
                }
                EventKind::Wake { sm, slot, gen } => {
                    if self.gens[sm][slot] == gen {
                        self.reevaluate(sm, slot);
                    }
                }
            }
        }
    }

    /// Moves warps blocked on MSHR/store-queue space back to ready so they
    /// can retry their memory instruction.
    ///
    /// Wakes at most two waiters (FIFO) per completion: each completion
    /// frees one access worth of sectors, so waking the whole queue would
    /// only make every waiter fail its retry and re-enqueue — an O(queue²)
    /// trap. Head-of-line blocking of a wide gather behind a narrow load is
    /// the realistic behaviour anyway.
    fn wake_mem_waiters(&mut self, sm: usize) {
        // If nothing is left in flight there will be no further completion
        // events: every waiter must get its retry now or never.
        let wake_all = self.sms[sm].inflight_loads == 0 && self.sms[sm].inflight_stores == 0;
        let budget = if wake_all {
            self.sms[sm].mem_waiters.len()
        } else {
            2
        };
        for _ in 0..budget {
            let Some(slot) = self.sms[sm].mem_waiters.pop_front() else {
                break;
            };
            self.reevaluate(sm, slot);
        }
    }

    /// Re-derives a blocked warp's state from its current instruction:
    /// accounts the finished stall period and either unblocks it into the
    /// ready list or re-blocks it with the (possibly different) reason.
    fn reevaluate(&mut self, sm: usize, slot: usize) {
        let now = self.now;
        let mut push_wake: Option<u64> = None;
        let mut became_ready = false;
        {
            let warp = match self.sms[sm].warps[slot].as_mut() {
                Some(w) if !w.done => w,
                _ => return,
            };
            let Some(reason) = warp.blocked else { return };
            // Barrier wakes are driven exclusively by the releasing warp.
            if reason == BlockReason::Barrier {
                return;
            }
            let instr = *warp.current();
            let mem_mask = warp.mem_blocking(&instr);
            let alu_ready = warp.alu_ready_at(&instr);
            let new_reason = if mem_mask != 0 {
                Some(BlockReason::Memory)
            } else if alu_ready > now {
                Some(BlockReason::Execution)
            } else {
                None
            };
            match new_reason {
                None => {
                    self.stalls
                        .add(reason.stall_reason(), now.saturating_sub(warp.block_start));
                    warp.blocked = None;
                    became_ready = true;
                }
                Some(next) if next != reason => {
                    self.stalls
                        .add(reason.stall_reason(), now.saturating_sub(warp.block_start));
                    warp.blocked = Some(next);
                    warp.block_start = now;
                    if next == BlockReason::Execution {
                        push_wake = Some(alu_ready);
                    }
                }
                Some(_) => { /* still blocked for the same reason; wait for its event */ }
            }
        }
        if became_ready {
            self.make_ready(sm, slot);
        }
        if let Some(at) = push_wake {
            let gen = self.gens[sm][slot];
            self.push_event(at, EventKind::Wake { sm, slot, gen });
        }
    }

    /// One issue cycle over every scheduler. Returns whether any scheduler
    /// had ready warps (used to decide between stepping and skipping).
    ///
    /// Idle/Stall occupancy buckets are *not* incremented here: idle time is
    /// integrated at resident-count transitions and stall time falls out as
    /// the residual at finalize, which keeps the per-cycle cost of empty
    /// schedulers at a single branch.
    fn issue_phase(&mut self) -> bool {
        if self.active_count == 0 {
            return false;
        }
        let mut any_ready = false;
        // Walking the flags in key order keeps the deterministic SM-major
        // order without sorting a worklist every cycle.
        for key in 0..self.is_active.len() {
            if !self.is_active[key] {
                continue;
            }
            let sm = key / self.cfg.schedulers_per_sm;
            let sched = key % self.cfg.schedulers_per_sm;
            if self.sms[sm].ready[sched].is_empty() {
                // Stale entry: deactivate.
                self.is_active[key] = false;
                self.active_count -= 1;
                continue;
            }
            any_ready = true;
            let issued = self.try_issue_for_scheduler(sm, sched);
            let remaining = self.sms[sm].ready[sched].len();
            if issued {
                // Ready-but-not-chosen warps this cycle.
                self.stalls
                    .add(StallReason::NotSelected, remaining.saturating_sub(1) as u64);
            } else {
                self.stalls.add(StallReason::NotSelected, remaining as u64);
            }
        }
        any_ready
    }

    /// Greedy-then-oldest pick: last-issued warp first, then ascending
    /// age — a single linear walk over the age-sorted ready list. A
    /// realistic scheduler examines a small window, so the walk gives up
    /// after four candidates whose functional unit has no issue slot this
    /// cycle; those are rejected from the [`SmState::cur_fu`] shadow array
    /// without touching their scattered `WarpState`s (FU-busy rejections
    /// outnumber issues on compute-dense kernels). Returns whether an
    /// issue happened.
    fn try_issue_for_scheduler(&mut self, sm: usize, sched: usize) -> bool {
        let now_f = self.now as f64;
        let mut busy = 0usize;
        // Greedy phase: retry the last-issued warp first, regardless of age.
        let greedy = self.sms[sm].last_issued[sched]
            .filter(|&g| self.sms[sm].ready[sched].iter().any(|&(slot, _)| slot == g));
        if let Some(g) = greedy {
            let fu = self.sms[sm].cur_fu[g];
            if fu != NO_FU && self.sms[sm].fu_free[fu as usize] > now_f {
                busy += 1;
            } else {
                match self.issue_warp(sm, sched, g) {
                    IssueOutcome::Issued => {
                        self.sms[sm].last_issued[sched] = Some(g);
                        return true;
                    }
                    IssueOutcome::FuBusy => busy += 1,
                    IssueOutcome::BecameBlocked => {}
                }
            }
        }
        // Oldest-first walk. A candidate that blocks on MSHR/store-queue
        // capacity leaves the list, so the index then already points at
        // the next entry.
        let mut i = 0usize;
        while busy < 4 {
            let Some(&(slot, _)) = self.sms[sm].ready[sched].get(i) else {
                return false;
            };
            if Some(slot) == greedy {
                i += 1;
                continue;
            }
            let fu = self.sms[sm].cur_fu[slot];
            if fu != NO_FU && self.sms[sm].fu_free[fu as usize] > now_f {
                busy += 1;
                i += 1;
                continue;
            }
            match self.issue_warp(sm, sched, slot) {
                IssueOutcome::Issued => {
                    self.sms[sm].last_issued[sched] = Some(slot);
                    return true;
                }
                IssueOutcome::FuBusy => {
                    busy += 1;
                    i += 1;
                }
                IssueOutcome::BecameBlocked => {}
            }
        }
        false
    }

    /// Expands the current instruction's coalesced sectors into
    /// `scratch_sectors` (cleared first). `per_lane` keeps duplicates (the
    /// atomic path).
    fn expand_sectors(&mut self, sm: usize, slot: usize, per_lane: bool) {
        self.scratch_sectors.clear();
        let mut v = std::mem::take(&mut self.scratch_sectors);
        {
            let warp = self.sms[sm].warps[slot].as_ref().expect("ready warp");
            let mem = warp
                .trace
                .mem_at(warp.pc)
                .expect("memory instr carries addresses");
            if per_lane {
                mem.lane_sectors_into(&mut v);
            } else {
                mem.sectors_into(&mut v);
            }
        }
        self.scratch_sectors = v;
    }

    fn issue_warp(&mut self, sm: usize, sched: usize, slot: usize) -> IssueOutcome {
        let now = self.now;
        // Copy out what we need from the instruction (Instr is Copy) so no
        // borrow is held across SM mutation.
        let (class, dst, active) = {
            let warp = self.sms[sm].warps[slot].as_ref().expect("ready warp");
            let instr = warp.current();
            (instr.class, instr.dst, instr.active)
        };

        // Functional-unit structural check.
        if let Some(fu) = FuKind::of(class) {
            let free_at = self.sms[sm].fu_free[fu as usize];
            if free_at > now as f64 {
                return IssueOutcome::FuBusy;
            }
        }

        match class {
            InstrClass::LoadGlobal => {
                self.expand_sectors(sm, slot, false);
                let needed = self.scratch_sectors.len();
                if self.sms[sm].inflight_loads + needed > self.cfg.l1_mshrs {
                    self.block_on_mem_capacity(sm, sched, slot);
                    return IssueOutcome::BecameBlocked;
                }
                let sectors = std::mem::take(&mut self.scratch_sectors);
                let result = self.mem.access(sm, &sectors, now, false);
                self.scratch_sectors = sectors;
                self.sms[sm].inflight_loads += needed;
                let gen = self.gens[sm][slot];
                self.push_event(
                    result.done_at,
                    EventKind::LoadDone {
                        sm,
                        slot,
                        gen,
                        reg: dst,
                        sectors: needed as u32,
                    },
                );
                if dst != NO_REG {
                    let warp = self.sms[sm].warps[slot].as_mut().expect("ready warp");
                    warp.pending_mem |= reg_bit(dst);
                }
                self.mix.load_store += 1;
                self.consume_fu(sm, FuKind::Ldst);
                self.complete_issue(sm, sched, slot, active);
            }
            InstrClass::StoreGlobal | InstrClass::AtomicGlobal => {
                let is_atomic = class == InstrClass::AtomicGlobal;
                self.expand_sectors(sm, slot, is_atomic);
                // Queue occupancy is in unique sectors.
                let unique = if is_atomic {
                    let mut u = self.scratch_sectors.clone();
                    u.sort_unstable();
                    u.dedup();
                    u.len()
                } else {
                    self.scratch_sectors.len()
                };
                if self.sms[sm].inflight_stores + unique > self.cfg.store_queue {
                    self.block_on_mem_capacity(sm, sched, slot);
                    return IssueOutcome::BecameBlocked;
                }
                let sectors = std::mem::take(&mut self.scratch_sectors);
                let result = if is_atomic {
                    self.mem.atomic(sm, &sectors, now)
                } else {
                    self.mem.access(sm, &sectors, now, true)
                };
                self.scratch_sectors = sectors;
                self.sms[sm].inflight_stores += unique;
                self.push_event(
                    result.done_at,
                    EventKind::StoreDone {
                        sm,
                        sectors: unique as u32,
                    },
                );
                self.mix.load_store += 1;
                self.consume_fu(sm, FuKind::Ldst);
                self.complete_issue(sm, sched, slot, active);
            }
            InstrClass::Fp32 | InstrClass::Int | InstrClass::Sfu => {
                let latency = if class == InstrClass::Sfu {
                    self.cfg.sfu_latency
                } else {
                    self.cfg.alu_latency
                };
                {
                    let warp = self.sms[sm].warps[slot].as_mut().expect("ready warp");
                    if dst != NO_REG {
                        let idx = (dst % crate::isa::REG_WINDOW) as usize;
                        warp.reg_ready_at[idx] = now + latency;
                    }
                }
                match class {
                    InstrClass::Fp32 => self.mix.fp32 += 1,
                    InstrClass::Int => self.mix.int += 1,
                    _ => self.mix.other += 1,
                }
                self.consume_fu(sm, FuKind::of(class).expect("compute class"));
                self.complete_issue(sm, sched, slot, active);
            }
            InstrClass::Control => {
                self.mix.control += 1;
                // Post-branch fetch refill: regardless of the next
                // instruction's dependencies, the warp waits for the fetch
                // stage; `reevaluate` re-derives any deeper block when the
                // refill completes.
                let gen = self.gens[sm][slot];
                self.advance_pc(sm, sched, slot);
                let retired = self.sms[sm].warps[slot].as_ref().is_none_or(|w| w.done);
                if !retired {
                    self.remove_from_ready_if_needed(sm, sched, slot);
                    let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
                    warp.blocked = Some(BlockReason::IFetch);
                    warp.block_start = now;
                    self.push_event(
                        now + self.cfg.ifetch_latency,
                        EventKind::Wake { sm, slot, gen },
                    );
                }
                self.record_issue(active);
            }
            InstrClass::Sync => {
                self.mix.control += 1;
                self.handle_barrier(sm, sched, slot, active);
            }
        }
        IssueOutcome::Issued
    }

    fn consume_fu(&mut self, sm: usize, fu: FuKind) {
        let interval = self.inv_fu_rate[fu as usize];
        let free = &mut self.sms[sm].fu_free[fu as usize];
        *free = free.max(self.now as f64) + interval;
    }

    fn record_issue(&mut self, active: u8) {
        self.occ.record_issue(active);
        self.stalls.add(StallReason::InstructionIssued, 1);
    }

    /// Common post-issue path for straight-line instructions: record, move
    /// the PC forward and either retire, keep ready, or block on the next
    /// instruction's dependencies.
    fn complete_issue(&mut self, sm: usize, sched: usize, slot: usize, active: u8) {
        self.record_issue(active);
        self.advance_pc(sm, sched, slot);
    }

    fn advance_pc(&mut self, sm: usize, sched: usize, slot: usize) {
        let now = self.now;
        enum Next {
            Retire,
            Ready,
            Block(BlockReason, Option<u64>),
        }
        let next = {
            let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
            warp.pc += 1;
            if warp.pc >= warp.trace.len() {
                Next::Retire
            } else {
                let instr = *warp.current();
                let mem_mask = warp.mem_blocking(&instr);
                let alu_ready = warp.alu_ready_at(&instr);
                if mem_mask != 0 {
                    Next::Block(BlockReason::Memory, None)
                } else if alu_ready > now {
                    Next::Block(BlockReason::Execution, Some(alu_ready))
                } else {
                    Next::Ready
                }
            }
        };
        match next {
            Next::Retire => {
                self.retire_warp(sm, sched, slot);
                return;
            }
            Next::Ready => { /* stays in (or returns to) the ready list */ }
            Next::Block(reason, wake_at) => {
                self.remove_from_ready_if_needed(sm, sched, slot);
                let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
                warp.blocked = Some(reason);
                warp.block_start = now;
                if let Some(at) = wake_at {
                    let gen = self.gens[sm][slot];
                    self.push_event(at, EventKind::Wake { sm, slot, gen });
                }
            }
        }
        self.refresh_cur_fu(sm, slot);
    }

    fn remove_from_ready_if_needed(&mut self, sm: usize, sched: usize, slot: usize) {
        let in_ready = self.sms[sm].warps[slot]
            .as_ref()
            .is_some_and(|w| w.in_ready);
        if in_ready {
            let ready = &mut self.sms[sm].ready[sched];
            if let Some(pos) = ready.iter().position(|&(s, _)| s == slot) {
                // Ordered remove keeps the list sorted by age.
                ready.remove(pos);
            }
            if let Some(w) = self.sms[sm].warps[slot].as_mut() {
                w.in_ready = false;
            }
        }
    }

    fn block_on_mem_capacity(&mut self, sm: usize, sched: usize, slot: usize) {
        self.remove_from_ready_if_needed(sm, sched, slot);
        let now = self.now;
        let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
        warp.blocked = Some(BlockReason::Memory);
        warp.block_start = now;
        self.sms[sm].mem_waiters.push_back(slot);
    }

    fn handle_barrier(&mut self, sm: usize, sched: usize, slot: usize, active: u8) {
        self.record_issue(active);
        let cta_slot = self.sms[sm].warps[slot]
            .as_ref()
            .expect("live warp")
            .cta_slot;
        let (arrived, live) = {
            let cta = self.sms[sm].ctas[cta_slot].as_mut().expect("live CTA");
            cta.arrived += 1;
            (cta.arrived, cta.live_warps)
        };
        if arrived >= live {
            // Everyone is here: release all waiters, then advance self.
            // The slot list is copied into a reused scratch buffer (not a
            // fresh Vec) because `post_barrier_eval` needs `&mut self`.
            let mut waiters = std::mem::take(&mut self.barrier_scratch);
            waiters.clear();
            {
                let cta = self.sms[sm].ctas[cta_slot].as_mut().expect("live CTA");
                cta.arrived = 0;
                waiters.extend_from_slice(&cta.warp_slots);
            }
            let now = self.now;
            for &w in &waiters {
                if w == slot {
                    continue;
                }
                let (was_barrier, start) = {
                    match self.sms[sm].warps[w].as_ref() {
                        Some(ws) if ws.blocked == Some(BlockReason::Barrier) => {
                            (true, ws.block_start)
                        }
                        _ => (false, 0),
                    }
                };
                if was_barrier {
                    self.stalls
                        .add(StallReason::Synchronization, now.saturating_sub(start));
                    if let Some(ws) = self.sms[sm].warps[w].as_mut() {
                        ws.blocked = None;
                        ws.pc += 1;
                    }
                    self.refresh_cur_fu(sm, w);
                    // Evaluate the released warp's next instruction.
                    self.post_barrier_eval(sm, w);
                }
            }
            self.barrier_scratch = waiters;
            self.advance_pc(sm, sched, slot);
        } else {
            self.remove_from_ready_if_needed(sm, sched, slot);
            let now = self.now;
            let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
            warp.blocked = Some(BlockReason::Barrier);
            warp.block_start = now;
        }
    }

    /// After a barrier release, a woken warp is positioned after the sync;
    /// classify its next state like `advance_pc` does (minus the pc bump,
    /// which the releaser already performed).
    fn post_barrier_eval(&mut self, sm: usize, slot: usize) {
        let now = self.now;
        enum Next {
            Retire(usize),
            Ready,
            Block(BlockReason, Option<u64>),
        }
        let next = {
            let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
            if warp.pc >= warp.trace.len() {
                Next::Retire(warp.sched)
            } else {
                let instr = *warp.current();
                let mem_mask = warp.mem_blocking(&instr);
                let alu_ready = warp.alu_ready_at(&instr);
                if mem_mask != 0 {
                    Next::Block(BlockReason::Memory, None)
                } else if alu_ready > now {
                    Next::Block(BlockReason::Execution, Some(alu_ready))
                } else {
                    Next::Ready
                }
            }
        };
        match next {
            Next::Retire(sched) => self.retire_warp(sm, sched, slot),
            Next::Ready => self.make_ready(sm, slot),
            Next::Block(reason, wake_at) => {
                let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
                warp.blocked = Some(reason);
                warp.block_start = now;
                if let Some(at) = wake_at {
                    let gen = self.gens[sm][slot];
                    self.push_event(at, EventKind::Wake { sm, slot, gen });
                }
            }
        }
    }

    fn retire_warp(&mut self, sm: usize, sched: usize, slot: usize) {
        self.remove_from_ready_if_needed(sm, sched, slot);
        let cta_slot = {
            let warp = self.sms[sm].warps[slot].as_mut().expect("live warp");
            warp.done = true;
            warp.cta_slot
        };
        self.gens[sm][slot] += 1; // invalidate in-flight events for this slot
        if let Some(warp) = self.sms[sm].warps[slot].take() {
            // Recycle the trace buffer into the next placement.
            self.trace_pool.push(warp.trace);
        }
        self.sms[sm].cur_fu[slot] = NO_FU;
        self.sms[sm].free_warp_slots.push(slot);
        self.sms[sm].resident[sched] = self.sms[sm].resident[sched].saturating_sub(1);
        if self.sms[sm].resident[sched] == 0 {
            // Scheduler enters the idle state after this cycle.
            let key = self.sched_key(sm, sched);
            self.idle_start[key] = self.now + 1;
        }
        let cta_done = {
            let cta = self.sms[sm].ctas[cta_slot].as_mut().expect("live CTA");
            cta.live_warps -= 1;
            cta.live_warps == 0
        };
        if cta_done {
            self.sms[sm].ctas[cta_slot] = None;
            self.sms[sm].free_cta_slots.push(cta_slot);
            self.retired_ctas += 1;
            if self.next_cta < self.sim_ctas {
                let cta = self.next_cta;
                self.next_cta += 1;
                self.place_cta(sm, cta);
            }
        }
    }

    fn finalize(mut self, total_ctas: u64) -> SimStats {
        let cycles = self.now;
        // Close idle spans for schedulers that are still empty, then derive
        // the Stall bucket as the residual of the scheduler-cycle budget.
        for sm in 0..self.sms.len() {
            for sched in 0..self.cfg.schedulers_per_sm {
                if self.sms[sm].resident[sched] == 0 {
                    let key = self.sched_key(sm, sched);
                    self.idle_acc += cycles.saturating_sub(self.idle_start[key]);
                }
            }
        }
        let sched_cycles = cycles * (self.cfg.num_sms * self.cfg.schedulers_per_sm) as u64;
        self.occ.idle = self.idle_acc.min(sched_cycles);
        let issues = self.occ.w8 + self.occ.w20 + self.occ.w32;
        self.occ.stall = sched_cycles.saturating_sub(self.occ.idle + issues);
        // Renormalize the stall distribution to *scheduler-slot samples*
        // (the nvprof/GPGPU-Sim "issue stall reasons" convention): each
        // occupied scheduler-cycle is one sample — `InstructionIssued` when
        // an instruction went out, otherwise a stall reason. The per-warp
        // integration above gives the correct *relative* weights among the
        // stall reasons; here we scale them so they fill exactly the
        // non-issuing occupied slots.
        {
            let stall_budget = self.occ.stall as f64;
            let reasons = [
                StallReason::MemoryDependency,
                StallReason::ExecutionDependency,
                StallReason::InstructionFetch,
                StallReason::Synchronization,
                StallReason::NotSelected,
            ];
            let raw_total: u64 = reasons.iter().map(|&r| self.stalls.get(r)).sum();
            if raw_total > 0 {
                let mut scaled = StallBreakdown::default();
                scaled.add(StallReason::InstructionIssued, issues);
                for r in reasons {
                    let share = self.stalls.get(r) as f64 / raw_total as f64;
                    scaled.add(r, (share * stall_budget).round() as u64);
                }
                self.stalls = scaled;
            }
        }
        let sampled_fraction = self.sim_ctas as f64 / total_ctas as f64;
        let time_ms = self.cfg.cycles_to_ms(cycles) / sampled_fraction.max(f64::MIN_POSITIVE);
        let compute_instrs = self.mix.fp32 + self.mix.int + self.mix.other;
        let issue_slots = (cycles as f64) * self.cfg.peak_issue_per_cycle();
        let compute_utilization = if issue_slots > 0.0 {
            (compute_instrs as f64 / issue_slots).min(1.0)
        } else {
            0.0
        };
        let memory_utilization = if cycles > 0 {
            (self.mem.dram_busy_cycles() / cycles as f64).min(1.0)
        } else {
            0.0
        };
        SimStats {
            kernel: self.workload.name(),
            cycles,
            time_ms,
            sampled_fraction,
            instr_mix: self.mix,
            stalls: self.stalls,
            occupancy: self.occ,
            l1: self.mem.l1_stats(),
            l2: self.mem.l2_stats(),
            dram_bytes: self.mem.dram_bytes(),
            compute_utilization,
            memory_utilization,
        }
    }
}

enum IssueOutcome {
    Issued,
    FuBusy,
    BecameBlocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ComputeWorkload, StreamWorkload};
    use crate::GpuConfig;

    fn sim(sms: usize) -> Simulator {
        Simulator::new(GpuConfig::v100_scaled(sms), SimOptions::default())
    }

    #[test]
    fn empty_grid_returns_zeroes() {
        #[derive(Debug)]
        struct Empty;
        impl crate::KernelWorkload for Empty {
            fn name(&self) -> String {
                "empty".into()
            }
            fn grid(&self) -> crate::Grid {
                crate::Grid {
                    ctas: 0,
                    warps_per_cta: 1,
                }
            }
            fn trace_into(&self, _buf: &mut crate::TraceBuf, _: u64, _: u32) {}
        }
        let stats = sim(2).run(&Empty);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.instructions(), 0);
    }

    #[test]
    fn compute_workload_counts_instructions() {
        let w = ComputeWorkload::new(4, 2, 100, 0);
        let stats = sim(2).run(&w);
        // 4 CTAs x 2 warps x (100 fp32 + 1 control)
        assert_eq!(stats.instr_mix.fp32, 4 * 2 * 100);
        assert_eq!(stats.instr_mix.control, 4 * 2);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn stream_workload_moves_dram_bytes() {
        let w = StreamWorkload::new(8, 2, 64);
        let stats = sim(2).run(&w);
        assert!(stats.dram_bytes > 0);
        assert!(stats.l1.accesses > 0);
        assert!(stats.memory_utilization > 0.0);
    }

    #[test]
    fn dependent_chain_slower_than_independent() {
        // Same instruction count; serial chain must take more cycles.
        let serial = ComputeWorkload::new(1, 1, 400, 0).serial(true);
        let parallel = ComputeWorkload::new(1, 1, 400, 0).serial(false);
        let s = sim(1).run(&serial);
        let p = sim(1).run(&parallel);
        assert!(
            s.cycles > p.cycles,
            "serial {} should exceed parallel {}",
            s.cycles,
            p.cycles
        );
        assert!(s.stalls.execution_dependency > p.stalls.execution_dependency);
    }

    #[test]
    fn cta_sampling_scales_time() {
        let w = ComputeWorkload::new(64, 2, 64, 0);
        let full = sim(2).run(&w);
        let sampled = Simulator::new(
            GpuConfig::v100_scaled(2),
            SimOptions {
                max_ctas: Some(16),
                max_cycles: None,
            },
        )
        .run(&w);
        assert!((sampled.sampled_fraction - 0.25).abs() < 1e-9);
        // Scaled estimate should land in the same ballpark as the full run.
        let ratio = sampled.time_ms / full.time_ms;
        assert!(
            (0.3..3.0).contains(&ratio),
            "scaled estimate off by {ratio}x"
        );
    }

    #[test]
    fn stall_accounting_covers_warp_lifetime() {
        let w = StreamWorkload::new(4, 2, 128);
        let stats = sim(2).run(&w);
        let total = stats.stalls.total();
        assert!(total > 0);
        // Memory-bound streaming: memory dependency must dominate exec dep.
        assert!(stats.stalls.memory_dependency > stats.stalls.execution_dependency);
    }

    #[test]
    fn occupancy_buckets_accounted_every_cycle() {
        let w = ComputeWorkload::new(2, 1, 50, 0);
        let cfg = GpuConfig::v100_scaled(2);
        let scheds = cfg.num_sms * cfg.schedulers_per_sm;
        let stats = Simulator::new(cfg, SimOptions::default()).run(&w);
        assert_eq!(
            stats.occupancy.total(),
            stats.cycles * scheds as u64,
            "every scheduler-cycle must land in exactly one bucket"
        );
    }

    #[test]
    fn barrier_synchronizes_cta() {
        use crate::{Grid, KernelWorkload, TraceBuf, TraceBuilder};
        #[derive(Debug)]
        struct BarrierKernel;
        impl KernelWorkload for BarrierKernel {
            fn name(&self) -> String {
                "barrier".into()
            }
            fn grid(&self) -> Grid {
                Grid::new(1, 4)
            }
            fn trace_into(&self, buf: &mut TraceBuf, _cta: u64, warp: u32) {
                let mut tb = TraceBuilder::on(buf, 32);
                // Unequal pre-barrier work, equal post-barrier work.
                for _ in 0..(warp + 1) * 20 {
                    tb.fp32(&[]);
                }
                tb.sync();
                for _ in 0..10 {
                    tb.int(&[]);
                }
            }
        }
        let stats = sim(1).run(&BarrierKernel);
        assert!(
            stats.stalls.synchronization > 0,
            "early-arriving warps must wait at the barrier"
        );
        assert_eq!(stats.instr_mix.int, 4 * 10, "all warps ran the epilogue");
    }

    #[test]
    fn max_cycles_is_a_hard_stop() {
        let w = ComputeWorkload::new(512, 4, 4000, 0);
        let stats = Simulator::new(
            GpuConfig::v100_scaled(1),
            SimOptions {
                max_ctas: None,
                max_cycles: Some(500),
            },
        )
        .run(&w);
        assert!(stats.cycles <= 501);
    }
}
