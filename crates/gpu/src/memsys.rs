//! Memory subsystem: per-SM L1D caches, a shared L2, and a DRAM
//! bandwidth/latency model, plus the atomic unit.
//!
//! Servers (L2, DRAM) are modeled as fluid queues: each has a service rate
//! (sectors per cycle) tracked as a `free_at` timestamp, so the simulator
//! never needs per-cycle token loops — a request's completion time is
//! computed in O(1) when it is injected. This is what keeps multi-million
//! instruction kernels affordable while preserving bandwidth and queueing
//! behaviour.

use crate::cache::SetAssocCache;
use crate::config::{GpuConfig, SECTOR_BYTES};
use crate::stats::CacheStats;

/// Outcome of injecting one warp-level memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemResult {
    /// Cycle at which the access's data is available (loads) or fully
    /// drained (stores/atomics).
    pub done_at: u64,
    /// Number of 32-byte sectors the access coalesced into.
    pub sectors: u32,
}

/// A fixed-size, open-addressed table tracking in-service completion times
/// of recently touched atomic sectors. Collisions overwrite (an
/// approximation that bounds memory while preserving hot-sector
/// serialization, the first-order contention effect in scatter).
#[derive(Debug)]
struct AtomicTable {
    tags: Vec<u64>,
    free_at: Vec<u64>,
    mask: usize,
}

impl AtomicTable {
    fn new(slots_pow2: usize) -> Self {
        let n = slots_pow2.next_power_of_two();
        AtomicTable {
            tags: vec![u64::MAX; n],
            free_at: vec![0; n],
            mask: n - 1,
        }
    }

    /// Serializes an atomic on `sector` starting no earlier than `now`;
    /// returns the cycle the RMW completes.
    fn serialize(&mut self, sector: u64, now: u64, op_latency: u64) -> u64 {
        // Fibonacci hashing spreads sequential sector ids.
        let slot = ((sector.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 40) as usize & self.mask;
        let start = if self.tags[slot] == sector {
            self.free_at[slot].max(now)
        } else {
            self.tags[slot] = sector;
            now
        };
        let done = start + op_latency;
        self.free_at[slot] = done;
        done
    }

    fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.free_at.fill(0);
    }
}

/// The device memory hierarchy shared by all SMs.
#[derive(Debug)]
pub struct MemSubsystem {
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    l1_latency: u64,
    l2_latency: u64,
    dram_latency: u64,
    atomic_latency: u64,
    /// Cycles of L2 service time per sector (1 / rate).
    l2_service: f64,
    /// Cycles of DRAM service time per sector (1 / rate).
    dram_service: f64,
    /// Global loads skip the L1 entirely (ablation knob).
    l1_bypass: bool,
    /// Fluid-queue clocks, in fractional cycles.
    l2_free_at: f64,
    dram_free_at: f64,
    atomics: AtomicTable,
    /// Total DRAM sector transfers (for bandwidth/utilization accounting).
    dram_sectors: u64,
    /// Accumulated DRAM busy time in cycles.
    dram_busy: f64,
}

impl MemSubsystem {
    /// Builds the hierarchy for `config`.
    pub fn new(config: &GpuConfig) -> Self {
        MemSubsystem {
            l1: (0..config.num_sms)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: SetAssocCache::new(config.l2),
            l1_latency: config.l1_latency,
            l2_latency: config.l2_latency,
            dram_latency: config.dram_latency,
            atomic_latency: config.atomic_latency,
            l1_bypass: config.l1_bypass,
            l2_service: 1.0 / config.l2_sectors_per_cycle,
            dram_service: 1.0 / config.dram_sectors_per_cycle,
            l2_free_at: 0.0,
            dram_free_at: 0.0,
            atomics: AtomicTable::new(1 << 20),
            dram_sectors: 0,
            dram_busy: 0.0,
        }
    }

    /// Injects a load/store of `sectors` (deduplicated sector ids) from SM
    /// `sm` at cycle `now`. Returns the completion time and transaction
    /// count. Stores take the same path with write-through/no-allocate L1
    /// semantics (`is_store = true` skips the L1 fill).
    pub fn access(&mut self, sm: usize, sectors: &[u64], now: u64, is_store: bool) -> MemResult {
        let mut done = now + self.l1_latency;
        for &sector in sectors {
            // Write-through, no write-allocate L1: stores skip the L1
            // entirely and are serviced by L2 (Volta behaviour); loads
            // look up and fill the per-SM L1 unless bypassing is enabled.
            let l1_hit = !is_store && !self.l1_bypass && self.l1[sm].access(sector);
            if l1_hit {
                done = done.max(now + self.l1_latency);
                continue;
            }
            // L2 service (fluid queue).
            let arrival = (now + self.l1_latency) as f64;
            let start = arrival.max(self.l2_free_at);
            self.l2_free_at = start + self.l2_service;
            let l2_hit = self.l2.access(sector);
            let sector_done = if l2_hit {
                start as u64 + self.l2_latency
            } else {
                let dram_arrival = start + self.l2_latency as f64;
                let dram_start = dram_arrival.max(self.dram_free_at);
                self.dram_free_at = dram_start + self.dram_service;
                self.dram_busy += self.dram_service;
                self.dram_sectors += 1;
                dram_start as u64 + self.dram_latency
            };
            done = done.max(sector_done);
        }
        MemResult {
            done_at: done,
            sectors: sectors.len() as u32,
        }
    }

    /// Injects an atomic RMW on `sectors` from SM `sm`. Atomics bypass L1
    /// and serialize per sector at the L2 atomic unit (as on Volta);
    /// duplicate sectors *within* the warp serialize against each other,
    /// which is how hot scatter destinations show up as latency.
    ///
    /// Unlike [`MemSubsystem::access`], `sectors` here may contain
    /// duplicates (one entry per active lane).
    pub fn atomic(&mut self, _sm: usize, sectors: &[u64], now: u64) -> MemResult {
        let mut done = now + self.l1_latency;
        for &sector in sectors {
            // Each atomic also consumes L2 bandwidth.
            let arrival = (now + self.l1_latency) as f64;
            let start = arrival.max(self.l2_free_at);
            self.l2_free_at = start + self.l2_service;
            let l2_hit = self.l2.access(sector);
            let base_ready = if l2_hit {
                start as u64 + self.l2_latency
            } else {
                let dram_arrival = start + self.l2_latency as f64;
                let dram_start = dram_arrival.max(self.dram_free_at);
                self.dram_free_at = dram_start + self.dram_service;
                self.dram_busy += self.dram_service;
                self.dram_sectors += 1;
                dram_start as u64 + self.dram_latency
            };
            let serialized = self
                .atomics
                .serialize(sector, base_ready, self.atomic_latency);
            done = done.max(serialized);
        }
        MemResult {
            done_at: done,
            sectors: sectors.len() as u32,
        }
    }

    /// Merged L1 counters across all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.l1 {
            s.accesses += c.accesses();
            s.hits += c.hits();
        }
        s
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        CacheStats {
            accesses: self.l2.accesses(),
            hits: self.l2.hits(),
        }
    }

    /// Total bytes read from / written to DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_sectors * SECTOR_BYTES
    }

    /// Accumulated DRAM busy time, in cycles.
    pub fn dram_busy_cycles(&self) -> f64 {
        self.dram_busy
    }

    /// Clears caches, queues and counters (between kernels).
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.reset();
        }
        self.l2.reset();
        self.l2_free_at = 0.0;
        self.dram_free_at = 0.0;
        self.atomics.reset();
        self.dram_sectors = 0;
        self.dram_busy = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GpuConfig {
        GpuConfig::v100_scaled(2)
    }

    #[test]
    fn repeated_load_hits_l1_and_gets_faster() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        let cold = mem.access(0, &[100], 0, false);
        let warm = mem.access(0, &[100], cold.done_at, false);
        assert!(cold.done_at >= cfg.l1_latency + cfg.l2_latency + cfg.dram_latency);
        assert_eq!(warm.done_at - cold.done_at, cfg.l1_latency);
        let l1 = mem.l1_stats();
        assert_eq!(l1.accesses, 2);
        assert_eq!(l1.hits, 1);
    }

    #[test]
    fn l2_serves_misses_from_other_sms() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        mem.access(0, &[55], 0, false); // DRAM fill, lands in L2
        let t = mem.access(1, &[55], 10_000, false); // different SM: L1 miss, L2 hit
        assert_eq!(mem.l2_stats().hits, 1);
        assert_eq!(t.done_at, 10_000 + cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn dram_bandwidth_queues_requests() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        // Flood with distinct sectors at cycle 0: completion times must
        // spread by at least the service interval.
        let sectors: Vec<u64> = (0..200).map(|i| i * 1_000).collect();
        let r = mem.access(0, &sectors, 0, false);
        let min_span = (200.0 * (1.0 / cfg.dram_sectors_per_cycle)) as u64;
        assert!(
            r.done_at >= min_span,
            "200 sectors at {} sectors/cycle must take >= {min_span} cycles, got {}",
            cfg.dram_sectors_per_cycle,
            r.done_at
        );
        assert_eq!(mem.dram_bytes(), 200 * SECTOR_BYTES);
    }

    #[test]
    fn stores_do_not_allocate_in_l1() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        mem.access(0, &[42], 0, true); // store
        let after = mem.access(0, &[42], 50_000, false); // load must miss L1 (but hits L2)
        assert_eq!(mem.l1_stats().hits, 0);
        assert_eq!(after.done_at, 50_000 + cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn atomics_serialize_on_same_sector() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        // 32 lanes all hammering one sector: must serialize ~32x atomic_latency.
        let sectors = vec![7u64; 32];
        let r = mem.atomic(0, &sectors, 0);
        let serial_floor = 32 * cfg.atomic_latency;
        assert!(
            r.done_at >= serial_floor,
            "32 same-sector atomics must serialize: {} < {serial_floor}",
            r.done_at
        );
    }

    #[test]
    fn atomics_to_distinct_sectors_overlap() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        let distinct: Vec<u64> = (0..32).map(|i| i * 100).collect();
        let spread = mem.atomic(0, &distinct, 0);
        mem.reset();
        let same = mem.atomic(0, &vec![7u64; 32], 0);
        assert!(
            spread.done_at < same.done_at,
            "distinct sectors ({}) should finish before one hot sector ({})",
            spread.done_at,
            same.done_at
        );
    }

    #[test]
    fn reset_clears_state() {
        let cfg = small_config();
        let mut mem = MemSubsystem::new(&cfg);
        mem.access(0, &[1, 2, 3], 0, false);
        mem.reset();
        assert_eq!(mem.l1_stats().accesses, 0);
        assert_eq!(mem.l2_stats().accesses, 0);
        assert_eq!(mem.dram_bytes(), 0);
    }
}
