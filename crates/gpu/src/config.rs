use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;

/// Full architectural configuration of the simulated GPU.
///
/// The [`GpuConfig::v100`] preset models an NVIDIA V100 (Volta, SXM2 32 GB)
/// — the card the paper runs on — and [`GpuConfig::v100_scaled`] produces a
/// proportionally shrunk device (fewer SMs with per-SM cache capacity and
/// bandwidth shares held constant) for tractable cycle simulation.
///
/// Rates are expressed in *warp instructions per cycle per SM* for the
/// functional units and *32-byte sectors per cycle* for memory servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable device name (appears in reports).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub warps_per_sm: usize,
    /// Maximum resident CTAs per SM.
    pub ctas_per_sm: usize,
    /// Warp schedulers per SM (each issues one warp instruction per cycle).
    pub schedulers_per_sm: usize,
    /// Threads per warp (32 on all NVIDIA architectures).
    pub warp_size: usize,
    /// Core clock in GHz; converts cycles to wall time.
    pub clock_ghz: f64,

    /// FP32 issue throughput per SM (warp instructions per cycle).
    pub fp32_rate: f64,
    /// Integer issue throughput per SM.
    pub int_rate: f64,
    /// Special-function-unit issue throughput per SM.
    pub sfu_rate: f64,
    /// Load/store issue throughput per SM.
    pub ldst_rate: f64,
    /// Result latency of FP32/INT ALU operations (cycles).
    pub alu_latency: u64,
    /// Result latency of SFU operations (cycles).
    pub sfu_latency: u64,
    /// Instruction fetch/decode refill latency (cycles) paid at warp start
    /// and after control-flow instructions.
    pub ifetch_latency: u64,

    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// Maximum outstanding memory sectors per SM (MSHR capacity).
    pub l1_mshrs: usize,
    /// Device-wide shared L2 cache.
    pub l2: CacheConfig,
    /// L2 hit latency (cycles), on top of L1 latency.
    pub l2_latency: u64,
    /// Aggregate L2 service rate (sectors per cycle, device-wide).
    pub l2_sectors_per_cycle: f64,
    /// DRAM access latency (cycles), on top of L2.
    pub dram_latency: u64,
    /// Aggregate DRAM bandwidth (sectors per cycle, device-wide).
    pub dram_sectors_per_cycle: f64,
    /// Additional serialization latency of an atomic RMW on one sector.
    pub atomic_latency: u64,
    /// Maximum in-flight store/atomic sectors per SM.
    pub store_queue: usize,
    /// Bypass the L1 for global loads (the mitigation the paper suggests
    /// for GNN inference's cache-hostile gathers, §V-D5). Stores already
    /// bypass (write-through no-allocate).
    pub l1_bypass: bool,
}

/// Memory sector (minimum transaction) size in bytes, as on Volta.
pub const SECTOR_BYTES: u64 = 32;

impl GpuConfig {
    /// Full-size NVIDIA V100 (SXM2 32 GB) model.
    ///
    /// 80 SMs, 64 warps/SM, 4 schedulers/SM, 128 KB L1/SM, 6 MB L2,
    /// ~900 GB/s HBM2 at 1.455 GHz (≈ 19.3 sectors/cycle).
    pub fn v100() -> Self {
        GpuConfig {
            name: "V100-SXM2-32GB (simulated)".to_string(),
            num_sms: 80,
            warps_per_sm: 64,
            ctas_per_sm: 32,
            schedulers_per_sm: 4,
            warp_size: 32,
            clock_ghz: 1.455,
            fp32_rate: 2.0,
            int_rate: 2.0,
            sfu_rate: 0.25,
            ldst_rate: 1.0,
            alu_latency: 4,
            sfu_latency: 16,
            ifetch_latency: 5,
            l1: CacheConfig::new(128 * 1024, 4),
            l1_latency: 28,
            l1_mshrs: 128,
            l2: CacheConfig::new(6 * 1024 * 1024, 16),
            l2_latency: 190,
            l2_sectors_per_cycle: 46.0,
            dram_latency: 220,
            dram_sectors_per_cycle: 19.3,
            atomic_latency: 12,
            store_queue: 192,
            l1_bypass: false,
        }
    }

    /// Returns a copy with L1 load bypassing enabled (ablation knob).
    pub fn with_l1_bypass(mut self, bypass: bool) -> Self {
        self.l1_bypass = bypass;
        self
    }

    /// A V100 proportionally scaled down to `num_sms` SMs.
    ///
    /// Per-SM resources (L1, scheduler count, FU rates, MSHRs) are
    /// unchanged; device-wide resources (L2 capacity, L2/DRAM bandwidth)
    /// shrink by `num_sms / 80` so per-SM pressure — and therefore hit
    /// rates, stall mix and utilization — stay representative. This is the
    /// standard trick for keeping trace-driven simulation affordable.
    ///
    /// # Panics
    ///
    /// Panics if `num_sms` is zero or greater than 80.
    pub fn v100_scaled(num_sms: usize) -> Self {
        assert!((1..=80).contains(&num_sms), "num_sms must be in 1..=80");
        let full = GpuConfig::v100();
        let frac = num_sms as f64 / full.num_sms as f64;
        // Round the scaled capacity down to a whole number of sets.
        let set_bytes = full.l2.associativity * SECTOR_BYTES as usize;
        let l2_bytes = (((full.l2.capacity_bytes as f64 * frac) as usize) / set_bytes * set_bytes)
            .max(64 * 1024);
        GpuConfig {
            name: format!("V100/{num_sms}sm (scaled sim)"),
            num_sms,
            l2: CacheConfig::new(l2_bytes, full.l2.associativity),
            l2_sectors_per_cycle: (full.l2_sectors_per_cycle * frac).max(1.0),
            dram_sectors_per_cycle: (full.dram_sectors_per_cycle * frac).max(0.5),
            ..full
        }
    }

    /// Total warp-issue slots per cycle (device-wide): the denominator of
    /// compute utilization.
    pub fn peak_issue_per_cycle(&self) -> f64 {
        (self.num_sms * self.schedulers_per_sm) as f64
    }

    /// Converts a cycle count to milliseconds at this clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9) * 1e3
    }

    /// Peak DRAM bandwidth in GB/s (for report headers).
    pub fn dram_gbps(&self) -> f64 {
        self.dram_sectors_per_cycle * SECTOR_BYTES as f64 * self.clock_ghz
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::v100_scaled(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_preset_is_sane() {
        let c = GpuConfig::v100();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.warp_size, 32);
        // ~900 GB/s HBM2
        let bw = c.dram_gbps();
        assert!((850.0..950.0).contains(&bw), "bandwidth {bw} GB/s");
    }

    #[test]
    fn scaled_preserves_per_sm_resources() {
        let full = GpuConfig::v100();
        let scaled = GpuConfig::v100_scaled(8);
        assert_eq!(scaled.num_sms, 8);
        assert_eq!(scaled.l1, full.l1);
        assert_eq!(scaled.fp32_rate, full.fp32_rate);
        // device-wide resources shrink ~10x (L2 rounded to whole sets)
        let ratio = full.l2.capacity_bytes as f64 / scaled.l2.capacity_bytes as f64;
        assert!((9.9..10.1).contains(&ratio), "L2 ratio {ratio}");
        assert!((scaled.dram_sectors_per_cycle * 10.0 - full.dram_sectors_per_cycle).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "num_sms must be in 1..=80")]
    fn scaled_rejects_zero() {
        let _ = GpuConfig::v100_scaled(0);
    }

    #[test]
    fn cycles_to_ms_matches_clock() {
        let c = GpuConfig::v100();
        let ms = c.cycles_to_ms(1_455_000);
        assert!((ms - 1.0).abs() < 1e-9);
    }
}
