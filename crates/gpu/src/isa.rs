//! The abstract warp-level instruction set traces are written in.
//!
//! A trace instruction is deliberately minimal: an execution class (which
//! functional unit it occupies and what mix bucket it lands in), up to three
//! source registers and one destination register (for scoreboard
//! dependencies), the number of active lanes, and — for memory operations —
//! the per-lane byte addresses the coalescer will merge into sectors.
//!
//! Registers are *virtual trace registers* local to one warp; kernels rotate
//! through a small window of them (see [`REG_WINDOW`]) to express
//! instruction-level parallelism: an unrolled loop uses several, a serial
//! dependency chain reuses one.
//!
//! # Storage model
//!
//! Traces are stored in a [`TraceBuf`] arena: a flat `Vec<Instr>` plus one
//! shared side-buffer of gather addresses that [`MemRef::Gather`] entries
//! reference by `(start, len)`. [`Instr`] is therefore `Copy` and emitting
//! an instruction — including an irregular gather — performs **zero heap
//! allocations** once the arena has warmed up; buffers are reused across
//! warps by the simulator and profilers. This is the difference between
//! trace generation being an allocator benchmark and being a memcpy.

use serde::{Deserialize, Serialize};

use crate::config::SECTOR_BYTES;

/// Virtual trace register id (per warp), `0..REG_WINDOW`.
pub type Reg = u8;

/// Sentinel meaning "no register operand".
pub const NO_REG: Reg = u8::MAX;

/// Size of the per-warp virtual register window. Trace register ids must be
/// below this value (the scoreboard uses a 64-bit mask).
pub const REG_WINDOW: u8 = 64;

/// Execution class of a trace instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Single-precision floating-point ALU op (FMA, add, mul...).
    Fp32,
    /// Integer ALU op (address arithmetic, comparisons, index math).
    Int,
    /// Special-function unit op (rsqrt, exp, ...).
    Sfu,
    /// Global-memory load.
    LoadGlobal,
    /// Global-memory store.
    StoreGlobal,
    /// Global-memory atomic read-modify-write (the scatter reduce).
    AtomicGlobal,
    /// Control flow (branch, predicate set, loop bookkeeping).
    Control,
    /// CTA-wide barrier (`__syncthreads`).
    Sync,
}

impl InstrClass {
    /// `true` for classes that access global memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            InstrClass::LoadGlobal | InstrClass::StoreGlobal | InstrClass::AtomicGlobal
        )
    }

    /// `true` for ALU/SFU classes whose results complete after a fixed
    /// latency.
    pub fn is_compute(self) -> bool {
        matches!(self, InstrClass::Fp32 | InstrClass::Int | InstrClass::Sfu)
    }
}

/// Compact, inline memory-address descriptor of one warp-level memory
/// instruction.
///
/// Coalesced accesses use the self-contained [`MemRef::Strided`] form;
/// irregular kernels (gathers, scatters) reference a `(start, len)` slice
/// of their [`TraceBuf`]'s shared address arena. Resolve against the
/// owning buffer with [`TraceBuf::resolve`] / [`TraceBuf::mem_at`] to get a
/// [`MemAccess`] view with the address-math helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemRef {
    /// Not a memory instruction.
    None,
    /// Lane `i` accesses `base + i * stride`, `lanes` lanes active.
    Strided {
        /// Byte address of lane 0.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: u32,
        /// Active lane count (1..=32).
        lanes: u8,
        /// Bytes accessed per lane.
        bytes_per_lane: u32,
    },
    /// Explicit per-lane byte addresses stored in the owning
    /// [`TraceBuf`]'s arena at `start..start + len`.
    Gather {
        /// Arena offset of lane 0's address.
        start: u32,
        /// Active lane count (1..=32).
        len: u8,
        /// Bytes accessed per lane.
        bytes_per_lane: u32,
    },
}

impl MemRef {
    /// Whether this is a real memory descriptor.
    #[inline]
    pub fn is_some(self) -> bool {
        self != MemRef::None
    }

    /// Number of active lanes (0 for [`MemRef::None`]).
    #[inline]
    pub fn lanes(self) -> u8 {
        match self {
            MemRef::None => 0,
            MemRef::Strided { lanes, .. } => lanes,
            MemRef::Gather { len, .. } => len,
        }
    }
}

/// Per-lane global-memory addresses of one warp-level memory instruction,
/// resolved against the owning [`TraceBuf`]'s address arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccess<'a> {
    /// Lane `i` accesses `base + i * stride`, `lanes` lanes active.
    Strided {
        /// Byte address of lane 0.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: u32,
        /// Active lane count (1..=32).
        lanes: u8,
        /// Bytes accessed per lane.
        bytes_per_lane: u32,
    },
    /// Explicit per-lane byte addresses.
    Gather {
        /// One byte address per active lane.
        addrs: &'a [u64],
        /// Bytes accessed per lane.
        bytes_per_lane: u32,
    },
}

impl<'a> MemAccess<'a> {
    /// Number of active lanes.
    #[inline]
    pub fn lanes(&self) -> u8 {
        match self {
            MemAccess::Strided { lanes, .. } => *lanes,
            MemAccess::Gather { addrs, .. } => addrs.len().min(32) as u8,
        }
    }

    /// Appends each lane's byte address to `out`. Callers in loops should
    /// pass a cleared scratch buffer rather than a fresh `Vec`.
    pub fn lane_addrs(&self, out: &mut Vec<u64>) {
        match *self {
            MemAccess::Strided {
                base,
                stride,
                lanes,
                ..
            } => Self::strided_lane_addrs(base, stride, lanes, out),
            MemAccess::Gather { addrs, .. } => out.extend_from_slice(addrs),
        }
    }

    /// The allocation-free strided fast path of [`MemAccess::lane_addrs`].
    #[inline]
    fn strided_lane_addrs(base: u64, stride: u32, lanes: u8, out: &mut Vec<u64>) {
        out.reserve(lanes as usize);
        for lane in 0..lanes as u64 {
            out.push(base + lane * stride as u64);
        }
    }

    /// Bytes accessed per lane.
    #[inline]
    pub fn bytes_per_lane(&self) -> u32 {
        match self {
            MemAccess::Strided { bytes_per_lane, .. } => *bytes_per_lane,
            MemAccess::Gather { bytes_per_lane, .. } => *bytes_per_lane,
        }
    }

    /// The coalescer: unique 32-byte sector ids touched by this access,
    /// sorted and deduplicated, appended to `out`.
    ///
    /// Strided accesses with a non-negative stride produce monotonically
    /// non-decreasing addresses, so their sectors are emitted pre-sorted
    /// and deduplicated on the fly without the sort the gather path needs.
    pub fn sectors_into(&self, out: &mut Vec<u64>) {
        let start = out.len();
        let bytes = self.bytes_per_lane() as u64;
        match *self {
            MemAccess::Strided {
                base,
                stride,
                lanes,
                ..
            } => {
                // Monotone fast path: dedup against the last pushed sector.
                for lane in 0..lanes as u64 {
                    let addr = base + lane * stride as u64;
                    let first = addr / SECTOR_BYTES;
                    let last = (addr + bytes - 1) / SECTOR_BYTES;
                    for s in first..=last {
                        match out.last() {
                            Some(&prev) if prev == s && out.len() > start => {}
                            _ => out.push(s),
                        }
                    }
                }
            }
            MemAccess::Gather { addrs, .. } => {
                // Push expanded sectors, tracking sortedness on the fly:
                // row-strip gathers (SpMM, wide indexSelect) emit ascending
                // addresses and skip the sort entirely.
                let mut sorted = true;
                let mut prev = 0u64;
                for &a in addrs {
                    let first = a / SECTOR_BYTES;
                    let last = (a + bytes - 1) / SECTOR_BYTES;
                    sorted &= out.len() == start || first >= prev;
                    prev = last;
                    out.push(first);
                    for s in first + 1..=last {
                        out.push(s);
                    }
                }
                if !sorted {
                    out[start..].sort_unstable();
                }
                let mut w = start;
                for i in start..out.len() {
                    if w == start || out[w - 1] != out[i] {
                        out[w] = out[i];
                        w += 1;
                    }
                }
                out.truncate(w);
            }
        }
    }

    /// Convenience wrapper returning the sectors as a fresh vector.
    pub fn sectors(&self) -> Vec<u64> {
        let mut v = Vec::new();
        self.sectors_into(&mut v);
        v
    }

    /// Per-lane sector ids *without* deduplication (atomics serialize on
    /// duplicates, so multiplicity matters), appended to `out`.
    pub fn lane_sectors_into(&self, out: &mut Vec<u64>) {
        match *self {
            MemAccess::Strided {
                base,
                stride,
                lanes,
                ..
            } => {
                for lane in 0..lanes as u64 {
                    out.push((base + lane * stride as u64) / SECTOR_BYTES);
                }
            }
            MemAccess::Gather { addrs, .. } => {
                out.extend(addrs.iter().map(|&a| a / SECTOR_BYTES));
            }
        }
    }
}

/// One warp-level trace instruction. `Copy` — memory operands are inline
/// [`MemRef`]s resolved against the owning [`TraceBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// Execution class.
    pub class: InstrClass,
    /// Destination register, or [`NO_REG`].
    pub dst: Reg,
    /// Source registers ([`NO_REG`]-padded).
    pub srcs: [Reg; 3],
    /// Number of active lanes (1..=32); drives the occupancy W-buckets.
    pub active: u8,
    /// Memory addresses for memory-class instructions.
    pub mem: MemRef,
}

impl Instr {
    #[inline]
    fn pack_srcs(srcs: &[Reg]) -> [Reg; 3] {
        let mut out = [NO_REG; 3];
        for (slot, &reg) in out.iter_mut().zip(srcs.iter()) {
            *slot = reg;
        }
        out
    }

    /// An FP32 ALU instruction.
    #[inline]
    pub fn fp32(dst: Reg, srcs: &[Reg], active: u8) -> Self {
        Instr {
            class: InstrClass::Fp32,
            dst,
            srcs: Self::pack_srcs(srcs),
            active,
            mem: MemRef::None,
        }
    }

    /// An integer ALU instruction.
    #[inline]
    pub fn int(dst: Reg, srcs: &[Reg], active: u8) -> Self {
        Instr {
            class: InstrClass::Int,
            dst,
            srcs: Self::pack_srcs(srcs),
            active,
            mem: MemRef::None,
        }
    }

    /// A special-function-unit instruction.
    #[inline]
    pub fn sfu(dst: Reg, srcs: &[Reg], active: u8) -> Self {
        Instr {
            class: InstrClass::Sfu,
            dst,
            srcs: Self::pack_srcs(srcs),
            active,
            mem: MemRef::None,
        }
    }

    /// A global load of `mem` into `dst`, depending on `deps` (address
    /// registers).
    #[inline]
    pub fn load(dst: Reg, mem: MemRef, deps: &[Reg]) -> Self {
        Instr {
            class: InstrClass::LoadGlobal,
            dst,
            srcs: Self::pack_srcs(deps),
            active: mem.lanes(),
            mem,
        }
    }

    /// A global store of register `src` to `mem`.
    #[inline]
    pub fn store(src: Reg, mem: MemRef) -> Self {
        Instr {
            class: InstrClass::StoreGlobal,
            dst: NO_REG,
            srcs: Self::pack_srcs(&[src]),
            active: mem.lanes(),
            mem,
        }
    }

    /// A global atomic RMW of register `src` onto `mem` (no return value,
    /// like the `atomicAdd` in a scatter reduction).
    #[inline]
    pub fn atomic(src: Reg, mem: MemRef) -> Self {
        Instr {
            class: InstrClass::AtomicGlobal,
            dst: NO_REG,
            srcs: Self::pack_srcs(&[src]),
            active: mem.lanes(),
            mem,
        }
    }

    /// A control-flow instruction (branch / loop bookkeeping).
    #[inline]
    pub fn control(active: u8) -> Self {
        Instr {
            class: InstrClass::Control,
            dst: NO_REG,
            srcs: [NO_REG; 3],
            active,
            mem: MemRef::None,
        }
    }

    /// A CTA-wide barrier.
    #[inline]
    pub fn sync(active: u8) -> Self {
        Instr {
            class: InstrClass::Sync,
            dst: NO_REG,
            srcs: [NO_REG; 3],
            active,
            mem: MemRef::None,
        }
    }

    /// Iterator over real (non-sentinel) source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|&r| r != NO_REG)
    }
}

/// A reusable warp-trace arena: a flat instruction vector plus one shared
/// side-buffer of gather addresses referenced by [`MemRef::Gather`].
///
/// The simulator and profilers pool these buffers: a warp's trace is
/// streamed into a recycled `TraceBuf` via
/// [`KernelWorkload::trace_into`](crate::KernelWorkload::trace_into), so
/// steady-state trace generation allocates nothing.
///
/// # Example
///
/// ```
/// use gsuite_gpu::{InstrClass, TraceBuf, TraceBuilder};
///
/// let mut buf = TraceBuf::new();
/// let mut tb = TraceBuilder::on(&mut buf, 4);
/// let idx = tb.load_lanes(0x1000, 4);          // coalesced index load
/// let val = tb.load_gather(&[0x2000, 0x9000, 0x4000, 0x100], 4, &[idx]);
/// tb.fp32(&[val]);                             // consume
/// tb.control();
/// assert_eq!(buf.len(), 4);
/// assert_eq!(buf[1].class, InstrClass::LoadGlobal);
/// let mem = buf.mem_at(1).unwrap();
/// assert_eq!(mem.lanes(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuf {
    instrs: Vec<Instr>,
    addrs: Vec<u64>,
}

impl TraceBuf {
    /// An empty trace buffer.
    pub fn new() -> Self {
        TraceBuf::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(instrs: usize, addrs: usize) -> Self {
        TraceBuf {
            instrs: Vec::with_capacity(instrs),
            addrs: Vec::with_capacity(addrs),
        }
    }

    /// Empties the buffer, keeping its allocations for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.instrs.clear();
        self.addrs.clear();
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The flat instruction slice.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The shared gather-address arena.
    #[inline]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// Resolves a [`MemRef`] against this buffer's arena.
    ///
    /// # Panics
    ///
    /// Panics if a gather reference points outside the arena (only possible
    /// when resolving a `MemRef` from a *different* buffer).
    #[inline]
    pub fn resolve(&self, mem: MemRef) -> Option<MemAccess<'_>> {
        match mem {
            MemRef::None => None,
            MemRef::Strided {
                base,
                stride,
                lanes,
                bytes_per_lane,
            } => Some(MemAccess::Strided {
                base,
                stride,
                lanes,
                bytes_per_lane,
            }),
            MemRef::Gather {
                start,
                len,
                bytes_per_lane,
            } => Some(MemAccess::Gather {
                addrs: &self.addrs[start as usize..start as usize + len as usize],
                bytes_per_lane,
            }),
        }
    }

    /// The resolved memory access of instruction `idx`, if it has one.
    #[inline]
    pub fn mem_at(&self, idx: usize) -> Option<MemAccess<'_>> {
        self.resolve(self.instrs[idx].mem)
    }

    /// Appends an already-built non-memory instruction.
    #[inline]
    pub fn push(&mut self, instr: Instr) {
        debug_assert!(
            !matches!(instr.mem, MemRef::Gather { .. }),
            "gather instructions must be emitted through TraceBuilder so \
             their addresses land in this buffer's arena"
        );
        self.instrs.push(instr);
    }

    /// Appends a gather-class instruction whose `lanes` addresses are
    /// produced by `addr_of(lane)`, written straight into the arena.
    /// Returns the [`MemRef`] now owned by this buffer.
    #[inline]
    pub fn push_gather_addrs(
        &mut self,
        lanes: usize,
        bytes_per_lane: u32,
        mut addr_of: impl FnMut(u64) -> u64,
    ) -> MemRef {
        debug_assert!((1..=32).contains(&lanes), "gather lanes must be 1..=32");
        let start = self.addrs.len() as u32;
        // `extend` over an exact-size range reserves once and skips the
        // per-push growth check.
        self.addrs.extend((0..lanes as u64).map(&mut addr_of));
        MemRef::Gather {
            start,
            len: lanes as u8,
            bytes_per_lane,
        }
    }
}

impl std::ops::Index<usize> for TraceBuf {
    type Output = Instr;
    #[inline]
    fn index(&self, idx: usize) -> &Instr {
        &self.instrs[idx]
    }
}

impl<'a> IntoIterator for &'a TraceBuf {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

/// Convenience builder that assembles a warp trace with rotating virtual
/// registers, streaming instructions (and gather addresses) into a
/// [`TraceBuf`] without intermediate allocations.
///
/// Kernels use it to express realistic dependency structure without
/// hand-numbering registers:
///
/// ```
/// use gsuite_gpu::{InstrClass, TraceBuf, TraceBuilder};
///
/// let mut buf = TraceBuf::new();
/// let mut tb = TraceBuilder::on(&mut buf, 32);
/// let a = tb.load_lanes(0x1000, 4);
/// let b = tb.fp32(&[a]);
/// tb.store_lanes(b, 0x2000, 4);
/// tb.control();
/// assert_eq!(buf.len(), 4);
/// ```
#[derive(Debug)]
pub struct TraceBuilder<'a> {
    buf: &'a mut TraceBuf,
    next_reg: Reg,
    active: u8,
}

impl<'a> TraceBuilder<'a> {
    /// A builder appending to `buf` for a warp with `active` live lanes.
    /// Callers reusing a buffer across warps must [`TraceBuf::clear`] it
    /// first; the builder appends.
    ///
    /// # Panics
    ///
    /// Panics if `active` is 0 or greater than 32.
    pub fn on(buf: &'a mut TraceBuf, active: usize) -> Self {
        assert!((1..=32).contains(&active), "active lanes must be 1..=32");
        TraceBuilder {
            buf,
            next_reg: 0,
            active: active as u8,
        }
    }

    /// Changes the active lane count for subsequently emitted instructions.
    ///
    /// # Panics
    ///
    /// Panics if `active` is 0 or greater than 32.
    #[inline]
    pub fn set_active(&mut self, active: usize) {
        assert!((1..=32).contains(&active), "active lanes must be 1..=32");
        self.active = active as u8;
    }

    #[inline]
    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        // Rotate through the register window: old values naturally become
        // dead, giving the scoreboard realistic reuse distances.
        self.next_reg = (self.next_reg + 1) % REG_WINDOW;
        r
    }

    /// Emits an FP32 op reading `srcs`, returns its destination register.
    #[inline]
    pub fn fp32(&mut self, srcs: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.buf.instrs.push(Instr::fp32(dst, srcs, self.active));
        dst
    }

    /// Emits an integer op reading `srcs`, returns its destination register.
    #[inline]
    pub fn int(&mut self, srcs: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.buf.instrs.push(Instr::int(dst, srcs, self.active));
        dst
    }

    /// Emits an SFU op reading `srcs`, returns its destination register.
    #[inline]
    pub fn sfu(&mut self, srcs: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.buf.instrs.push(Instr::sfu(dst, srcs, self.active));
        dst
    }

    /// Emits a unit-stride warp load: lane `i` reads
    /// `base + i * bytes_per_lane`. Returns the destination register.
    #[inline]
    pub fn load_lanes(&mut self, base: u64, bytes_per_lane: u32) -> Reg {
        self.load_strided(base, bytes_per_lane, bytes_per_lane)
    }

    /// Emits a strided warp load with an explicit inter-lane stride.
    #[inline]
    pub fn load_strided(&mut self, base: u64, stride: u32, bytes_per_lane: u32) -> Reg {
        let dst = self.alloc();
        self.buf.instrs.push(Instr::load(
            dst,
            MemRef::Strided {
                base,
                stride,
                lanes: self.active,
                bytes_per_lane,
            },
            &[],
        ));
        dst
    }

    /// Emits a gather load whose per-lane addresses are computed by
    /// `addr_of(lane)` over the current active-lane count, depending on
    /// `deps` (e.g. the register holding gathered indices). The addresses
    /// stream directly into the arena — no intermediate `Vec`. Returns the
    /// destination register.
    #[inline]
    pub fn load_gather_with(
        &mut self,
        bytes_per_lane: u32,
        deps: &[Reg],
        addr_of: impl FnMut(u64) -> u64,
    ) -> Reg {
        let dst = self.alloc();
        let mem = self
            .buf
            .push_gather_addrs(self.active as usize, bytes_per_lane, addr_of);
        self.buf.instrs.push(Instr::load(dst, mem, deps));
        dst
    }

    /// Emits a gather load from explicit per-lane addresses (slice
    /// convenience over [`TraceBuilder::load_gather_with`]).
    ///
    /// # Panics
    ///
    /// Panics unless `addrs` holds 1..=32 addresses (one per active lane).
    pub fn load_gather(&mut self, addrs: &[u64], bytes_per_lane: u32, deps: &[Reg]) -> Reg {
        let lanes = Self::gather_lanes(addrs);
        let dst = self.alloc();
        let mem = self
            .buf
            .push_gather_addrs(lanes, bytes_per_lane, |lane| addrs[lane as usize]);
        self.buf.instrs.push(Instr::load(dst, mem, deps));
        dst
    }

    /// Validates a per-lane address slice (1..=32 entries).
    fn gather_lanes(addrs: &[u64]) -> usize {
        assert!(
            !addrs.is_empty() && addrs.len() <= 32,
            "gather/scatter needs 1..=32 per-lane addresses, got {}",
            addrs.len()
        );
        addrs.len()
    }

    /// Emits a unit-stride warp store of register `src`.
    #[inline]
    pub fn store_lanes(&mut self, src: Reg, base: u64, bytes_per_lane: u32) {
        self.buf.instrs.push(Instr::store(
            src,
            MemRef::Strided {
                base,
                stride: bytes_per_lane,
                lanes: self.active,
                bytes_per_lane,
            },
        ));
    }

    /// Emits a scatter store of `src` with addresses from `addr_of(lane)`.
    #[inline]
    pub fn store_scatter_with(
        &mut self,
        src: Reg,
        bytes_per_lane: u32,
        addr_of: impl FnMut(u64) -> u64,
    ) {
        let mem = self
            .buf
            .push_gather_addrs(self.active as usize, bytes_per_lane, addr_of);
        self.buf.instrs.push(Instr::store(src, mem));
    }

    /// Emits a scatter store of `src` to explicit per-lane addresses.
    ///
    /// # Panics
    ///
    /// Panics unless `addrs` holds 1..=32 addresses (one per active lane).
    pub fn store_scatter(&mut self, src: Reg, addrs: &[u64], bytes_per_lane: u32) {
        let lanes = Self::gather_lanes(addrs);
        let mem = self
            .buf
            .push_gather_addrs(lanes, bytes_per_lane, |lane| addrs[lane as usize]);
        self.buf.instrs.push(Instr::store(src, mem));
    }

    /// Emits an atomic RMW of `src` with addresses from `addr_of(lane)`.
    #[inline]
    pub fn atomic_scatter_with(
        &mut self,
        src: Reg,
        bytes_per_lane: u32,
        addr_of: impl FnMut(u64) -> u64,
    ) {
        let mem = self
            .buf
            .push_gather_addrs(self.active as usize, bytes_per_lane, addr_of);
        self.buf.instrs.push(Instr::atomic(src, mem));
    }

    /// Emits an atomic RMW of `src` onto explicit per-lane addresses.
    ///
    /// # Panics
    ///
    /// Panics unless `addrs` holds 1..=32 addresses (one per active lane).
    pub fn atomic_scatter(&mut self, src: Reg, addrs: &[u64], bytes_per_lane: u32) {
        let lanes = Self::gather_lanes(addrs);
        let mem = self
            .buf
            .push_gather_addrs(lanes, bytes_per_lane, |lane| addrs[lane as usize]);
        self.buf.instrs.push(Instr::atomic(src, mem));
    }

    /// Emits a control-flow instruction.
    #[inline]
    pub fn control(&mut self) {
        self.buf.instrs.push(Instr::control(self.active));
    }

    /// Emits a CTA barrier.
    #[inline]
    pub fn sync(&mut self) {
        self.buf.instrs.push(Instr::sync(self.active));
    }

    /// Number of instructions emitted into the underlying buffer so far.
    pub fn len(&self) -> usize {
        self.buf.instrs.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gather(addrs: &[u64], bytes_per_lane: u32) -> (TraceBuf, usize) {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, addrs.len().clamp(1, 32));
        tb.load_gather(addrs, bytes_per_lane, &[]);
        (buf, 0)
    }

    #[test]
    fn sectors_dedup_and_split() {
        let (buf, idx) = gather(&[0, 4, 8, 31, 32, 100], 4);
        // 0..31 -> sector 0; addr 31 (4 bytes) spans sectors 0 and 1;
        // 32 -> sector 1; 100..104 -> sector 3.
        assert_eq!(buf.mem_at(idx).unwrap().sectors(), vec![0, 1, 3]);
    }

    #[test]
    fn coalesced_warp_load_touches_four_sectors() {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 32);
        tb.load_lanes(0, 4);
        let mem = buf.mem_at(0).unwrap();
        assert_eq!(mem.sectors().len(), 4, "32 lanes x 4B = 128B = 4 sectors");
    }

    #[test]
    fn strided_and_gather_agree() {
        let strided = MemAccess::Strided {
            base: 64,
            stride: 8,
            lanes: 16,
            bytes_per_lane: 4,
        };
        let addrs: Vec<u64> = (0..16).map(|i| 64 + i * 8).collect();
        let gather = MemAccess::Gather {
            addrs: &addrs,
            bytes_per_lane: 4,
        };
        assert_eq!(strided.sectors(), gather.sectors());
        assert_eq!(strided.lanes(), gather.lanes());
        let mut a = Vec::new();
        let mut b = Vec::new();
        strided.lane_addrs(&mut a);
        gather.lane_addrs(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn strided_overlapping_sectors_dedup_without_sort() {
        // 32-bit loads at stride 4 share sectors between lanes.
        let acc = MemAccess::Strided {
            base: 16,
            stride: 4,
            lanes: 32,
            bytes_per_lane: 4,
        };
        let s = acc.sectors();
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        // bytes 16..148 -> sectors 0..=4
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scattered_load_touches_many_sectors() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        let (buf, idx) = gather(&addrs, 4);
        assert_eq!(buf.mem_at(idx).unwrap().sectors().len(), 32);
    }

    #[test]
    fn lane_sectors_keep_duplicates() {
        let (buf, idx) = gather(&[0, 4, 8, 64], 4);
        let mut lanes = Vec::new();
        buf.mem_at(idx).unwrap().lane_sectors_into(&mut lanes);
        assert_eq!(lanes, vec![0, 0, 0, 2]);
    }

    #[test]
    fn builder_tracks_dependencies() {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 32);
        let a = tb.load_lanes(0, 4);
        let b = tb.fp32(&[a]);
        tb.store_lanes(b, 4096, 4);
        assert_eq!(buf[1].sources().collect::<Vec<_>>(), vec![a]);
        assert_eq!(buf[2].sources().collect::<Vec<_>>(), vec![b]);
        assert_eq!(buf[2].class, InstrClass::StoreGlobal);
    }

    #[test]
    fn gather_with_streams_addresses_into_arena() {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 8);
        let idx = tb.int(&[]);
        tb.load_gather_with(4, &[idx], |lane| 0x1000 + lane * 64);
        tb.atomic_scatter_with(idx, 4, |lane| 0x8000 + lane * 4);
        assert_eq!(buf.addrs().len(), 16, "8 gather + 8 scatter addresses");
        let mut a = Vec::new();
        buf.mem_at(1).unwrap().lane_addrs(&mut a);
        assert_eq!(a[0], 0x1000);
        assert_eq!(a[7], 0x1000 + 7 * 64);
        let mem = buf.mem_at(2).unwrap();
        assert_eq!(mem.lanes(), 8);
    }

    #[test]
    fn cleared_buffer_reuses_capacity() {
        let mut buf = TraceBuf::new();
        {
            let mut tb = TraceBuilder::on(&mut buf, 32);
            for _ in 0..64 {
                tb.load_gather_with(4, &[], |lane| lane * 4096);
            }
        }
        let instr_cap = buf.instrs.capacity();
        let addr_cap = buf.addrs.capacity();
        buf.clear();
        assert!(buf.is_empty());
        {
            let mut tb = TraceBuilder::on(&mut buf, 32);
            for _ in 0..64 {
                tb.load_gather_with(4, &[], |lane| lane * 4096);
            }
        }
        assert_eq!(buf.instrs.capacity(), instr_cap, "no instr regrowth");
        assert_eq!(buf.addrs.capacity(), addr_cap, "no addr regrowth");
    }

    #[test]
    fn register_window_rotates() {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 1);
        let first = tb.fp32(&[]);
        for _ in 0..(REG_WINDOW as usize - 1) {
            tb.fp32(&[]);
        }
        let wrapped = tb.fp32(&[]);
        assert_eq!(first, wrapped, "register window wraps");
    }

    #[test]
    fn active_lane_bounds() {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 7);
        tb.control();
        assert_eq!(buf[0].active, 7);
    }

    #[test]
    #[should_panic(expected = "active lanes")]
    fn zero_active_rejected() {
        let mut buf = TraceBuf::new();
        let _ = TraceBuilder::on(&mut buf, 0);
    }

    #[test]
    #[should_panic(expected = "1..=32 per-lane addresses")]
    fn empty_gather_slice_rejected() {
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 32);
        tb.load_gather(&[], 4, &[]);
    }

    #[test]
    #[should_panic(expected = "1..=32 per-lane addresses")]
    fn oversized_scatter_slice_rejected() {
        let addrs = [0u64; 33];
        let mut buf = TraceBuf::new();
        let mut tb = TraceBuilder::on(&mut buf, 32);
        tb.atomic_scatter(0, &addrs, 4);
    }

    #[test]
    fn class_predicates() {
        assert!(InstrClass::LoadGlobal.is_memory());
        assert!(InstrClass::AtomicGlobal.is_memory());
        assert!(!InstrClass::Fp32.is_memory());
        assert!(InstrClass::Fp32.is_compute());
        assert!(!InstrClass::Sync.is_compute());
    }

    #[test]
    fn instr_is_small_and_copy() {
        // The flat trace vector's element size bounds replay bandwidth.
        assert!(std::mem::size_of::<Instr>() <= 32);
        let i = Instr::control(32);
        let j = i; // Copy
        assert_eq!(i, j);
    }
}
