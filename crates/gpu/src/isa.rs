//! The abstract warp-level instruction set traces are written in.
//!
//! A trace instruction is deliberately minimal: an execution class (which
//! functional unit it occupies and what mix bucket it lands in), up to three
//! source registers and one destination register (for scoreboard
//! dependencies), the number of active lanes, and — for memory operations —
//! the per-lane byte addresses the coalescer will merge into sectors.
//!
//! Registers are *virtual trace registers* local to one warp; kernels rotate
//! through a small window of them (see [`REG_WINDOW`]) to express
//! instruction-level parallelism: an unrolled loop uses several, a serial
//! dependency chain reuses one.

use serde::{Deserialize, Serialize};

use crate::config::SECTOR_BYTES;

/// Virtual trace register id (per warp), `0..REG_WINDOW`.
pub type Reg = u8;

/// Sentinel meaning "no register operand".
pub const NO_REG: Reg = u8::MAX;

/// Size of the per-warp virtual register window. Trace register ids must be
/// below this value (the scoreboard uses a 64-bit mask).
pub const REG_WINDOW: u8 = 64;

/// Execution class of a trace instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Single-precision floating-point ALU op (FMA, add, mul...).
    Fp32,
    /// Integer ALU op (address arithmetic, comparisons, index math).
    Int,
    /// Special-function unit op (rsqrt, exp, ...).
    Sfu,
    /// Global-memory load.
    LoadGlobal,
    /// Global-memory store.
    StoreGlobal,
    /// Global-memory atomic read-modify-write (the scatter reduce).
    AtomicGlobal,
    /// Control flow (branch, predicate set, loop bookkeeping).
    Control,
    /// CTA-wide barrier (`__syncthreads`).
    Sync,
}

impl InstrClass {
    /// `true` for classes that access global memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            InstrClass::LoadGlobal | InstrClass::StoreGlobal | InstrClass::AtomicGlobal
        )
    }

    /// `true` for ALU/SFU classes whose results complete after a fixed
    /// latency.
    pub fn is_compute(self) -> bool {
        matches!(self, InstrClass::Fp32 | InstrClass::Int | InstrClass::Sfu)
    }
}

/// Per-lane global-memory addresses of one warp-level memory instruction.
///
/// Coalesced accesses use the allocation-free [`MemAccess::Strided`] form;
/// irregular kernels (gathers, scatters) carry explicit address vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemAccess {
    /// Lane `i` accesses `base + i * stride`, `lanes` lanes active.
    Strided {
        /// Byte address of lane 0.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: u32,
        /// Active lane count (1..=32).
        lanes: u8,
        /// Bytes accessed per lane.
        bytes_per_lane: u32,
    },
    /// Explicit per-lane byte addresses.
    Gather {
        /// One byte address per active lane.
        addrs: Vec<u64>,
        /// Bytes accessed per lane.
        bytes_per_lane: u32,
    },
}

impl MemAccess {
    /// Number of active lanes.
    pub fn lanes(&self) -> u8 {
        match self {
            MemAccess::Strided { lanes, .. } => *lanes,
            MemAccess::Gather { addrs, .. } => addrs.len().min(32) as u8,
        }
    }

    /// Appends each lane's byte address to `out`.
    pub fn lane_addrs(&self, out: &mut Vec<u64>) {
        match self {
            MemAccess::Strided {
                base,
                stride,
                lanes,
                ..
            } => {
                for lane in 0..*lanes as u64 {
                    out.push(base + lane * *stride as u64);
                }
            }
            MemAccess::Gather { addrs, .. } => out.extend_from_slice(addrs),
        }
    }

    /// Bytes accessed per lane.
    pub fn bytes_per_lane(&self) -> u32 {
        match self {
            MemAccess::Strided { bytes_per_lane, .. } => *bytes_per_lane,
            MemAccess::Gather { bytes_per_lane, .. } => *bytes_per_lane,
        }
    }

    /// The coalescer: unique 32-byte sector ids touched by this access,
    /// sorted and deduplicated, appended to `out`.
    pub fn sectors_into(&self, out: &mut Vec<u64>) {
        let start = out.len();
        let bytes = self.bytes_per_lane() as u64;
        let mut push_range = |addr: u64| {
            let first = addr / SECTOR_BYTES;
            let last = (addr + bytes - 1) / SECTOR_BYTES;
            for s in first..=last {
                out.push(s);
            }
        };
        match self {
            MemAccess::Strided {
                base,
                stride,
                lanes,
                ..
            } => {
                for lane in 0..*lanes as u64 {
                    push_range(base + lane * *stride as u64);
                }
            }
            MemAccess::Gather { addrs, .. } => {
                for &a in addrs {
                    push_range(a);
                }
            }
        }
        out[start..].sort_unstable();
        let mut w = start;
        for i in start..out.len() {
            if w == start || out[w - 1] != out[i] {
                out[w] = out[i];
                w += 1;
            }
        }
        out.truncate(w);
    }

    /// Convenience wrapper returning the sectors as a fresh vector.
    pub fn sectors(&self) -> Vec<u64> {
        let mut v = Vec::new();
        self.sectors_into(&mut v);
        v
    }

    /// Per-lane sector ids *without* deduplication (atomics serialize on
    /// duplicates, so multiplicity matters), appended to `out`.
    pub fn lane_sectors_into(&self, out: &mut Vec<u64>) {
        match self {
            MemAccess::Strided {
                base,
                stride,
                lanes,
                ..
            } => {
                for lane in 0..*lanes as u64 {
                    out.push((base + lane * *stride as u64) / SECTOR_BYTES);
                }
            }
            MemAccess::Gather { addrs, .. } => {
                out.extend(addrs.iter().map(|&a| a / SECTOR_BYTES));
            }
        }
    }
}

/// One warp-level trace instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// Execution class.
    pub class: InstrClass,
    /// Destination register, or [`NO_REG`].
    pub dst: Reg,
    /// Source registers ([`NO_REG`]-padded).
    pub srcs: [Reg; 3],
    /// Number of active lanes (1..=32); drives the occupancy W-buckets.
    pub active: u8,
    /// Memory addresses for memory-class instructions.
    pub mem: Option<Box<MemAccess>>,
}

impl Instr {
    fn pack_srcs(srcs: &[Reg]) -> [Reg; 3] {
        let mut out = [NO_REG; 3];
        for (slot, &reg) in out.iter_mut().zip(srcs.iter()) {
            *slot = reg;
        }
        out
    }

    /// An FP32 ALU instruction.
    pub fn fp32(dst: Reg, srcs: &[Reg], active: u8) -> Self {
        Instr {
            class: InstrClass::Fp32,
            dst,
            srcs: Self::pack_srcs(srcs),
            active,
            mem: None,
        }
    }

    /// An integer ALU instruction.
    pub fn int(dst: Reg, srcs: &[Reg], active: u8) -> Self {
        Instr {
            class: InstrClass::Int,
            dst,
            srcs: Self::pack_srcs(srcs),
            active,
            mem: None,
        }
    }

    /// A special-function-unit instruction.
    pub fn sfu(dst: Reg, srcs: &[Reg], active: u8) -> Self {
        Instr {
            class: InstrClass::Sfu,
            dst,
            srcs: Self::pack_srcs(srcs),
            active,
            mem: None,
        }
    }

    /// A global load of `mem` into `dst`, depending on `deps` (address
    /// registers).
    pub fn load(dst: Reg, mem: MemAccess, deps: &[Reg]) -> Self {
        let active = mem.lanes();
        Instr {
            class: InstrClass::LoadGlobal,
            dst,
            srcs: Self::pack_srcs(deps),
            active,
            mem: Some(Box::new(mem)),
        }
    }

    /// A global store of register `src` to `mem`.
    pub fn store(src: Reg, mem: MemAccess) -> Self {
        let active = mem.lanes();
        Instr {
            class: InstrClass::StoreGlobal,
            dst: NO_REG,
            srcs: Self::pack_srcs(&[src]),
            active,
            mem: Some(Box::new(mem)),
        }
    }

    /// A global atomic RMW of register `src` onto `mem` (no return value,
    /// like the `atomicAdd` in a scatter reduction).
    pub fn atomic(src: Reg, mem: MemAccess) -> Self {
        let active = mem.lanes();
        Instr {
            class: InstrClass::AtomicGlobal,
            dst: NO_REG,
            srcs: Self::pack_srcs(&[src]),
            active,
            mem: Some(Box::new(mem)),
        }
    }

    /// A control-flow instruction (branch / loop bookkeeping).
    pub fn control(active: u8) -> Self {
        Instr {
            class: InstrClass::Control,
            dst: NO_REG,
            srcs: [NO_REG; 3],
            active,
            mem: None,
        }
    }

    /// A CTA-wide barrier.
    pub fn sync(active: u8) -> Self {
        Instr {
            class: InstrClass::Sync,
            dst: NO_REG,
            srcs: [NO_REG; 3],
            active,
            mem: None,
        }
    }

    /// Iterator over real (non-sentinel) source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|&r| r != NO_REG)
    }
}

/// Convenience builder that assembles a warp trace with rotating virtual
/// registers.
///
/// Kernels use it to express realistic dependency structure without
/// hand-numbering registers:
///
/// ```
/// use gsuite_gpu::{TraceBuilder, InstrClass};
///
/// let mut tb = TraceBuilder::new(32);
/// let idx = tb.load_lanes(0x1000, 4);         // coalesced index load
/// let val = tb.load_gather(&[0x2000, 0x9000, 0x4000], 4, &[idx]); // gather
/// tb.fp32(&[val]);                             // consume
/// tb.control();
/// let trace = tb.finish();
/// assert_eq!(trace.len(), 4);
/// assert_eq!(trace[1].class, InstrClass::LoadGlobal);
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Vec<Instr>,
    next_reg: Reg,
    active: u8,
}

impl TraceBuilder {
    /// A builder for a warp with `active` live lanes.
    ///
    /// # Panics
    ///
    /// Panics if `active` is 0 or greater than 32.
    pub fn new(active: usize) -> Self {
        assert!(active >= 1 && active <= 32, "active lanes must be 1..=32");
        TraceBuilder {
            trace: Vec::new(),
            next_reg: 0,
            active: active as u8,
        }
    }

    /// Changes the active lane count for subsequently emitted instructions.
    ///
    /// # Panics
    ///
    /// Panics if `active` is 0 or greater than 32.
    pub fn set_active(&mut self, active: usize) {
        assert!(active >= 1 && active <= 32, "active lanes must be 1..=32");
        self.active = active as u8;
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        // Rotate through the register window: old values naturally become
        // dead, giving the scoreboard realistic reuse distances.
        self.next_reg = (self.next_reg + 1) % REG_WINDOW;
        r
    }

    /// Emits an FP32 op reading `srcs`, returns its destination register.
    pub fn fp32(&mut self, srcs: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.trace.push(Instr::fp32(dst, srcs, self.active));
        dst
    }

    /// Emits an integer op reading `srcs`, returns its destination register.
    pub fn int(&mut self, srcs: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.trace.push(Instr::int(dst, srcs, self.active));
        dst
    }

    /// Emits an SFU op reading `srcs`, returns its destination register.
    pub fn sfu(&mut self, srcs: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.trace.push(Instr::sfu(dst, srcs, self.active));
        dst
    }

    /// Emits a unit-stride warp load: lane `i` reads
    /// `base + i * bytes_per_lane`. Returns the destination register.
    pub fn load_lanes(&mut self, base: u64, bytes_per_lane: u32) -> Reg {
        let dst = self.alloc();
        self.trace.push(Instr::load(
            dst,
            MemAccess::Strided {
                base,
                stride: bytes_per_lane,
                lanes: self.active,
                bytes_per_lane,
            },
            &[],
        ));
        dst
    }

    /// Emits a strided warp load with an explicit inter-lane stride.
    pub fn load_strided(&mut self, base: u64, stride: u32, bytes_per_lane: u32) -> Reg {
        let dst = self.alloc();
        self.trace.push(Instr::load(
            dst,
            MemAccess::Strided {
                base,
                stride,
                lanes: self.active,
                bytes_per_lane,
            },
            &[],
        ));
        dst
    }

    /// Emits a gather load from explicit per-lane addresses that depends on
    /// `deps` (e.g. the register holding gathered indices). Returns the
    /// destination register.
    pub fn load_gather(&mut self, addrs: &[u64], bytes_per_lane: u32, deps: &[Reg]) -> Reg {
        let dst = self.alloc();
        self.trace.push(Instr::load(
            dst,
            MemAccess::Gather {
                addrs: addrs.to_vec(),
                bytes_per_lane,
            },
            deps,
        ));
        dst
    }

    /// Emits a unit-stride warp store of register `src`.
    pub fn store_lanes(&mut self, src: Reg, base: u64, bytes_per_lane: u32) {
        self.trace.push(Instr::store(
            src,
            MemAccess::Strided {
                base,
                stride: bytes_per_lane,
                lanes: self.active,
                bytes_per_lane,
            },
        ));
    }

    /// Emits a scatter store of `src` to explicit per-lane addresses.
    pub fn store_scatter(&mut self, src: Reg, addrs: &[u64], bytes_per_lane: u32) {
        self.trace.push(Instr::store(
            src,
            MemAccess::Gather {
                addrs: addrs.to_vec(),
                bytes_per_lane,
            },
        ));
    }

    /// Emits an atomic RMW of `src` onto explicit per-lane addresses.
    pub fn atomic_scatter(&mut self, src: Reg, addrs: &[u64], bytes_per_lane: u32) {
        self.trace.push(Instr::atomic(
            src,
            MemAccess::Gather {
                addrs: addrs.to_vec(),
                bytes_per_lane,
            },
        ));
    }

    /// Emits a control-flow instruction.
    pub fn control(&mut self) {
        self.trace.push(Instr::control(self.active));
    }

    /// Emits a CTA barrier.
    pub fn sync(&mut self) {
        self.trace.push(Instr::sync(self.active));
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finalizes and returns the trace.
    pub fn finish(self) -> Vec<Instr> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sectors_dedup_and_split() {
        let acc = MemAccess::Gather {
            addrs: vec![0, 4, 8, 31, 32, 100],
            bytes_per_lane: 4,
        };
        // 0..31 -> sector 0; addr 31 (4 bytes) spans sectors 0 and 1;
        // 32 -> sector 1; 100..104 -> sector 3.
        assert_eq!(acc.sectors(), vec![0, 1, 3]);
    }

    #[test]
    fn coalesced_warp_load_touches_four_sectors() {
        let mut tb = TraceBuilder::new(32);
        tb.load_lanes(0, 4);
        let trace = tb.finish();
        let mem = trace[0].mem.as_ref().unwrap();
        assert_eq!(mem.sectors().len(), 4, "32 lanes x 4B = 128B = 4 sectors");
    }

    #[test]
    fn strided_and_gather_agree() {
        let strided = MemAccess::Strided {
            base: 64,
            stride: 8,
            lanes: 16,
            bytes_per_lane: 4,
        };
        let gather = MemAccess::Gather {
            addrs: (0..16).map(|i| 64 + i * 8).collect(),
            bytes_per_lane: 4,
        };
        assert_eq!(strided.sectors(), gather.sectors());
        assert_eq!(strided.lanes(), gather.lanes());
        let mut a = Vec::new();
        let mut b = Vec::new();
        strided.lane_addrs(&mut a);
        gather.lane_addrs(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scattered_load_touches_many_sectors() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        let mut tb = TraceBuilder::new(32);
        tb.load_gather(&addrs, 4, &[]);
        let trace = tb.finish();
        assert_eq!(trace[0].mem.as_ref().unwrap().sectors().len(), 32);
    }

    #[test]
    fn lane_sectors_keep_duplicates() {
        let acc = MemAccess::Gather {
            addrs: vec![0, 4, 8, 64],
            bytes_per_lane: 4,
        };
        let mut lanes = Vec::new();
        acc.lane_sectors_into(&mut lanes);
        assert_eq!(lanes, vec![0, 0, 0, 2]);
    }

    #[test]
    fn builder_tracks_dependencies() {
        let mut tb = TraceBuilder::new(32);
        let a = tb.load_lanes(0, 4);
        let b = tb.fp32(&[a]);
        tb.store_lanes(b, 4096, 4);
        let trace = tb.finish();
        assert_eq!(trace[1].sources().collect::<Vec<_>>(), vec![a]);
        assert_eq!(trace[2].sources().collect::<Vec<_>>(), vec![b]);
        assert_eq!(trace[2].class, InstrClass::StoreGlobal);
    }

    #[test]
    fn register_window_rotates() {
        let mut tb = TraceBuilder::new(1);
        let first = tb.fp32(&[]);
        for _ in 0..(REG_WINDOW as usize - 1) {
            tb.fp32(&[]);
        }
        let wrapped = tb.fp32(&[]);
        assert_eq!(first, wrapped, "register window wraps");
    }

    #[test]
    fn active_lane_bounds() {
        let mut tb = TraceBuilder::new(7);
        tb.control();
        let trace = tb.finish();
        assert_eq!(trace[0].active, 7);
    }

    #[test]
    #[should_panic(expected = "active lanes")]
    fn zero_active_rejected() {
        let _ = TraceBuilder::new(0);
    }

    #[test]
    fn class_predicates() {
        assert!(InstrClass::LoadGlobal.is_memory());
        assert!(InstrClass::AtomicGlobal.is_memory());
        assert!(!InstrClass::Fp32.is_memory());
        assert!(InstrClass::Fp32.is_compute());
        assert!(!InstrClass::Sync.is_compute());
    }
}
