//! The contract between kernels and the simulator.

use crate::isa::Instr;

/// Launch geometry of a kernel: a 1-D grid of CTAs, each with a fixed
/// number of warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Grid {
    /// Number of cooperative thread arrays (thread blocks).
    pub ctas: u64,
    /// Warps per CTA.
    pub warps_per_cta: u32,
}

impl Grid {
    /// A grid with `ctas` CTAs of `warps_per_cta` warps.
    ///
    /// # Panics
    ///
    /// Panics if `warps_per_cta` is zero.
    pub fn new(ctas: u64, warps_per_cta: u32) -> Self {
        assert!(warps_per_cta > 0, "CTAs must contain at least one warp");
        Grid { ctas, warps_per_cta }
    }

    /// A grid sized to cover `work_items` threads with CTAs of
    /// `threads_per_cta` threads (the usual 1-D launch arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_cta` is zero or not a multiple of 32.
    pub fn cover(work_items: u64, threads_per_cta: u32) -> Self {
        assert!(
            threads_per_cta > 0 && threads_per_cta % 32 == 0,
            "threads_per_cta must be a positive multiple of 32"
        );
        let ctas = work_items.div_ceil(threads_per_cta as u64).max(1);
        Grid {
            ctas,
            warps_per_cta: threads_per_cta / 32,
        }
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        self.ctas * self.warps_per_cta as u64
    }
}

/// A kernel the simulator can run: a grid plus a per-warp instruction trace.
///
/// Implementations generate traces lazily — the simulator calls
/// [`KernelWorkload::trace`] when (and only when) a CTA becomes resident on
/// an SM, and drops the trace when the warp retires, so grids with millions
/// of warps never materialize in memory at once.
///
/// Memory addresses inside traces should be derived from the kernel's real
/// input data (buffer base addresses plus live indices); this is what makes
/// the cache/stall behaviour of irregular GNN kernels faithful.
pub trait KernelWorkload {
    /// Kernel name for reports (e.g. `"indexSelect"`).
    fn name(&self) -> String;

    /// Launch geometry.
    fn grid(&self) -> Grid;

    /// Instruction trace of warp `warp` (within `0..grid().warps_per_cta`)
    /// of CTA `cta`. May be empty for tail warps with no work.
    fn trace(&self, cta: u64, warp: u32) -> Vec<Instr>;
}

impl<W: KernelWorkload + ?Sized> KernelWorkload for &W {
    fn name(&self) -> String {
        (**self).name()
    }
    fn grid(&self) -> Grid {
        (**self).grid()
    }
    fn trace(&self, cta: u64, warp: u32) -> Vec<Instr> {
        (**self).trace(cta, warp)
    }
}

impl<W: KernelWorkload + ?Sized> KernelWorkload for Box<W> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn grid(&self) -> Grid {
        (**self).grid()
    }
    fn trace(&self, cta: u64, warp: u32) -> Vec<Instr> {
        (**self).trace(cta, warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let g = Grid::cover(1000, 128);
        assert_eq!(g.ctas, 8);
        assert_eq!(g.warps_per_cta, 4);
        assert_eq!(g.total_warps(), 32);
    }

    #[test]
    fn cover_minimum_one_cta() {
        let g = Grid::cover(0, 64);
        assert_eq!(g.ctas, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn cover_rejects_ragged_cta() {
        let _ = Grid::cover(100, 100);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn grid_rejects_zero_warps() {
        let _ = Grid::new(1, 0);
    }
}
