//! The contract between kernels and the simulator.

use crate::isa::TraceBuf;

/// Launch geometry of a kernel: a 1-D grid of CTAs, each with a fixed
/// number of warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Grid {
    /// Number of cooperative thread arrays (thread blocks).
    pub ctas: u64,
    /// Warps per CTA.
    pub warps_per_cta: u32,
}

impl Grid {
    /// A grid with `ctas` CTAs of `warps_per_cta` warps.
    ///
    /// # Panics
    ///
    /// Panics if `warps_per_cta` is zero.
    pub fn new(ctas: u64, warps_per_cta: u32) -> Self {
        assert!(warps_per_cta > 0, "CTAs must contain at least one warp");
        Grid {
            ctas,
            warps_per_cta,
        }
    }

    /// A grid sized to cover `work_items` threads with CTAs of
    /// `threads_per_cta` threads (the usual 1-D launch arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_cta` is zero or not a multiple of 32.
    pub fn cover(work_items: u64, threads_per_cta: u32) -> Self {
        assert!(
            threads_per_cta > 0 && threads_per_cta.is_multiple_of(32),
            "threads_per_cta must be a positive multiple of 32"
        );
        let ctas = work_items.div_ceil(threads_per_cta as u64).max(1);
        Grid {
            ctas,
            warps_per_cta: threads_per_cta / 32,
        }
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        self.ctas * self.warps_per_cta as u64
    }
}

/// A kernel the simulator can run: a grid plus a per-warp instruction trace.
///
/// Traces are generated lazily and *streamed*: the simulator calls
/// [`KernelWorkload::trace_into`] with a recycled [`TraceBuf`] when (and
/// only when) a CTA becomes resident on an SM, and returns the buffer to a
/// pool when the warp retires — so grids with millions of warps never
/// materialize in memory at once, and steady-state trace generation
/// performs no heap allocation at all.
///
/// Memory addresses inside traces should be derived from the kernel's real
/// input data (buffer base addresses plus live indices); this is what makes
/// the cache/stall behaviour of irregular GNN kernels faithful.
pub trait KernelWorkload {
    /// Kernel name for reports (e.g. `"indexSelect"`).
    fn name(&self) -> String;

    /// Launch geometry.
    fn grid(&self) -> Grid;

    /// Appends the instruction trace of warp `warp` (within
    /// `0..grid().warps_per_cta`) of CTA `cta` into `buf`. May append
    /// nothing for tail warps with no work.
    ///
    /// Callers reusing a buffer across warps must [`TraceBuf::clear`] it
    /// between calls; implementations append (typically through
    /// [`crate::TraceBuilder::on`]).
    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32);

    /// Convenience shim returning warp `(cta, warp)`'s trace as a fresh
    /// owned buffer. External callers that don't manage a buffer pool can
    /// keep using this; hot paths should prefer
    /// [`KernelWorkload::trace_into`].
    fn trace(&self, cta: u64, warp: u32) -> TraceBuf {
        let mut buf = TraceBuf::new();
        self.trace_into(&mut buf, cta, warp);
        buf
    }
}

impl<W: KernelWorkload + ?Sized> KernelWorkload for &W {
    fn name(&self) -> String {
        (**self).name()
    }
    fn grid(&self) -> Grid {
        (**self).grid()
    }
    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        (**self).trace_into(buf, cta, warp)
    }
}

impl<W: KernelWorkload + ?Sized> KernelWorkload for Box<W> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn grid(&self) -> Grid {
        (**self).grid()
    }
    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        (**self).trace_into(buf, cta, warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::TraceBuilder;

    #[test]
    fn cover_rounds_up() {
        let g = Grid::cover(1000, 128);
        assert_eq!(g.ctas, 8);
        assert_eq!(g.warps_per_cta, 4);
        assert_eq!(g.total_warps(), 32);
    }

    #[test]
    fn cover_minimum_one_cta() {
        let g = Grid::cover(0, 64);
        assert_eq!(g.ctas, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn cover_rejects_ragged_cta() {
        let _ = Grid::cover(100, 100);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn grid_rejects_zero_warps() {
        let _ = Grid::new(1, 0);
    }

    #[test]
    fn trace_shim_wraps_trace_into() {
        struct OneOp;
        impl KernelWorkload for OneOp {
            fn name(&self) -> String {
                "one".into()
            }
            fn grid(&self) -> Grid {
                Grid::new(1, 1)
            }
            fn trace_into(&self, buf: &mut TraceBuf, _cta: u64, _warp: u32) {
                let mut tb = TraceBuilder::on(buf, 32);
                tb.control();
            }
        }
        let t = OneOp.trace(0, 0);
        assert_eq!(t.len(), 1);
        // Blanket impls forward the streaming path.
        let boxed: Box<dyn KernelWorkload> = Box::new(OneOp);
        assert_eq!(boxed.trace(0, 0).len(), 1);
        assert_eq!(OneOp.trace(0, 0).len(), 1);
    }
}
