//! Property-based invariants of the cycle simulator.

use gsuite_gpu::testkit::{AtomicWorkload, ComputeWorkload, GatherWorkload, StreamWorkload};
use gsuite_gpu::{GpuConfig, SimOptions, Simulator};
use proptest::prelude::*;

fn check_invariants(stats: &gsuite_gpu::SimStats, cfg: &GpuConfig) {
    // Every scheduler-cycle lands in exactly one occupancy bucket.
    let sched_cycles = stats.cycles * (cfg.num_sms * cfg.schedulers_per_sm) as u64;
    assert_eq!(stats.occupancy.total(), sched_cycles);
    // Cache hits never exceed accesses, and L2 only sees L1 misses
    // (plus store traffic, so allow >=).
    assert!(stats.l1.hits <= stats.l1.accesses);
    assert!(stats.l2.hits <= stats.l2.accesses);
    // Issued warp-instructions match the instruction mix total.
    assert_eq!(stats.stalls.issued, stats.instr_mix.total());
    // Utilizations are proper fractions.
    assert!((0.0..=1.0).contains(&stats.compute_utilization));
    assert!((0.0..=1.0).contains(&stats.memory_utilization));
    // DRAM traffic is sector-aligned.
    assert_eq!(stats.dram_bytes % 32, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compute_invariants(
        ctas in 1u64..24,
        warps in 1u32..4,
        ops in 1usize..120,
        serial in proptest::bool::ANY,
        sms in 1usize..4,
    ) {
        let cfg = GpuConfig::v100_scaled(sms);
        let w = ComputeWorkload::new(ctas, warps, ops, 0).serial(serial);
        let stats = Simulator::new(cfg.clone(), SimOptions::default()).run(&w);
        check_invariants(&stats, &cfg);
        prop_assert_eq!(stats.instr_mix.fp32, ctas * warps as u64 * ops as u64);
        prop_assert_eq!(stats.instr_mix.control, ctas * warps as u64);
    }

    #[test]
    fn stream_invariants(
        ctas in 1u64..16,
        warps in 1u32..4,
        kb in 1u64..8,
    ) {
        let cfg = GpuConfig::v100_scaled(2);
        let w = StreamWorkload::new(ctas, warps, kb * 1024);
        let stats = Simulator::new(cfg.clone(), SimOptions::default()).run(&w);
        check_invariants(&stats, &cfg);
        prop_assert!(stats.dram_bytes > 0, "cold streams must touch DRAM");
    }

    #[test]
    fn gather_invariants(
        ctas in 1u64..10,
        gathers in 1usize..24,
        table_kb in 1u64..512,
        seed in 0u64..100,
    ) {
        let cfg = GpuConfig::v100_scaled(2);
        let w = GatherWorkload::new(ctas, 2, gathers, table_kb * 1024, seed);
        let stats = Simulator::new(cfg.clone(), SimOptions::default()).run(&w);
        check_invariants(&stats, &cfg);
    }

    #[test]
    fn atomic_invariants(
        ctas in 1u64..8,
        atomics in 1usize..16,
        targets in 1u64..1024,
    ) {
        let cfg = GpuConfig::v100_scaled(2);
        let w = AtomicWorkload::new(ctas, 2, atomics, targets);
        let stats = Simulator::new(cfg.clone(), SimOptions::default()).run(&w);
        check_invariants(&stats, &cfg);
        prop_assert_eq!(
            stats.instr_mix.load_store,
            ctas * 2 * atomics as u64
        );
    }

    #[test]
    fn simulation_is_deterministic(
        ctas in 1u64..12,
        gathers in 1usize..16,
        seed in 0u64..50,
    ) {
        let w = GatherWorkload::new(ctas, 2, gathers, 64 * 1024, seed);
        let a = Simulator::new(GpuConfig::v100_scaled(2), SimOptions::default()).run(&w);
        let b = Simulator::new(GpuConfig::v100_scaled(2), SimOptions::default()).run(&w);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sampling_never_exceeds_grid(
        ctas in 1u64..32,
        cap in 1u64..64,
    ) {
        let w = ComputeWorkload::new(ctas, 1, 16, 0);
        let stats = Simulator::new(
            GpuConfig::v100_scaled(1),
            SimOptions { max_ctas: Some(cap), max_cycles: None },
        )
        .run(&w);
        let expect = (ctas.min(cap)) as f64 / ctas as f64;
        prop_assert!((stats.sampled_fraction - expect).abs() < 1e-12);
    }
}

/// More-work monotonicity: doubling the per-warp work should never make the
/// kernel *faster* (sanity check on the fluid queues and scoreboard).
#[test]
fn more_work_takes_longer() {
    let cfg = GpuConfig::v100_scaled(2);
    let small = ComputeWorkload::new(8, 2, 64, 0);
    let big = ComputeWorkload::new(8, 2, 256, 0);
    let a = Simulator::new(cfg.clone(), SimOptions::default()).run(&small);
    let b = Simulator::new(cfg, SimOptions::default()).run(&big);
    assert!(b.cycles > a.cycles);
}

/// A kernel bigger than the resident capacity must run in waves.
#[test]
fn oversubscribed_grid_completes() {
    let cfg = GpuConfig::v100_scaled(1); // 64 warps resident max
    let w = ComputeWorkload::new(512, 2, 8, 0); // 1024 warps total
    let stats = Simulator::new(cfg, SimOptions::default()).run(&w);
    assert_eq!(stats.instr_mix.fp32, 512 * 2 * 8);
}
