//! Chrome-trace JSON export (the `chrome://tracing` / Perfetto format).
//!
//! Each span becomes one complete (`"ph":"X"`) event with microsecond
//! `ts`/`dur`, `pid` 0, the span's track as `tid`, the segment of the
//! span name before the first `.` as `cat`, and the span/parent ids plus
//! all attributes in `args`. Events are emitted one per line in span-id
//! (allocation) order and all floats use fixed three-decimal formatting,
//! so the document is byte-stable for deterministic traces.

use std::fmt::Write as _;

use crate::span::{AttrValue, Span, Trace};

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_event(out: &mut String, span: &Span) {
    let cat = span.name.split('.').next().unwrap_or("span");
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"span\":{}",
        escape(&span.name),
        escape(cat),
        span.start_ms * 1000.0,
        span.dur_ms * 1000.0,
        span.track,
        span.id,
    );
    if let Some(parent) = span.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    for attr in &span.attrs {
        match &attr.value {
            AttrValue::Str(s) => {
                let _ = write!(out, ",\"{}\":\"{}\"", escape(attr.key), escape(s));
            }
            AttrValue::U64(v) => {
                let _ = write!(out, ",\"{}\":{}", escape(attr.key), v);
            }
            AttrValue::F64(v) => {
                let _ = write!(out, ",\"{}\":{:.3}", escape(attr.key), v);
            }
        }
    }
    out.push_str("}}");
}

impl Trace {
    /// Renders the trace as a Chrome-trace JSON object. Deterministic
    /// traces render byte-identically; the clock domain is recorded
    /// under `otherData.clock`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 160);
        let _ = write!(
            out,
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"{}\",\"spans\":{}}},\"traceEvents\":[",
            self.clock.label(),
            self.spans.len()
        );
        for (i, span) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            write_event(&mut out, span);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Attr, ClockDomain, SpanSink};

    fn sample() -> Trace {
        let mut sink = SpanSink::new();
        let root = sink.record(
            "request",
            None,
            2,
            1.0,
            4.0,
            vec![Attr::u64("key", 7), Attr::str("disposition", "miss")],
        );
        sink.record(
            "kernel",
            Some(root),
            2,
            1.5,
            2.25,
            vec![Attr::str("kernel", "SpMM"), Attr::f64("modeled_ms", 2.25)],
        );
        sink.finish(ClockDomain::Sim)
    }

    #[test]
    fn export_is_valid_and_carries_structure() {
        let json = sample().to_chrome_json();
        crate::json::validate(&json).expect("valid JSON");
        assert!(json.contains("\"clock\":\"sim\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1000.000"));
        assert!(json.contains("\"dur\":2250.000"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"kernel\":\"SpMM\""));
    }

    #[test]
    fn export_is_byte_stable() {
        assert_eq!(sample().to_chrome_json(), sample().to_chrome_json());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
