//! A stable-order metrics registry with Prometheus-style exposition.
//!
//! Three metric kinds: monotonically-increasing **counters**, last-wins
//! **gauges**, and **fixed-bucket histograms** (cumulative `le` buckets
//! chosen at registration — never derived from the data, so exposition
//! layout is independent of the observations). Metrics live in a
//! `BTreeMap` keyed by name: exposition order is sorted and therefore
//! byte-stable across runs and thread counts for deterministic inputs.
//!
//! [`MetricsRegistry::render`] emits the text format:
//!
//! ```text
//! # HELP gsuite_cache_hits Pipeline-cache lookup hits.
//! # TYPE gsuite_cache_hits counter
//! gsuite_cache_hits 42
//! # EOF
//! ```
//!
//! The `# EOF` terminator doubles as the framing marker for the
//! multi-line `metrics` protocol command in `gsuite-serve`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One registered metric's state.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Upper bounds of the cumulative buckets, strictly increasing;
        /// an implicit `+Inf` bucket always follows.
        bounds: Vec<f64>,
        /// Per-bound observation counts (non-cumulative internally),
        /// plus one final slot for observations above every bound.
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    help: String,
    metric: Metric,
}

/// Counters, gauges and fixed-bucket histograms with sorted, stable
/// exposition. Same-name registrations must keep the same kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Entry>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the counter `name`, registering it at 0 first if new.
    pub fn counter_add(&mut self, name: &str, help: &str, v: u64) {
        let entry = self.entries.entry(name.to_string()).or_insert(Entry {
            help: help.to_string(),
            metric: Metric::Counter(0),
        });
        match &mut entry.metric {
            Metric::Counter(c) => *c += v,
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, help: &str, v: f64) {
        let entry = self.entries.entry(name.to_string()).or_insert(Entry {
            help: help.to_string(),
            metric: Metric::Gauge(0.0),
        });
        match &mut entry.metric {
            Metric::Gauge(g) => *g = v,
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Observes `v` into the histogram `name`, registering it with the
    /// given fixed `bounds` if new. Bounds must be strictly increasing.
    pub fn histogram_observe(&mut self, name: &str, help: &str, bounds: &[f64], v: f64) {
        let entry = self.entries.entry(name.to_string()).or_insert_with(|| {
            debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
            Entry {
                help: help.to_string(),
                metric: Metric::Histogram {
                    bounds: bounds.to_vec(),
                    counts: vec![0; bounds.len() + 1],
                    sum: 0.0,
                    count: 0,
                },
            }
        });
        match &mut entry.metric {
            Metric::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                let slot = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
                counts[slot] += 1;
                *sum += v;
                *count += 1;
            }
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name).map(|e| &e.metric)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the Prometheus-style text exposition, sorted by metric
    /// name and terminated by `# EOF`. Floats use fixed three-decimal
    /// formatting so deterministic inputs render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, entry) in &self.entries {
            let kind = match entry.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {c}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {g:.3}");
                }
                Metric::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (bound, n) in bounds.iter().zip(counts) {
                        cumulative += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound:.3}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {sum:.3}");
                    let _ = writeln!(out, "{name}_count {count}");
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

/// The fixed latency-histogram bucket bounds (milliseconds) shared by
/// the loadgen `--metrics` block and the serve `metrics` command.
pub const LATENCY_BUCKETS_MS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_sorted_and_terminated() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("z_gauge", "Last.", 1.5);
        reg.counter_add("a_counter", "First.", 2);
        reg.counter_add("a_counter", "First.", 3);
        let text = reg.render();
        let a = text.find("a_counter 5").expect("counter accumulates");
        let z = text.find("z_gauge 1.500").expect("gauge renders fixed");
        assert!(a < z, "sorted order");
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 1.5, 3.0, 99.0] {
            reg.histogram_observe("lat", "Latency.", &[1.0, 2.0, 5.0], v);
        }
        let text = reg.render();
        assert!(text.contains("lat_bucket{le=\"1.000\"} 1"));
        assert!(text.contains("lat_bucket{le=\"2.000\"} 2"));
        assert!(text.contains("lat_bucket{le=\"5.000\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_sum 104.000"));
        assert!(text.contains("lat_count 4"));
    }

    #[test]
    fn render_is_byte_stable() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.counter_add("hits", "h", 7);
            reg.gauge_set("depth", "d", 3.0);
            reg.histogram_observe("lat", "l", &LATENCY_BUCKETS_MS, 12.0);
            reg.render()
        };
        assert_eq!(build(), build());
    }
}
