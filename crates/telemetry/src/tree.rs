//! Compact span-tree text renderer for CLI reports.
//!
//! Renders each root span and its descendants with box-drawing
//! connectors, start/duration in milliseconds and the span's attributes
//! inline:
//!
//! ```text
//! request @0.000ms +5.123ms  key=3 worker=0 disposition=miss
//! ├─ queue @0.000ms +0.512ms
//! └─ service @0.512ms +4.611ms
//!    ├─ kernel @0.512ms +2.100ms  kernel=SpMM
//!    └─ exchange @2.612ms +2.511ms  peer=1 bytes=4096
//! ```
//!
//! Children sort by `(start_ms, id)`; the output is deterministic for
//! deterministic traces.

use std::fmt::Write as _;

use crate::span::{AttrValue, Span, Trace};

fn attr_suffix(span: &Span) -> String {
    let mut out = String::new();
    for attr in &span.attrs {
        let sep = if out.is_empty() { "  " } else { " " };
        match &attr.value {
            AttrValue::Str(s) => {
                let _ = write!(out, "{sep}{}={s}", attr.key);
            }
            AttrValue::U64(v) => {
                let _ = write!(out, "{sep}{}={v}", attr.key);
            }
            AttrValue::F64(v) => {
                let _ = write!(out, "{sep}{}={v:.3}", attr.key);
            }
        }
    }
    out
}

fn render_node(
    out: &mut String,
    spans: &[Span],
    idx: usize,
    prefix: &str,
    children: &[Vec<usize>],
) {
    let kids = &children[idx];
    for (i, &child) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        let span = &spans[child];
        let _ = writeln!(
            out,
            "{prefix}{}{} @{:.3}ms +{:.3}ms{}",
            if last { "└─ " } else { "├─ " },
            span.name,
            span.start_ms,
            span.dur_ms,
            attr_suffix(span)
        );
        let next = format!("{prefix}{}", if last { "   " } else { "│  " });
        render_node(out, spans, child, &next, children);
    }
}

impl Trace {
    /// Renders every root span (and descendants) as a text tree. Spans
    /// whose parent id is missing from the trace render as roots too,
    /// so partial traces stay visible.
    pub fn render_tree(&self) -> String {
        let index_of = |id| self.spans.iter().position(|s| s.id == id);
        // children[i] = indices of spans parented to spans[i], sorted by
        // (start, id) for a stable reading order.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            match span.parent.and_then(index_of) {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let order = |&a: &usize, &b: &usize| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            sa.start_ms
                .partial_cmp(&sb.start_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(sa.id.cmp(&sb.id))
        };
        roots.sort_by(order);
        for kids in &mut children {
            kids.sort_by(order);
        }

        let mut out = String::new();
        for &root in &roots {
            let span = &self.spans[root];
            let _ = writeln!(
                out,
                "{} @{:.3}ms +{:.3}ms{}",
                span.name,
                span.start_ms,
                span.dur_ms,
                attr_suffix(span)
            );
            render_node(&mut out, &self.spans, root, "", &children);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::span::{Attr, ClockDomain, SpanSink};

    #[test]
    fn renders_nested_tree_with_connectors() {
        let mut sink = SpanSink::new();
        let root = sink.reserve();
        let q = sink.record("queue", Some(root), 0, 0.0, 0.5, vec![]);
        let svc = sink.record("service", Some(root), 0, 0.5, 2.0, vec![]);
        sink.record(
            "kernel",
            Some(svc),
            0,
            0.5,
            1.0,
            vec![Attr::str("kernel", "SpMM")],
        );
        sink.record_with_id(
            root,
            "request",
            None,
            0,
            0.0,
            2.5,
            vec![Attr::u64("key", 1)],
        );
        let _ = q;
        let text = sink.finish(ClockDomain::Sim).render_tree();
        assert!(
            text.starts_with("request @0.000ms +2.500ms  key=1\n"),
            "{text}"
        );
        assert!(text.contains("├─ queue @0.000ms +0.500ms\n"), "{text}");
        assert!(text.contains("└─ service @0.500ms +2.000ms\n"), "{text}");
        assert!(
            text.contains("   └─ kernel @0.500ms +1.000ms  kernel=SpMM\n"),
            "{text}"
        );
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let mut sink = SpanSink::new();
        sink.record("queue", Some(999), 0, 1.0, 0.5, vec![]);
        let text = sink.finish(ClockDomain::Wall).render_tree();
        assert_eq!(text, "queue @1.000ms +0.500ms\n");
    }
}
