//! Typed spans, the per-worker [`SpanSink`], and the finished [`Trace`].
//!
//! Spans are *complete* intervals (start + duration), recorded after the
//! fact — the recorder computes an operation's envelope and emits one
//! span per phase. Parent links turn the flat stream into per-request
//! trees; the `track` field maps to a Chrome-trace `tid` so each worker
//! (or virtual lane) renders as its own row.
//!
//! Timestamps are milliseconds in one of two [`ClockDomain`]s:
//! `Sim` (the discrete-event simulator's virtual clock — deterministic,
//! byte-identical across runs and thread counts) or `Wall` (monotonic
//! host time for live runs). The domain is stamped on the [`Trace`], not
//! per span: a trace never mixes clocks.

/// Identifier of one recorded span, unique within its [`SpanSink`].
/// Ids start at 1 and increase in allocation order; 0 is never issued.
pub type SpanId = u64;

/// Which clock the trace's timestamps were read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// The discrete-event simulator's virtual clock: pure `f64`
    /// arithmetic, deterministic across runs, hosts and thread counts.
    Sim,
    /// Monotonic host time (`Instant`-derived). Real, not reproducible.
    Wall,
}

impl ClockDomain {
    /// The lowercase label used in exported documents.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::Sim => "sim",
            ClockDomain::Wall => "wall",
        }
    }
}

/// One attribute value. Floats render with fixed three-decimal
/// precision everywhere so exports are byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Str(String),
    U64(u64),
    F64(f64),
}

/// A `key = value` annotation on a span (kernel name, peer id, bytes,
/// retry attempt, …). Keys are `&'static str` by design: the span
/// taxonomy is closed and documented, not free-form.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    pub key: &'static str,
    pub value: AttrValue,
}

impl Attr {
    /// A string-valued attribute.
    pub fn str(key: &'static str, value: impl Into<String>) -> Attr {
        Attr {
            key,
            value: AttrValue::Str(value.into()),
        }
    }

    /// An unsigned-integer attribute.
    pub fn u64(key: &'static str, value: u64) -> Attr {
        Attr {
            key,
            value: AttrValue::U64(value),
        }
    }

    /// A float attribute (rendered with three decimals).
    pub fn f64(key: &'static str, value: f64) -> Attr {
        Attr {
            key,
            value: AttrValue::F64(value),
        }
    }
}

/// One complete span: a named interval on a track, optionally parented
/// to another span of the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    /// The enclosing span, if any — `request` roots have no parent.
    pub parent: Option<SpanId>,
    /// Dotted span type from the documented taxonomy, e.g. `request`,
    /// `compile.optimize`, `kernel`, `backoff`.
    pub name: String,
    /// Render lane (Chrome-trace `tid`): the worker index for executed
    /// requests, or a virtual lane for admission-time rejections.
    pub track: u32,
    /// Start time in milliseconds on the trace's clock.
    pub start_ms: f64,
    /// Duration in milliseconds; instantaneous events use 0.
    pub dur_ms: f64,
    pub attrs: Vec<Attr>,
}

/// An append-only span recorder. `record` allocates ids in call order,
/// so a single-threaded recorder (the DES, or one worker's sink)
/// produces a deterministic stream. [`SpanSink::reserve`] supports the
/// root-last pattern: reserve the `request` id up front, emit children
/// against it, then fill the root in once its envelope is known.
#[derive(Debug, Default)]
pub struct SpanSink {
    next_id: SpanId,
    spans: Vec<Span>,
}

impl SpanSink {
    pub fn new() -> SpanSink {
        SpanSink {
            next_id: 1,
            spans: Vec::new(),
        }
    }

    /// Allocates an id without recording a span yet. The caller must
    /// eventually pass it to [`SpanSink::record_with_id`].
    pub fn reserve(&mut self) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Records one span and returns its id.
    pub fn record(
        &mut self,
        name: &str,
        parent: Option<SpanId>,
        track: u32,
        start_ms: f64,
        dur_ms: f64,
        attrs: Vec<Attr>,
    ) -> SpanId {
        let id = self.reserve();
        self.record_with_id(id, name, parent, track, start_ms, dur_ms, attrs);
        id
    }

    /// Records a span under a previously [`reserved`](SpanSink::reserve) id.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_id(
        &mut self,
        id: SpanId,
        name: &str,
        parent: Option<SpanId>,
        track: u32,
        start_ms: f64,
        dur_ms: f64,
        attrs: Vec<Attr>,
    ) {
        self.spans.push(Span {
            id,
            parent,
            name: name.to_string(),
            track,
            start_ms,
            dur_ms,
            attrs,
        });
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Seals the sink into a [`Trace`] stamped with its clock domain.
    /// Spans are sorted by `(id)` — allocation order — so the stream is
    /// stable even when roots were filled in last.
    pub fn finish(self, clock: ClockDomain) -> Trace {
        let mut spans = self.spans;
        spans.sort_by_key(|s| s.id);
        Trace { clock, spans }
    }
}

/// A finished, immutable span stream plus its clock domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub clock: ClockDomain,
    pub spans: Vec<Span>,
}

impl Trace {
    /// An empty trace on the given clock.
    pub fn empty(clock: ClockDomain) -> Trace {
        Trace {
            clock,
            spans: Vec::new(),
        }
    }

    /// Number of spans with no parent (request/cell roots).
    pub fn root_count(&self) -> usize {
        self.spans.iter().filter(|s| s.parent.is_none()).count()
    }

    /// Total duration covered: max span end minus min span start, 0 for
    /// an empty trace.
    pub fn extent_ms(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.spans {
            lo = lo.min(s.start_ms);
            hi = hi.max(s.start_ms + s.dur_ms);
        }
        if self.spans.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }

    /// Sum of `dur_ms` over spans named `name` (exact match). Folds from
    /// `+0.0` — `Iterator::sum` uses `-0.0` as its identity, which would
    /// leak a `-0.0000` into formatted reports for absent span names.
    pub fn total_ms(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .fold(0.0, |acc, s| acc + s.dur_ms)
    }

    /// Merges another trace into this one, remapping the other's span
    /// ids past this trace's maximum so ids stay unique. Both traces
    /// must share the clock domain.
    pub fn append(&mut self, other: Trace) {
        assert_eq!(self.clock, other.clock, "cannot merge clock domains");
        let base = self.spans.iter().map(|s| s.id).max().unwrap_or(0);
        for mut s in other.spans {
            s.id += base;
            s.parent = s.parent.map(|p| p + base);
            self.spans.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_then_fill_keeps_allocation_order() {
        let mut sink = SpanSink::new();
        let root = sink.reserve();
        let child = sink.record("queue", Some(root), 0, 0.0, 1.0, vec![]);
        sink.record_with_id(root, "request", None, 0, 0.0, 2.0, vec![]);
        assert_eq!(root, 1);
        assert_eq!(child, 2);
        let trace = sink.finish(ClockDomain::Sim);
        assert_eq!(trace.spans[0].name, "request");
        assert_eq!(trace.spans[1].name, "queue");
        assert_eq!(trace.root_count(), 1);
        assert_eq!(trace.extent_ms(), 2.0);
    }

    #[test]
    fn append_remaps_ids_and_parents() {
        let mut a = SpanSink::new();
        a.record("request", None, 0, 0.0, 1.0, vec![]);
        let mut a = a.finish(ClockDomain::Sim);
        let mut b = SpanSink::new();
        let r = b.record("request", None, 1, 1.0, 1.0, vec![]);
        b.record("queue", Some(r), 1, 1.0, 0.5, vec![]);
        a.append(b.finish(ClockDomain::Sim));
        assert_eq!(a.spans.len(), 3);
        assert_eq!(a.spans[1].id, 2);
        assert_eq!(a.spans[2].parent, Some(2));
        assert_eq!(a.total_ms("request"), 2.0);
    }
}
