//! # gsuite-telemetry — deterministic structured telemetry
//!
//! A zero-dependency tracing + metrics substrate for the gSuite stack,
//! built on the same reproducibility contract as the rest of the
//! workspace: everything recorded on the **sim clock** is a pure
//! function of `(workload, seed, parameters)` and renders to
//! byte-identical output across runs, hosts and thread counts.
//!
//! Three pieces:
//!
//! * [`SpanSink`] / [`Span`] — typed spans with parent links, a track
//!   (worker) id, millisecond timestamps and a small attribute list.
//!   A served request renders as a tree: `request` → `queue` /
//!   `cache_lookup` / `build` (`compile.{lower,optimize,decorate,
//!   schedule}`) / `service` (`kernel`, `exchange`) plus the
//!   resilience events `retry`, `backoff`, `degrade`, `cancelled`.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket
//!   histograms with a stable (sorted) exposition order, rendered as
//!   Prometheus-style text terminated by `# EOF`.
//! * Exporters — [`Trace::to_chrome_json`] emits Chrome-trace JSON
//!   (loadable in `chrome://tracing` / Perfetto) and
//!   [`Trace::render_tree`] a compact per-request text tree. The
//!   [`json`] module carries a dependency-free validator used by
//!   `trace-export` to self-check emitted documents.
//!
//! Clock domains are explicit: [`ClockDomain::Sim`] timestamps come
//! from the discrete-event simulator's virtual clock (deterministic),
//! [`ClockDomain::Wall`] from monotonic host time (for live runs, not
//! reproducible byte-for-byte).
//!
//! ```
//! use gsuite_telemetry::{Attr, ClockDomain, SpanSink};
//!
//! let mut sink = SpanSink::new();
//! let root = sink.reserve();
//! let svc = sink.record("service", Some(root), 0, 0.5, 2.0, vec![]);
//! sink.record(
//!     "kernel",
//!     Some(svc),
//!     0,
//!     0.5,
//!     1.5,
//!     vec![Attr::str("kernel", "SpMM")],
//! );
//! sink.record_with_id(root, "request", None, 0, 0.0, 2.5, vec![Attr::u64("key", 3)]);
//! let trace = sink.finish(ClockDomain::Sim);
//! let json = trace.to_chrome_json();
//! gsuite_telemetry::json::validate(&json).unwrap();
//! assert!(trace.render_tree().starts_with("request"));
//! ```

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;
pub mod tree;

pub use metrics::{Metric, MetricsRegistry};
pub use span::{Attr, AttrValue, ClockDomain, Span, SpanId, SpanSink, Trace};
