//! A dependency-free JSON *validator* (not a parser): checks that a
//! string is one well-formed JSON value per RFC 8259. Used by
//! `gsuite-cli trace-export` to self-check emitted Chrome-trace
//! documents and by tests to validate `explain --json` / `--json`
//! report output without pulling in a JSON crate.

/// Validates that `input` is exactly one JSON value (plus surrounding
/// whitespace). Returns the byte offset and a message on failure.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, what: &str) -> String {
    format!("invalid JSON at byte {pos}: {what}")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, "true"),
        Some(b'f') => literal(bytes, pos, "false"),
        Some(b'n') => literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(&c) => Err(err(*pos, &format!("unexpected byte {:?}", c as char))),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {word:?}")))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(err(*pos, "expected 4 hex digits after \\u"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(err(start, "expected digit")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(err(*pos, "expected digit after '.'"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(err(*pos, "expected exponent digit"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-0.5e3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}",
            "  [1, 2, 3]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "nul",
            "[1] []",
            "\"\u{1}\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
