//! The minimal TCP surface of the serving layer: a newline-delimited
//! request/response protocol over `std::net` (the workspace builds
//! offline — no async runtime, no HTTP stack).
//!
//! One connection carries any number of request lines; every line gets
//! exactly one response line, in order:
//!
//! ```text
//! -> model=gcn dataset=cora scale=0.05 backend=hw
//! <- ok id=0 cache=miss queue_ms=0.0components... latency_ms=3.1415 device_ms=...
//! -> stats
//! <- stats workers=4 queue=0 submitted=1 completed=1 ... cache_hits=0 ...
//! -> metrics         # multi-line Prometheus-style exposition
//! <- # HELP gsuite_cache_bytes_in_use ...
//! <- ...
//! <- # EOF           # the exposition's terminator doubles as framing
//! -> quit            # closes this connection
//! -> shutdown        # stops the whole server (drains first)
//! ```
//!
//! `metrics` is the protocol's only multi-line response; its final
//! `# EOF` line frames it (read with
//! [`ProtocolClient::round_trip_multi`]).
//!
//! Malformed request lines answer `err id=- msg="..."` and keep the
//! connection open.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use gsuite_scenarios::LruStats;

use crate::loadgen::{ArrivalMode, LoadReport, LoadSpec, ResilienceSummary, Step};
use crate::request::ServeRequest;
use crate::server::{ServeConfig, Server};

/// Binds `host:port` (port `0` picks an ephemeral port), announces
/// `gsuite-serve listening on <addr>` on stdout and serves connections
/// until a client sends `shutdown`. Blocks for the server's lifetime.
///
/// # Errors
///
/// Propagates bind failures; per-connection I/O errors only end that
/// connection.
pub fn serve_blocking(host: &str, port: u16, cfg: ServeConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind((host, port))?;
    println!("gsuite-serve listening on {}", listener.local_addr()?);
    std::io::stdout().flush()?;
    serve_on(listener, cfg)
}

/// [`serve_blocking`] over an already bound listener — the hook tests use
/// to learn the ephemeral address before the accept loop starts.
///
/// # Errors
///
/// Propagates `local_addr` failures; per-connection I/O errors only end
/// that connection.
pub fn serve_on(listener: TcpListener, cfg: ServeConfig) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    // The post-shutdown wake-up connect must target a concrete address: a
    // wildcard bind records 0.0.0.0/[::], where self-connect is not
    // portable (fails on Windows).
    let wake_addr = std::net::SocketAddr::new(
        if addr.ip().is_unspecified() {
            match addr {
                std::net::SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            }
        } else {
            addr.ip()
        },
        addr.port(),
    );
    let server = Server::start(cfg);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = &server;
            let stop = &stop;
            scope.spawn(move || {
                if handle_connection(stream, server, stop) {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe the flag.
                    let _ = TcpStream::connect(wake_addr);
                }
            });
        }
    });
    server.shutdown();
    println!("gsuite-serve stopped");
    Ok(())
}

// The doc'd behavior of `serve_blocking` is exercised end-to-end by the
// workspace `tests/serve.rs` suite through `serve_on`.

/// Serves one connection; returns `true` when the client requested a
/// server shutdown. Reads poll with a timeout so idle connections notice
/// a shutdown triggered elsewhere instead of pinning the accept scope
/// (whose join would otherwise wait on them forever).
fn handle_connection(stream: TcpStream, server: &Server, stop: &AtomicBool) -> bool {
    let Ok(reader_stream) = stream.try_clone() else {
        return false;
    };
    if reader_stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .is_err()
    {
        return false;
    }
    let mut writer = stream;
    let mut reader = BufReader::new(reader_stream);
    // Reusable request read buffer. Partial line bytes survive timeout
    // wake-ups (`read_line` appends whatever it consumed before the
    // timeout error), and the allocation is recycled across requests:
    // each line is decoded in place over borrowed `&str` key/value
    // slices, so the steady-state loop performs no per-line allocation.
    let mut pending = String::new();
    loop {
        // Checked on every iteration — not just timeouts — so a client
        // pipelining requests back-to-back cannot delay a shutdown
        // another connection triggered.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut pending) {
            Ok(0) => break, // client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let response = match pending.trim() {
            "" => {
                pending.clear();
                continue;
            }
            "quit" => break,
            "shutdown" => {
                let _ = writeln!(writer, "ok bye");
                return true;
            }
            "stats" => server.stats().to_line(),
            // Multi-line exposition; `render()` ends with the `# EOF`
            // framing line (the trailing writeln supplies its newline).
            "metrics" => {
                let text = server.stats().metrics().render();
                text.trim_end().to_string()
            }
            request => match ServeRequest::parse_line(request) {
                Ok(req) => match server.submit(req) {
                    Ok(rx) => match rx.recv() {
                        Ok(done) => done.to_line(),
                        Err(_) => "err id=- msg=\"server stopped\"".to_string(),
                    },
                    // Typed rejects (queue-full, circuit-open) carry
                    // their wire code; shutdown stays connection-level.
                    Err(e) => match e.reject_reason() {
                        Some(r) => format!("err id=- msg={:?} code={}", e.to_string(), r.code()),
                        None => format!("err id=- msg={:?}", e.to_string()),
                    },
                },
                Err(msg) => format!("err id=- msg={msg:?}"),
            },
        };
        pending.clear();
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
    false
}

/// A line-oriented protocol client over one TCP connection.
pub struct ProtocolClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ProtocolClient {
    /// Connects to a running `gsuite-serve` endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<ProtocolClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ProtocolClient {
            reader,
            writer: stream,
        })
    }

    /// Sends one line and reads the single response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a closed connection reads as
    /// `UnexpectedEof`.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        let mut response = String::new();
        self.round_trip_into(line, &mut response)?;
        Ok(response)
    }

    /// [`ProtocolClient::round_trip`] into a caller-owned buffer:
    /// `response` is cleared and refilled (trailing newline stripped), so
    /// a driving loop that keeps one buffer per connection allocates
    /// nothing per request — the load generator's TCP hot path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a closed connection reads as
    /// `UnexpectedEof`.
    pub fn round_trip_into(&mut self, line: &str, response: &mut String) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        response.clear();
        if self.reader.read_line(response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        response.truncate(response.trim_end().len());
        Ok(())
    }

    /// Sends one line and reads a multi-line response framed by a final
    /// `# EOF` line — the `metrics` command's exposition. Returns the
    /// full text including the terminator, newline-terminated, so the
    /// payload is byte-identical to the server-side
    /// [`MetricsRegistry::render`](gsuite_telemetry::MetricsRegistry::render)
    /// output.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a connection closed before the
    /// terminator reads as `UnexpectedEof`.
    pub fn round_trip_multi(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        let mut text = String::new();
        loop {
            let mut next = String::new();
            if self.reader.read_line(&mut next)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before the # EOF terminator",
                ));
            }
            let done = next.trim_end() == "# EOF";
            text.push_str(next.trim_end());
            text.push('\n');
            if done {
                return Ok(text);
            }
        }
    }
}

/// Parses a `key=value` integer field out of a response/stats line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
}

/// The server counters a `stats` line carries, as sampled at one instant.
struct StatsSample {
    cache: LruStats,
    coalesced: u64,
    rejected: u64,
    resilience: ResilienceSummary,
}

impl StatsSample {
    fn parse(line: &str) -> StatsSample {
        StatsSample {
            cache: LruStats {
                hits: field_u64(line, "cache_hits").unwrap_or(0),
                misses: field_u64(line, "cache_misses").unwrap_or(0),
                insertions: field_u64(line, "cache_insertions").unwrap_or(0),
                evictions: field_u64(line, "cache_evictions").unwrap_or(0),
                rejected: field_u64(line, "cache_rejected").unwrap_or(0),
                bytes_in_use: field_u64(line, "cache_bytes").unwrap_or(0),
                capacity_bytes: field_u64(line, "cache_capacity").unwrap_or(0),
                entries: field_u64(line, "cache_entries").unwrap_or(0) as usize,
            },
            coalesced: field_u64(line, "coalesced").unwrap_or(0),
            rejected: field_u64(line, "rejected").unwrap_or(0),
            resilience: ResilienceSummary {
                retries: field_u64(line, "retries").unwrap_or(0),
                timeouts: field_u64(line, "timeouts").unwrap_or(0),
                crashed: field_u64(line, "crashed").unwrap_or(0),
                breaker_trips: field_u64(line, "breaker_trips").unwrap_or(0),
                circuit_open: field_u64(line, "breaker_shed").unwrap_or(0),
                degraded: field_u64(line, "degraded").unwrap_or(0),
                stale_serves: field_u64(line, "stale_serves").unwrap_or(0),
            },
        }
    }

    /// The counter deltas accrued between `before` and `self`, keeping
    /// point-in-time values (bytes, capacity, entries) from `self` — the
    /// per-run view against a possibly long-running server.
    fn since(&self, before: &StatsSample) -> StatsSample {
        StatsSample {
            cache: LruStats {
                hits: self.cache.hits.saturating_sub(before.cache.hits),
                misses: self.cache.misses.saturating_sub(before.cache.misses),
                insertions: self
                    .cache
                    .insertions
                    .saturating_sub(before.cache.insertions),
                evictions: self.cache.evictions.saturating_sub(before.cache.evictions),
                rejected: self.cache.rejected.saturating_sub(before.cache.rejected),
                bytes_in_use: self.cache.bytes_in_use,
                capacity_bytes: self.cache.capacity_bytes,
                entries: self.cache.entries,
            },
            coalesced: self.coalesced.saturating_sub(before.coalesced),
            rejected: self.rejected.saturating_sub(before.rejected),
            resilience: ResilienceSummary {
                retries: self
                    .resilience
                    .retries
                    .saturating_sub(before.resilience.retries),
                timeouts: self
                    .resilience
                    .timeouts
                    .saturating_sub(before.resilience.timeouts),
                crashed: self
                    .resilience
                    .crashed
                    .saturating_sub(before.resilience.crashed),
                breaker_trips: self
                    .resilience
                    .breaker_trips
                    .saturating_sub(before.resilience.breaker_trips),
                circuit_open: self
                    .resilience
                    .circuit_open
                    .saturating_sub(before.resilience.circuit_open),
                degraded: self
                    .resilience
                    .degraded
                    .saturating_sub(before.resilience.degraded),
                stale_serves: self
                    .resilience
                    .stale_serves
                    .saturating_sub(before.resilience.stale_serves),
            },
        }
    }
}

/// Drives a remote `gsuite-serve` endpoint with the spec's request stream
/// (closed-loop only: each client connection submits its next request when
/// the previous response arrives) and reports client-side wall latencies
/// plus the server's own cache/coalescing counters.
///
/// With `stop_server`, sends `shutdown` after the run — the CI smoke path.
///
/// # Errors
///
/// Workload-mix resolution failures, connection failures, and open-loop
/// arrival modes (unsupported over TCP) are reported as messages.
pub fn loadgen_tcp(addr: &str, spec: &LoadSpec, stop_server: bool) -> Result<LoadReport, String> {
    let ArrivalMode::Closed { clients } = spec.arrival else {
        return Err("open-loop arrivals are not supported over TCP (use --clients)".to_string());
    };
    let universe = spec.universe()?;
    let keys = spec.sample_keys(universe.len());
    let lines: Vec<String> = universe.iter().map(ServeRequest::to_line).collect();

    // Sample the server's counters before the burst: against a
    // long-running server, the report must reflect *this run's* traffic,
    // not the server's lifetime.
    let mut stats_client =
        ProtocolClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let before = StatsSample::parse(
        &stats_client
            .round_trip("stats")
            .map_err(|e| format!("stats round-trip failed: {e}"))?,
    );

    let t0 = Instant::now();
    let results = crate::loadgen::drive_closed_loop(
        clients,
        keys.len(),
        // One connection and one reusable response buffer per client:
        // the request loop allocates nothing per round trip.
        || {
            ProtocolClient::connect(addr)
                .map(|client| (client, String::new()))
                .map_err(|e| format!("cannot connect to {addr}: {e}"))
        },
        |(client, response), i| {
            let sent = Instant::now();
            client
                .round_trip_into(&lines[keys[i]], response)
                .map_err(|e| format!("connection to {addr} failed: {e}"))?;
            let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
            Ok(Step::Done(latency_ms, !response.starts_with("ok ")))
        },
    )?;
    let makespan_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Re-sample and diff: this run's counters, then optionally stop it.
    let after = StatsSample::parse(
        &stats_client
            .round_trip("stats")
            .map_err(|e| format!("stats round-trip failed: {e}"))?,
    );
    let run_stats = after.since(&before);
    if stop_server {
        let _ = stats_client.round_trip("shutdown");
    }

    let errors = results.iter().filter(|&&(_, _, e)| e).count() as u64;
    let latencies: Vec<f64> = results.iter().map(|&(_, l, _)| l).collect();
    let mut report = LoadReport::assemble(
        spec,
        "tcp",
        universe.len(),
        results.len() as u64,
        errors,
        run_stats.rejected,
        run_stats.coalesced,
        run_stats.cache,
        makespan_ms,
        latencies,
    );
    report.resilience = run_stats.resilience;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_parsing_handles_missing_keys() {
        let line = "stats workers=4 cache_hits=17 cache_misses=3";
        assert_eq!(field_u64(line, "cache_hits"), Some(17));
        assert_eq!(field_u64(line, "workers"), Some(4));
        assert_eq!(field_u64(line, "cache"), None);
        assert_eq!(field_u64(line, "nope"), None);
    }

    #[test]
    fn stats_diff_is_per_run() {
        let before = StatsSample::parse(
            "stats coalesced=5 rejected=1 cache_hits=100 cache_misses=20 cache_insertions=20 \
             cache_evictions=3 cache_rejected=0 cache_bytes=500 cache_capacity=1000 cache_entries=4",
        );
        let after = StatsSample::parse(
            "stats coalesced=9 rejected=1 cache_hits=130 cache_misses=25 cache_insertions=24 \
             cache_evictions=3 cache_rejected=1 cache_bytes=700 cache_capacity=1000 cache_entries=6",
        );
        let run = after.since(&before);
        assert_eq!(run.cache.hits, 30);
        assert_eq!(run.cache.misses, 5);
        assert_eq!(run.cache.insertions, 4);
        assert_eq!(run.cache.evictions, 0);
        assert_eq!(run.cache.rejected, 1);
        assert_eq!(run.coalesced, 4);
        assert_eq!(run.rejected, 0);
        // Point-in-time values come from the end sample.
        assert_eq!(run.cache.bytes_in_use, 700);
        assert_eq!(run.cache.capacity_bytes, 1000);
        assert_eq!(run.cache.entries, 6);
    }
}
