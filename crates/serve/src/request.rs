//! The serving request type and its newline-delimited wire format.
//!
//! One request = one inference-benchmark configuration: a [`RunConfig`]
//! (model × dataset × scale × layers × …) plus the [`GpuSpec`] backend
//! that measures it. On the wire a request is a single line of
//! whitespace-separated `key=value` pairs — the same keys the CLI and the
//! `key = value` defaults files accept, plus `backend` for the GPU axis:
//!
//! ```text
//! model=gcn comp=mp dataset=cora scale=0.05 hidden=16 backend=hw
//! model=gin comp=spmm dataset=pubmed backend=sim:8
//! ```
//!
//! Unspecified keys take the [`RunConfig`] defaults, except
//! `functional_math`, which defaults to `false` for serving (a profiling
//! service has no use for host-side output math). Requests are compared
//! structurally — two lines that resolve to the same configuration are
//! the *same* request for caching and coalescing purposes.

use gsuite_core::config::RunConfig;
use gsuite_scenarios::{GpuSpec, ScenarioCell};

/// One inference-benchmark request: what to run and which backend
/// measures it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// The pipeline configuration (the cache/coalescing key together with
    /// [`ServeRequest::gpu`]).
    pub config: RunConfig,
    /// The GPU/backend axis measuring this request.
    pub gpu: GpuSpec,
}

impl ServeRequest {
    /// A request over `config` measured by `gpu`.
    pub fn new(config: RunConfig, gpu: GpuSpec) -> Self {
        ServeRequest { config, gpu }
    }

    /// The request corresponding to one expanded scenario cell — the
    /// bridge from the scenario registry to a serving workload mix.
    pub fn from_cell(cell: &ScenarioCell) -> Self {
        ServeRequest {
            config: cell.config.clone(),
            gpu: cell.gpu,
        }
    }

    /// Parses one protocol line (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token for malformed pairs,
    /// unknown keys or unparsable values.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let mut config = RunConfig {
            functional_math: false,
            ..RunConfig::default()
        };
        let mut gpu = GpuSpec::HwV100;
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token {token:?} (expected key=value)"))?;
            match key {
                "backend" | "gpu" => {
                    gpu = GpuSpec::parse(value).ok_or_else(|| {
                        format!("invalid backend {value:?} (expected hw | sim | sim:<sms>)")
                    })?;
                }
                _ => config.apply(key, value).map_err(|e| e.to_string())?,
            }
        }
        Ok(ServeRequest { config, gpu })
    }

    /// Renders the request as one protocol line. `parse_line` of the
    /// result round-trips to an equal request. The sharding keys
    /// (`shards`, `partitioner`) are emitted only for multi-GPU requests,
    /// keeping single-device lines identical to the historical format.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "model={} comp={} dataset={} scale={} layers={} hidden={} framework={} seed={} functional={} opt={} backend={}",
            self.config.model.name().to_ascii_lowercase(),
            self.config.comp.name().to_ascii_lowercase(),
            self.config.dataset.name().to_ascii_lowercase(),
            self.config.scale,
            self.config.layers,
            self.config.hidden,
            self.config.framework.name().to_ascii_lowercase(),
            self.config.seed,
            self.config.functional_math,
            self.config.opt.name().to_ascii_lowercase(),
            self.gpu.proto_name(),
        );
        if self.config.gpus_per_run > 1 {
            line.push_str(&format!(
                " shards={} partitioner={}",
                self.config.gpus_per_run,
                self.config.partitioner.name()
            ));
        }
        line
    }

    /// A compact display label, e.g. `"gSuite-MP GCN on Cora [V100-hw]"`.
    pub fn label(&self) -> String {
        format!("{} [{}]", self.config.label(), self.gpu.label())
    }
}

/// How the serving layer satisfied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Graph + pipeline came from the LRU cache.
    Hit,
    /// Graph + pipeline were built for this request (and cached).
    Miss,
    /// The request attached to an identical in-flight execution and
    /// shared its profile run.
    Coalesced,
}

impl CacheDisposition {
    /// Wire-format name (`hit`, `miss`, `coalesced`).
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Coalesced => "coalesced",
        }
    }
}

impl std::fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_core::config::{CompModel, GnnModel};
    use gsuite_graph::datasets::Dataset;

    #[test]
    fn parse_line_applies_keys_and_defaults() {
        let r = ServeRequest::parse_line("model=gin comp=spmm dataset=pubmed backend=sim:8")
            .expect("valid line");
        assert_eq!(r.config.model, GnnModel::Gin);
        assert_eq!(r.config.comp, CompModel::Spmm);
        assert_eq!(r.config.dataset, Dataset::PubMed);
        assert_eq!(r.gpu, GpuSpec::SimSms(8));
        // Serving defaults: profiling only, no host math.
        assert!(!r.config.functional_math);
        assert_eq!(r.config.layers, 2);
    }

    #[test]
    fn parse_line_rejects_garbage() {
        assert!(ServeRequest::parse_line("model").is_err());
        assert!(ServeRequest::parse_line("model=transformer").is_err());
        assert!(ServeRequest::parse_line("backend=tpu").is_err());
        assert!(ServeRequest::parse_line("nonsense=1").is_err());
        assert!(ServeRequest::parse_line("scale=2.0").is_err());
    }

    #[test]
    fn to_line_round_trips() {
        for line in [
            "model=gcn backend=hw",
            "model=sage comp=mp dataset=citeseer scale=0.05 backend=sim",
            "model=gat dataset=reddit scale=0.001 layers=3 hidden=8 seed=7 backend=sim:4",
            "model=gin comp=spmm dataset=cora opt=2 backend=hw",
            "model=gcn dataset=cora scale=0.05 shards=4 partitioner=edgecut backend=hw",
        ] {
            let r = ServeRequest::parse_line(line).expect("valid");
            let back = ServeRequest::parse_line(&r.to_line()).expect("round-trip parses");
            assert_eq!(r, back, "round-trip of {line:?}");
        }
    }

    #[test]
    fn empty_line_is_the_default_request() {
        let r = ServeRequest::parse_line("").expect("empty = defaults");
        assert_eq!(r.config.model, GnnModel::Gcn);
        assert_eq!(r.gpu, GpuSpec::HwV100);
    }
}
