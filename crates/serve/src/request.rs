//! The serving request type and its newline-delimited wire format.
//!
//! One request = one inference-benchmark configuration: a [`RunConfig`]
//! (model × dataset × scale × layers × …) plus the [`GpuSpec`] backend
//! that measures it. On the wire a request is a single line of
//! whitespace-separated `key=value` pairs — the same keys the CLI and the
//! `key = value` defaults files accept, plus `backend` for the GPU axis
//! and the per-request QoS keys `deadline_ms` / `fault_seed`:
//!
//! ```text
//! model=gcn comp=mp dataset=cora scale=0.05 hidden=16 backend=hw
//! model=gin comp=spmm dataset=pubmed backend=sim:8 deadline_ms=250
//! ```
//!
//! Unspecified keys take the [`RunConfig`] defaults, except
//! `functional_math`, which defaults to `false` for serving (a profiling
//! service has no use for host-side output math). Requests are compared
//! structurally — two lines that resolve to the same configuration are
//! the *same* request for caching and coalescing purposes. The QoS keys
//! are deliberately **excluded** from that identity: a tight deadline
//! must not fragment the cache or the coalescing window.

use std::hash::{Hash, Hasher};

use gsuite_core::config::RunConfig;
use gsuite_scenarios::{GpuSpec, ScenarioCell};

pub use gsuite_scenarios::CacheDisposition;

/// One inference-benchmark request: what to run, which backend measures
/// it, and the per-request QoS envelope.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The pipeline configuration (the cache/coalescing key together with
    /// [`ServeRequest::gpu`]).
    pub config: RunConfig,
    /// The GPU/backend axis measuring this request.
    pub gpu: GpuSpec,
    /// Per-request latency budget in milliseconds (`None` = the server's
    /// default policy). Propagated into the build/profile stages as a
    /// cooperative-cancellation budget. **Not** part of request identity.
    pub deadline_ms: Option<f64>,
    /// Per-request fault-seed override for injected faults (`None` = the
    /// server's configured fault plan, if any). Lets a chaos client replay
    /// one request's fault draws deterministically. **Not** part of
    /// request identity.
    pub fault_seed: Option<u64>,
}

/// Request identity is the configuration + backend only: QoS knobs never
/// fragment the cache or the coalescing window.
impl PartialEq for ServeRequest {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.gpu == other.gpu
    }
}

/// Hashes exactly the identity fields [`PartialEq`] compares (the full
/// configuration + backend; QoS keys excluded), as the byte-LRU's hash
/// index requires. `scale` hashes by bit pattern — configurations
/// validate it as a positive finite value, so bitwise identity coincides
/// with `==` there.
impl Hash for ServeRequest {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let c = &self.config;
        c.model.name().hash(state);
        c.comp.name().hash(state);
        c.dataset.name().hash(state);
        c.scale.to_bits().hash(state);
        c.layers.hash(state);
        c.hidden.hash(state);
        c.framework.name().hash(state);
        c.seed.hash(state);
        c.functional_math.hash(state);
        c.opt.name().hash(state);
        c.gpus_per_run.hash(state);
        c.partitioner.name().hash(state);
        c.batch_size.hash(state);
        c.fanout.hash(state);
        c.seed_node.hash(state);
        self.gpu.proto_name().hash(state);
    }
}

impl ServeRequest {
    /// A request over `config` measured by `gpu`, with no QoS overrides.
    pub fn new(config: RunConfig, gpu: GpuSpec) -> Self {
        ServeRequest {
            config,
            gpu,
            deadline_ms: None,
            fault_seed: None,
        }
    }

    /// The request corresponding to one expanded scenario cell — the
    /// bridge from the scenario registry to a serving workload mix.
    pub fn from_cell(cell: &ScenarioCell) -> Self {
        ServeRequest::new(cell.config.clone(), cell.gpu)
    }

    /// Parses one protocol line (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token for malformed pairs,
    /// unknown keys or unparsable values.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let config = RunConfig {
            functional_math: false,
            ..RunConfig::default()
        };
        let mut req = ServeRequest::new(config, GpuSpec::HwV100);
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token {token:?} (expected key=value)"))?;
            match key {
                "backend" | "gpu" => {
                    req.gpu = GpuSpec::parse(value).ok_or_else(|| {
                        format!("invalid backend {value:?} (expected hw | sim | sim:<sms>)")
                    })?;
                }
                "deadline_ms" => {
                    let ms: f64 = value
                        .parse()
                        .ok()
                        .filter(|v: &f64| v.is_finite() && *v > 0.0)
                        .ok_or_else(|| {
                            format!("invalid deadline_ms {value:?} (expected positive ms)")
                        })?;
                    req.deadline_ms = Some(ms);
                }
                "fault_seed" => {
                    let seed: u64 = value.parse().map_err(|_| {
                        format!("invalid fault_seed {value:?} (expected unsigned integer)")
                    })?;
                    req.fault_seed = Some(seed);
                }
                _ => req.config.apply(key, value).map_err(|e| e.to_string())?,
            }
        }
        Ok(req)
    }

    /// Renders the request as one protocol line. `parse_line` of the
    /// result round-trips to an equal request (QoS keys included). The
    /// sharding keys (`shards`, `partitioner`), the mini-batch keys
    /// (`batch_size`, `fanout`, `seed_node`) and the QoS keys are
    /// emitted only when set, keeping plain lines identical to the
    /// historical format.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "model={} comp={} dataset={} scale={} layers={} hidden={} framework={} seed={} functional={} opt={} backend={}",
            self.config.model.name().to_ascii_lowercase(),
            self.config.comp.name().to_ascii_lowercase(),
            self.config.dataset.name().to_ascii_lowercase(),
            self.config.scale,
            self.config.layers,
            self.config.hidden,
            self.config.framework.name().to_ascii_lowercase(),
            self.config.seed,
            self.config.functional_math,
            self.config.opt.name().to_ascii_lowercase(),
            self.gpu.proto_name(),
        );
        if self.config.gpus_per_run > 1 {
            line.push_str(&format!(
                " shards={} partitioner={}",
                self.config.gpus_per_run,
                self.config.partitioner.name()
            ));
        }
        if self.config.batch_size > 0 {
            line.push_str(&format!(" batch_size={}", self.config.batch_size));
        }
        if !self.config.fanout.is_empty() {
            line.push_str(&format!(
                " fanout={}",
                gsuite_graph::fanout_label(&self.config.fanout)
            ));
        }
        if let Some(node) = self.config.seed_node {
            line.push_str(&format!(" seed_node={node}"));
        }
        if let Some(ms) = self.deadline_ms {
            line.push_str(&format!(" deadline_ms={ms}"));
        }
        if let Some(seed) = self.fault_seed {
            line.push_str(&format!(" fault_seed={seed}"));
        }
        line
    }

    /// A compact display label, e.g. `"gSuite-MP GCN on Cora [V100-hw]"`.
    pub fn label(&self) -> String {
        format!("{} [{}]", self.config.label(), self.gpu.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_core::config::{CompModel, GnnModel};
    use gsuite_graph::datasets::Dataset;

    #[test]
    fn parse_line_applies_keys_and_defaults() {
        let r = ServeRequest::parse_line("model=gin comp=spmm dataset=pubmed backend=sim:8")
            .expect("valid line");
        assert_eq!(r.config.model, GnnModel::Gin);
        assert_eq!(r.config.comp, CompModel::Spmm);
        assert_eq!(r.config.dataset, Dataset::PubMed);
        assert_eq!(r.gpu, GpuSpec::SimSms(8));
        // Serving defaults: profiling only, no host math, no QoS.
        assert!(!r.config.functional_math);
        assert_eq!(r.config.layers, 2);
        assert_eq!(r.deadline_ms, None);
        assert_eq!(r.fault_seed, None);
    }

    #[test]
    fn parse_line_rejects_garbage() {
        assert!(ServeRequest::parse_line("model").is_err());
        assert!(ServeRequest::parse_line("model=transformer").is_err());
        assert!(ServeRequest::parse_line("backend=tpu").is_err());
        assert!(ServeRequest::parse_line("nonsense=1").is_err());
        assert!(ServeRequest::parse_line("scale=2.0").is_err());
        assert!(ServeRequest::parse_line("deadline_ms=0").is_err());
        assert!(ServeRequest::parse_line("deadline_ms=-5").is_err());
        assert!(ServeRequest::parse_line("fault_seed=x").is_err());
    }

    #[test]
    fn to_line_round_trips() {
        for line in [
            "model=gcn backend=hw",
            "model=sage comp=mp dataset=citeseer scale=0.05 backend=sim",
            "model=gat dataset=reddit scale=0.001 layers=3 hidden=8 seed=7 backend=sim:4",
            "model=gin comp=spmm dataset=cora opt=2 backend=hw",
            "model=gcn dataset=cora scale=0.05 shards=4 partitioner=edgecut backend=hw",
            "model=gcn dataset=cora deadline_ms=250.5 fault_seed=9 backend=hw",
            "model=sage dataset=pubmed scale=0.02 batch_size=32 fanout=10x5 backend=hw",
            "model=gcn dataset=cora scale=0.05 seed_node=17 fanout=5x5 backend=hw",
        ] {
            let r = ServeRequest::parse_line(line).expect("valid");
            let back = ServeRequest::parse_line(&r.to_line()).expect("round-trip parses");
            assert_eq!(r, back, "round-trip of {line:?}");
            // QoS keys are outside request identity — check them directly.
            assert_eq!(r.deadline_ms, back.deadline_ms, "round-trip of {line:?}");
            assert_eq!(r.fault_seed, back.fault_seed, "round-trip of {line:?}");
        }
    }

    #[test]
    fn equal_requests_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        let digest = |r: &ServeRequest| {
            let mut h = DefaultHasher::new();
            r.hash(&mut h);
            h.finish()
        };
        let line = "model=gcn dataset=cora scale=0.05 batch_size=32 fanout=10x5 backend=sim:8";
        let a = ServeRequest::parse_line(line).unwrap();
        let b = ServeRequest::parse_line(&format!("{line} deadline_ms=9")).unwrap();
        assert_eq!(a, b);
        assert_eq!(digest(&a), digest(&b), "QoS keys must not perturb the hash");
        let other = ServeRequest::parse_line("model=gin dataset=cora backend=hw").unwrap();
        assert_ne!(digest(&a), digest(&other));
    }

    #[test]
    fn qos_keys_do_not_fragment_request_identity() {
        let plain = ServeRequest::parse_line("model=gcn dataset=cora backend=hw").unwrap();
        let qos = ServeRequest::parse_line(
            "model=gcn dataset=cora backend=hw deadline_ms=10 fault_seed=3",
        )
        .unwrap();
        assert_eq!(plain, qos, "QoS keys must not split the cache key");
        assert_eq!(qos.deadline_ms, Some(10.0));
        assert_eq!(qos.fault_seed, Some(3));
    }

    #[test]
    fn empty_line_is_the_default_request() {
        let r = ServeRequest::parse_line("").expect("empty = defaults");
        assert_eq!(r.config.model, GnnModel::Gcn);
        assert_eq!(r.gpu, GpuSpec::HwV100);
    }
}
