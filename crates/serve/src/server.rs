//! The long-running inference-benchmark service: a worker pool draining a
//! bounded FIFO request queue, a shared byte-accounted LRU cache of built
//! graphs + pipelines (sharded by key hash with per-shard locks, see
//! [`crate::cache::ShardedByteLru`]), and request coalescing (identical
//! in-flight configurations share one profile run). Repeat compile shapes
//! ride the plan-template fast path
//! ([`gsuite_core::plan::template::TemplateCache`]): lower/optimize/
//! decorate are skipped and only instantiate + schedule run, which is
//! bit-identical by construction.
//!
//! Execution of one request mirrors the batch scenario runner exactly —
//! `Dataset::load_scaled`, `PipelineRun::build`, then
//! `GpuSpec::profiler(opts, dataset)` and `PipelineRun::profile` — so a
//! served profile is **bit-identical** to the same configuration's cell in
//! [`gsuite_scenarios::run_scenario`] (a property the workspace
//! determinism suite locks in). What serving adds around that execution is
//! the traffic layer: queueing, backpressure, caching and per-request
//! timing.
//!
//! # Failure semantics
//!
//! With a [`FaultPlan`] configured, the server injects seeded faults —
//! slowdowns, transient failures, worker crashes (real panic-unwinds,
//! caught and counted by the supervisor), cache eviction storms, degraded
//! interconnects — and the [`ResilienceConfig`] decides what happens
//! next: per-request deadlines propagate as a cooperative-cancellation
//! budget into the build phases, transient failures and crashes retry
//! with seeded jittered backoff, per-config circuit breakers shed
//! known-bad configurations at submission, and deadline pressure degrades
//! gracefully (O0 compile fallback, stale-but-valid cache serves past the
//! soft TTL). Every knob defaults to **inert**: a fault-free server takes
//! exactly the historical code path.
//!
//! # Example
//!
//! ```
//! use gsuite_serve::{ServeConfig, ServeRequest, Server};
//!
//! let server = Server::start(ServeConfig::golden());
//! let rx = server.submit(ServeRequest::parse_line("model=gcn scale=0.05").unwrap()).unwrap();
//! let done = rx.recv().unwrap();
//! assert!(done.outcome.unwrap().total_time_ms() > 0.0);
//! server.shutdown();
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::Instant;

use gsuite_core::config::RunConfig;
use gsuite_core::pipeline::{PipelineRun, WorkerScratch};
use gsuite_core::plan::batchmerge::merge_class;
use gsuite_core::plan::template::TemplateCache;
use gsuite_core::plan::OptLevel;
use gsuite_core::CoreError;
use gsuite_graph::Graph;
use gsuite_profile::{Interconnect, PipelineProfile};
use gsuite_scenarios::sim::BatchPolicy;
use gsuite_scenarios::BenchOpts;
use gsuite_scenarios::LruStats;

use crate::cache::ShardedByteLru;
use crate::fault::{CircuitBreaker, FaultDraw, FaultPlan, RejectReason, ResilienceConfig};
use crate::request::{CacheDisposition, ServeRequest};

/// A cached execution unit: the loaded graph and the built pipeline.
pub type CachedPipeline = (Arc<Graph>, Arc<PipelineRun>);

/// The payload of an injected worker crash: `panic_any(InjectedCrash)`
/// unwinds the attempt, the supervisor catches it, and the filtering
/// panic hook keeps it off stderr (real panics still print).
struct InjectedCrash;

/// Installs (once, process-wide) a panic hook that silences
/// [`InjectedCrash`] payloads and forwards everything else to the
/// previous hook.
fn install_quiet_crash_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The cost model of one cache entry: feature matrix + COO topology + CSR
/// index of the graph, plus the pipeline's output buffer and a fixed
/// per-launch overhead for workload descriptors. Deliberately a *model*
/// (exact heap sizes are an implementation detail of the substrate
/// crates), but a deterministic, monotone one: bigger graphs and deeper
/// pipelines account more bytes.
pub fn entry_bytes(graph: &Graph, run: &PipelineRun) -> u64 {
    let s = graph.stats();
    let graph_bytes = s.nodes * (s.feature_len * 4 + 8) + s.edges * 8;
    let pipeline_bytes = run.output.len() * 4 + run.launches.len() * 512;
    (graph_bytes + pipeline_bytes) as u64
}

/// One cache slot: the execution unit plus its build instant, which the
/// stale-TTL policy ages against.
#[derive(Clone)]
struct CacheEntry {
    value: CachedPipeline,
    built_at: Instant,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth; a full queue blocks [`Server::submit`] and
    /// rejects [`Server::try_submit`].
    pub queue_cap: usize,
    /// LRU cache capacity in bytes (split across [`ServeConfig::cache_shards`]).
    pub cache_bytes: u64,
    /// Pipeline-cache lock shards: the cache is split `cache_shards` ways
    /// by key hash, each slice behind its own lock, so workers touching
    /// different keys never contend (values < 1 are clamped to 1).
    pub cache_shards: usize,
    /// Measurement options shared by every request (scale policy, CTA
    /// caps) — the same knobs the batch scenario runner takes.
    pub opts: BenchOpts,
    /// Seeded fault injection plan; `None` (the default) injects nothing.
    pub fault: Option<FaultPlan>,
    /// Resilience policy (deadlines, retries, breaker, degradation). The
    /// default is fully inert — see [`ResilienceConfig::is_inert`].
    pub resilience: ResilienceConfig,
    /// Cross-request batching policy. `None` (the default) serves every
    /// request alone — the historical code path, exactly. When set, a
    /// worker that dequeues a mergeable request (see
    /// [`gsuite_core::plan::batchmerge::merge_class`]) holds a forming
    /// window open for up to [`BatchPolicy::max_queue_delay_ms`],
    /// drains up to [`BatchPolicy::max_batch`] compatible queued
    /// requests into one merged Plan build + profile, and scatters
    /// per-request completions. Merged executions skip the pipeline
    /// LRU (each member is a distinct key built block-diagonally; the
    /// plan-template cache still serves repeat batch shapes) and the
    /// fault-injection machinery (the merged path is the healthy fast
    /// path; faulted workloads exercise the solo path).
    pub batch: Option<BatchPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            cache_bytes: 256 << 20,
            cache_shards: 8,
            opts: BenchOpts::quick(),
            fault: None,
            resilience: ResilienceConfig::default(),
            batch: None,
        }
    }
}

impl ServeConfig {
    /// A test-sized config: golden measurement mode (quick scales, 32-CTA
    /// cap) with a small worker pool.
    pub fn golden() -> Self {
        ServeConfig {
            workers: 2,
            opts: BenchOpts::golden(),
            ..ServeConfig::default()
        }
    }
}

/// One finished request as delivered to its submitter.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Submission id (monotone per server).
    pub id: u64,
    /// The request this answers.
    pub request: ServeRequest,
    /// The profile, or the build error (e.g. an unsupported
    /// model/computational-model combination).
    pub outcome: Result<Arc<PipelineProfile>, String>,
    /// How the cache satisfied the request.
    pub cache: CacheDisposition,
    /// Typed reject reason when the resilience layer failed the request
    /// (deadline, crash, …); `None` for successes and plain build errors.
    pub reject: Option<RejectReason>,
    /// Served degraded: an O0 compile fallback or a stale-but-valid cache
    /// entry past its soft TTL, taken under deadline pressure.
    pub degraded: bool,
    /// Retries consumed before this completion was produced.
    pub retries: u32,
    /// Members in the cross-request batch this completion was served by
    /// (`1` = served alone, the historical path).
    pub batch: u32,
    /// Wall milliseconds spent queued before dispatch.
    pub queue_ms: f64,
    /// Wall milliseconds of (possibly shared) build + profile work.
    pub service_ms: f64,
    /// Wall milliseconds from submission to completion.
    pub latency_ms: f64,
}

impl Completion {
    /// Renders the wire-format response line. The resilience keys
    /// (`code=`, `degraded=`, `retries=`) are appended only when set, so
    /// fault-free responses keep the historical format byte-for-byte.
    pub fn to_line(&self) -> String {
        let mut line = match &self.outcome {
            Ok(profile) => format!(
                "ok id={} cache={} queue_ms={:.4} service_ms={:.4} latency_ms={:.4} device_ms={:.4} e2e_ms={:.4} kernels={}",
                self.id,
                self.cache,
                self.queue_ms,
                self.service_ms,
                self.latency_ms,
                profile.device_time_ms(),
                profile.total_time_ms(),
                profile.kernels.len(),
            ),
            Err(msg) => format!(
                "err id={} cache={} latency_ms={:.4} msg={:?}",
                self.id, self.cache, self.latency_ms, msg
            ),
        };
        if let Some(reason) = self.reject {
            line.push_str(&format!(" code={}", reason.code()));
        }
        if self.degraded {
            line.push_str(" degraded=true");
        }
        if self.retries > 0 {
            line.push_str(&format!(" retries={}", self.retries));
        }
        if self.batch > 1 {
            line.push_str(&format!(" batch={}", self.batch));
        }
        line
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full ([`Server::try_submit`] only; counted as shed
    /// load in [`ServerStats::rejected`]).
    Busy,
    /// The request's per-config circuit breaker is open: the
    /// configuration failed recently enough, often enough, that the
    /// server fast-fails it instead of queueing it.
    CircuitOpen,
    /// The batch former's admission control shed this mergeable
    /// request: [`BatchPolicy::max_backlog`] forming windows were
    /// already open.
    BatchBacklog,
    /// The server is shutting down.
    ShuttingDown,
}

impl SubmitError {
    /// The typed reject this submission failure maps to on the wire
    /// (`None` for shutdown, which is connection-level).
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            SubmitError::Busy => Some(RejectReason::QueueFull),
            SubmitError::CircuitOpen => Some(RejectReason::CircuitOpen),
            SubmitError::BatchBacklog => Some(RejectReason::BatchBacklog),
            SubmitError::ShuttingDown => None,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::Busy => "queue full",
            SubmitError::CircuitOpen => "circuit open",
            SubmitError::BatchBacklog => "batch backlog full",
            SubmitError::ShuttingDown => "server shutting down",
        })
    }
}

/// A counter snapshot of the running service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Worker-pool size.
    pub workers: usize,
    /// Requests currently queued (excluding executing ones).
    pub queue_depth: usize,
    /// Accepted submissions (including coalesced ones).
    pub submitted: u64,
    /// Delivered completions.
    pub completed: u64,
    /// Submissions that attached to an in-flight identical request.
    pub coalesced: u64,
    /// `try_submit` calls shed due to a full queue.
    pub rejected: u64,
    /// Largest peak-device-bytes footprint of any pipeline served so far
    /// (each pipeline's memory schedule reports its own peak; see
    /// `gsuite_profile::PipelineProfile::peak_device_bytes`).
    pub peak_device_bytes: u64,
    /// Largest *per-shard* device-bytes peak among sharded (multi-GPU)
    /// pipelines served so far — the memory one device of the modeled
    /// cluster must provision. `0` until a `shards>1` request runs.
    pub shard_peak_device_bytes: u64,
    /// Retry attempts consumed across all requests.
    pub retries: u64,
    /// Requests failed on an expired deadline (queued or mid-build).
    pub timeouts: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Submissions shed at admission by an open circuit breaker.
    pub breaker_shed: u64,
    /// Requests served by the O0 compile fallback under deadline
    /// pressure.
    pub degraded: u64,
    /// Requests served from a stale-but-valid cache entry past its soft
    /// TTL.
    pub stale_serves: u64,
    /// Injected worker crashes caught by the supervisor.
    pub crashed: u64,
    /// Worker respawns after caught crashes (one per crash — no crash
    /// loses its worker slot).
    pub respawns: u64,
    /// Plan-template cache lookup hits (repeat compile shapes).
    pub tpl_hits: u64,
    /// Plan-template cache lookup misses (first sight of a shape).
    pub tpl_misses: u64,
    /// Builds served by template instantiation instead of a full
    /// lower/optimize/decorate compile.
    pub tpl_instantiates: u64,
    /// Contended pipeline-cache shard-lock acquisitions.
    pub lock_waits: u64,
    /// Merged cross-request batches executed (2+ members each; solo
    /// dispatches are not counted).
    pub batches: u64,
    /// Requests served through a merged batch.
    pub batched_requests: u64,
    /// Mergeable submissions shed by batch-former admission control.
    pub batch_shed: u64,
    /// Cache counters.
    pub cache: LruStats,
}

impl ServerStats {
    /// The `stats` line's keys, in wire order. The order is part of the
    /// protocol: new keys are only ever appended (so positional and
    /// prefix parsers keep working), and the
    /// `stats_line_round_trips_with_locked_key_order` test locks it.
    pub const LINE_KEYS: [&'static str; 31] = [
        "workers",
        "queue",
        "submitted",
        "completed",
        "coalesced",
        "rejected",
        "cache_hits",
        "cache_misses",
        "cache_insertions",
        "cache_evictions",
        "cache_rejected",
        "cache_bytes",
        "cache_capacity",
        "cache_entries",
        "peak_device_bytes",
        "shard_peak_device_bytes",
        "retries",
        "timeouts",
        "breaker_trips",
        "breaker_shed",
        "degraded",
        "stale_serves",
        "crashed",
        "respawns",
        "tpl_hits",
        "tpl_misses",
        "tpl_instantiates",
        "lock_waits",
        "batches",
        "batched_requests",
        "batch_shed",
    ];

    /// Renders the wire-format `stats` response line. The resilience
    /// counters are appended after the historical fields, so existing
    /// parsers keep working.
    ///
    /// # Wire format
    ///
    /// One space-separated line: the literal token `stats` followed by
    /// `key=value` pairs — every key in [`ServerStats::LINE_KEYS`], in
    /// that order, each value a base-10 unsigned integer. Example:
    ///
    /// ```text
    /// stats workers=2 queue=0 submitted=1 completed=1 coalesced=0 rejected=0
    ///   cache_hits=0 cache_misses=1 cache_insertions=1 cache_evictions=0
    ///   cache_rejected=0 cache_bytes=211456 cache_capacity=268435456
    ///   cache_entries=1 peak_device_bytes=54112 shard_peak_device_bytes=0
    ///   retries=0 timeouts=0 breaker_trips=0 breaker_shed=0 degraded=0
    ///   stale_serves=0 crashed=0 respawns=0 tpl_hits=0 tpl_misses=1
    ///   tpl_instantiates=0 lock_waits=0 batches=0 batched_requests=0
    ///   batch_shed=0
    /// ```
    ///
    /// (wrapped here for the page; the wire carries a single line).
    /// [`ServerStats::parse_line`] reads it back; the round trip is
    /// exact.
    pub fn to_line(&self) -> String {
        format!(
            "stats workers={} queue={} submitted={} completed={} coalesced={} rejected={} \
             cache_hits={} cache_misses={} cache_insertions={} cache_evictions={} \
             cache_rejected={} cache_bytes={} cache_capacity={} cache_entries={} \
             peak_device_bytes={} shard_peak_device_bytes={} \
             retries={} timeouts={} breaker_trips={} breaker_shed={} degraded={} \
             stale_serves={} crashed={} respawns={} \
             tpl_hits={} tpl_misses={} tpl_instantiates={} lock_waits={} \
             batches={} batched_requests={} batch_shed={}",
            self.workers,
            self.queue_depth,
            self.submitted,
            self.completed,
            self.coalesced,
            self.rejected,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.rejected,
            self.cache.bytes_in_use,
            self.cache.capacity_bytes,
            self.cache.entries,
            self.peak_device_bytes,
            self.shard_peak_device_bytes,
            self.retries,
            self.timeouts,
            self.breaker_trips,
            self.breaker_shed,
            self.degraded,
            self.stale_serves,
            self.crashed,
            self.respawns,
            self.tpl_hits,
            self.tpl_misses,
            self.tpl_instantiates,
            self.lock_waits,
            self.batches,
            self.batched_requests,
            self.batch_shed,
        )
    }

    /// Parses a wire-format `stats` line back into a snapshot — the
    /// inverse of [`ServerStats::to_line`]. Unknown keys are ignored
    /// (future servers may append fields); missing keys read as 0, so
    /// pre-resilience lines still parse.
    ///
    /// Returns `None` when the line does not start with the `stats`
    /// token.
    pub fn parse_line(line: &str) -> Option<ServerStats> {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("stats") {
            return None;
        }
        let get = |key: &str| -> u64 {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
                .unwrap_or(0)
        };
        Some(ServerStats {
            workers: get("workers") as usize,
            queue_depth: get("queue") as usize,
            submitted: get("submitted"),
            completed: get("completed"),
            coalesced: get("coalesced"),
            rejected: get("rejected"),
            peak_device_bytes: get("peak_device_bytes"),
            shard_peak_device_bytes: get("shard_peak_device_bytes"),
            retries: get("retries"),
            timeouts: get("timeouts"),
            breaker_trips: get("breaker_trips"),
            breaker_shed: get("breaker_shed"),
            degraded: get("degraded"),
            stale_serves: get("stale_serves"),
            crashed: get("crashed"),
            respawns: get("respawns"),
            tpl_hits: get("tpl_hits"),
            tpl_misses: get("tpl_misses"),
            tpl_instantiates: get("tpl_instantiates"),
            lock_waits: get("lock_waits"),
            batches: get("batches"),
            batched_requests: get("batched_requests"),
            batch_shed: get("batch_shed"),
            cache: LruStats {
                hits: get("cache_hits"),
                misses: get("cache_misses"),
                insertions: get("cache_insertions"),
                evictions: get("cache_evictions"),
                rejected: get("cache_rejected"),
                bytes_in_use: get("cache_bytes"),
                capacity_bytes: get("cache_capacity"),
                entries: get("cache_entries") as usize,
            },
        })
    }

    /// The snapshot as a metrics registry — the payload of the `metrics`
    /// protocol command. Monotone counters become Prometheus counters,
    /// point-in-time values (queue depth, cache occupancy, memory peaks)
    /// become gauges; exposition order is sorted by name.
    pub fn metrics(&self) -> gsuite_telemetry::MetricsRegistry {
        let mut reg = gsuite_telemetry::MetricsRegistry::new();
        let counters: [(&str, &str, u64); 24] = [
            (
                "gsuite_serve_submitted_total",
                "Accepted submissions (including coalesced).",
                self.submitted,
            ),
            (
                "gsuite_serve_completed_total",
                "Delivered completions.",
                self.completed,
            ),
            (
                "gsuite_serve_coalesced_total",
                "Submissions that attached to an in-flight identical request.",
                self.coalesced,
            ),
            (
                "gsuite_serve_rejected_total",
                "Submissions shed due to a full queue.",
                self.rejected,
            ),
            (
                "gsuite_cache_hits_total",
                "Pipeline-cache lookup hits.",
                self.cache.hits,
            ),
            (
                "gsuite_cache_misses_total",
                "Pipeline-cache lookup misses.",
                self.cache.misses,
            ),
            (
                "gsuite_cache_insertions_total",
                "Pipeline-cache insertions.",
                self.cache.insertions,
            ),
            (
                "gsuite_cache_evictions_total",
                "Pipeline-cache evictions.",
                self.cache.evictions,
            ),
            (
                "gsuite_cache_rejected_total",
                "Pipeline-cache inserts rejected (entry larger than capacity).",
                self.cache.rejected,
            ),
            (
                "gsuite_resilience_retries_total",
                "Retry attempts consumed.",
                self.retries,
            ),
            (
                "gsuite_resilience_timeouts_total",
                "Requests failed on an expired deadline.",
                self.timeouts,
            ),
            (
                "gsuite_resilience_breaker_trips_total",
                "Circuit-breaker trips.",
                self.breaker_trips,
            ),
            (
                "gsuite_resilience_breaker_shed_total",
                "Submissions shed by an open circuit breaker.",
                self.breaker_shed,
            ),
            (
                "gsuite_resilience_degraded_total",
                "Requests served by the O0 compile fallback.",
                self.degraded,
            ),
            (
                "gsuite_resilience_stale_serves_total",
                "Stale-but-valid cache serves past the soft TTL.",
                self.stale_serves,
            ),
            (
                "gsuite_resilience_crashed_total",
                "Injected worker crashes caught by the supervisor.",
                self.crashed,
            ),
            (
                "gsuite_resilience_respawns_total",
                "Worker respawns after caught crashes.",
                self.respawns,
            ),
            (
                "gsuite_template_hits_total",
                "Plan-template cache lookup hits.",
                self.tpl_hits,
            ),
            (
                "gsuite_template_misses_total",
                "Plan-template cache lookup misses.",
                self.tpl_misses,
            ),
            (
                "gsuite_template_instantiates_total",
                "Builds served by template instantiation instead of a full compile.",
                self.tpl_instantiates,
            ),
            (
                "gsuite_cache_lock_waits_total",
                "Contended pipeline-cache shard-lock acquisitions.",
                self.lock_waits,
            ),
            (
                "gsuite_batch_dispatched_total",
                "Merged cross-request batches executed.",
                self.batches,
            ),
            (
                "gsuite_batch_requests_total",
                "Requests served through a merged batch.",
                self.batched_requests,
            ),
            (
                "gsuite_batch_shed_total",
                "Mergeable submissions shed by batch-former admission control.",
                self.batch_shed,
            ),
        ];
        for (name, help, v) in counters {
            reg.counter_add(name, help, v);
        }
        let gauges: [(&str, &str, f64); 6] = [
            (
                "gsuite_serve_workers",
                "Worker-pool size.",
                self.workers as f64,
            ),
            (
                "gsuite_serve_queue_depth",
                "Requests currently queued.",
                self.queue_depth as f64,
            ),
            (
                "gsuite_cache_bytes_in_use",
                "Pipeline-cache bytes in use.",
                self.cache.bytes_in_use as f64,
            ),
            (
                "gsuite_cache_entries",
                "Pipeline-cache resident entries.",
                self.cache.entries as f64,
            ),
            (
                "gsuite_serve_peak_device_bytes",
                "Largest peak-device-bytes footprint served.",
                self.peak_device_bytes as f64,
            ),
            (
                "gsuite_serve_shard_peak_device_bytes",
                "Largest per-shard device-bytes peak served.",
                self.shard_peak_device_bytes as f64,
            ),
        ];
        for (name, help, v) in gauges {
            reg.gauge_set(name, help, v);
        }
        reg
    }
}

struct Waiter {
    id: u64,
    submitted: Instant,
    tx: mpsc::Sender<Completion>,
}

struct Job {
    key: ServeRequest,
    /// The original submitter plus any identical submissions coalesced
    /// while this job sat in the queue.
    waiters: Vec<Waiter>,
}

struct State {
    queue: VecDeque<Job>,
    /// Keys currently executing on a worker; identical submissions attach
    /// their waiter here.
    executing: Vec<(ServeRequest, Vec<Waiter>)>,
    /// Per-config circuit breakers (linear scan: the config universe a
    /// service sees is small).
    breakers: Vec<(ServeRequest, CircuitBreaker)>,
    next_id: u64,
    submitted: u64,
    completed: u64,
    coalesced: u64,
    rejected: u64,
    retries: u64,
    timeouts: u64,
    breaker_shed: u64,
    degraded: u64,
    stale_serves: u64,
    crashed: u64,
    respawns: u64,
    peak_device_bytes: u64,
    shard_peak_device_bytes: u64,
    batches: u64,
    batched_requests: u64,
    batch_shed: u64,
    /// Batch-forming windows currently held open by workers — the
    /// backlog bound [`BatchPolicy::max_backlog`] sheds against.
    forming: usize,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    /// The server's time origin: breaker transitions run on milliseconds
    /// since this instant, mirroring the sim clock's absolute time.
    epoch: Instant,
    state: Mutex<State>,
    /// The pipeline cache, sharded by key hash with per-shard locks —
    /// deliberately *outside* the queue mutex so cache traffic and queue
    /// bookkeeping never serialize against each other.
    cache: ShardedByteLru<ServeRequest, CacheEntry>,
    /// Compile-shape templates shared by every worker: repeat shapes skip
    /// lower/optimize/decorate and only re-schedule.
    templates: TemplateCache,
    work_avail: Condvar,
    space_avail: Condvar,
}

/// The running service. Dropping the handle is equivalent to
/// [`Server::shutdown`]: the queue drains (pending submitters still get
/// their completions) and the workers are joined.
pub struct Server {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool and returns the service handle.
    pub fn start(cfg: ServeConfig) -> Server {
        let workers = cfg.workers.max(1);
        if cfg.fault.is_some_and(|f| f.spec.crash_rate > 0.0) {
            install_quiet_crash_hook();
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                executing: Vec::new(),
                breakers: Vec::new(),
                next_id: 0,
                submitted: 0,
                completed: 0,
                coalesced: 0,
                rejected: 0,
                retries: 0,
                timeouts: 0,
                breaker_shed: 0,
                degraded: 0,
                stale_serves: 0,
                crashed: 0,
                respawns: 0,
                peak_device_bytes: 0,
                shard_peak_device_bytes: 0,
                batches: 0,
                batched_requests: 0,
                batch_shed: 0,
                forming: 0,
                shutdown: false,
            }),
            epoch: Instant::now(),
            cache: ShardedByteLru::new(cfg.cache_bytes, cfg.cache_shards),
            templates: TemplateCache::new(),
            work_avail: Condvar::new(),
            space_avail: Condvar::new(),
            cfg,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Server { inner, handles }
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// Submits a request, **blocking** while the queue is full — the
    /// backpressure path closed-loop clients ride on. Returns the channel
    /// the [`Completion`] arrives on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] after [`Server::shutdown`] began;
    /// [`SubmitError::CircuitOpen`] when the config's breaker is open.
    pub fn submit(&self, req: ServeRequest) -> Result<mpsc::Receiver<Completion>, SubmitError> {
        self.submit_inner(req, true)
    }

    /// Non-blocking submission: a full queue sheds the request instead of
    /// waiting — the open-loop overload path.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue is full,
    /// [`SubmitError::CircuitOpen`] when the config's breaker is open,
    /// [`SubmitError::ShuttingDown`] during shutdown.
    pub fn try_submit(&self, req: ServeRequest) -> Result<mpsc::Receiver<Completion>, SubmitError> {
        self.submit_inner(req, false)
    }

    fn submit_inner(
        &self,
        req: ServeRequest,
        block: bool,
    ) -> Result<mpsc::Receiver<Completion>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let mut state = self.inner.state.lock().expect("server state poisoned");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        // Batch-former admission: with `max_backlog` forming windows
        // already open, a *mergeable* submission is shed instead of
        // deepening the backlog (unmergeable requests bypass the former
        // entirely, so they are never shed here).
        if let Some(policy) = self.inner.cfg.batch {
            if policy.max_backlog > 0
                && state.forming >= policy.max_backlog
                && merge_class(&req.config).is_some()
            {
                state.batch_shed += 1;
                return Err(SubmitError::BatchBacklog);
            }
        }
        // Circuit-breaker admission runs before coalescing: an open
        // breaker means the config is known-bad, and attaching to an
        // in-flight execution of it would defeat the fast-fail.
        if let Some(bcfg) = self.inner.cfg.resilience.breaker {
            let now_ms = ms_between(self.inner.epoch, Instant::now());
            let breaker = match state.breakers.iter_mut().position(|(k, _)| *k == req) {
                Some(i) => &mut state.breakers[i].1,
                None => {
                    state
                        .breakers
                        .push((req.clone(), CircuitBreaker::new(bcfg)));
                    &mut state.breakers.last_mut().expect("just pushed").1
                }
            };
            if !breaker.admit(now_ms) {
                state.breaker_shed += 1;
                return Err(SubmitError::CircuitOpen);
            }
        }
        let id = state.next_id;
        state.next_id += 1;
        let waiter = Waiter {
            id,
            submitted: Instant::now(),
            tx,
        };

        loop {
            // Coalesce onto an identical executing or queued request: the
            // waiter shares that execution's profile run. Re-checked after
            // every full-queue wait — while this submitter was blocked,
            // another may have enqueued the same key, and pushing a second
            // job would break the one-execution-per-key invariant the
            // cache-build path relies on.
            if let Some((_, waiters)) = state.executing.iter_mut().find(|(k, _)| *k == req) {
                waiters.push(waiter);
                state.submitted += 1;
                state.coalesced += 1;
                return Ok(rx);
            }
            if let Some(job) = state.queue.iter_mut().find(|j| j.key == req) {
                job.waiters.push(waiter);
                state.submitted += 1;
                state.coalesced += 1;
                return Ok(rx);
            }
            if state.queue.len() < self.inner.cfg.queue_cap.max(1) {
                break;
            }
            if !block {
                state.rejected += 1;
                return Err(SubmitError::Busy);
            }
            state = self
                .inner
                .space_avail
                .wait(state)
                .expect("server state poisoned");
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
        }
        state.submitted += 1;
        state.queue.push_back(Job {
            key: req,
            waiters: vec![waiter],
        });
        drop(state);
        self.inner.work_avail.notify_one();
        Ok(rx)
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let tpl = self.inner.templates.stats();
        let state = self.inner.state.lock().expect("server state poisoned");
        ServerStats {
            workers: self.handles.len(),
            queue_depth: state.queue.len(),
            submitted: state.submitted,
            completed: state.completed,
            coalesced: state.coalesced,
            rejected: state.rejected,
            peak_device_bytes: state.peak_device_bytes,
            shard_peak_device_bytes: state.shard_peak_device_bytes,
            retries: state.retries,
            timeouts: state.timeouts,
            breaker_trips: state.breakers.iter().map(|(_, b)| b.trips()).sum(),
            breaker_shed: state.breaker_shed,
            degraded: state.degraded,
            stale_serves: state.stale_serves,
            crashed: state.crashed,
            respawns: state.respawns,
            tpl_hits: tpl.hits,
            tpl_misses: tpl.misses,
            tpl_instantiates: tpl.instantiates,
            lock_waits: self.inner.cache.lock_waits(),
            batches: state.batches,
            batched_requests: state.batched_requests,
            batch_shed: state.batch_shed,
            cache: self.inner.cache.stats(),
        }
    }

    /// Stops accepting work, drains the queue and joins the workers.
    /// Queued requests still receive their completions.
    pub fn shutdown(self) {
        // Drop does the work; the method exists to make the stop explicit.
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("server state poisoned");
            state.shutdown = true;
        }
        self.inner.work_avail.notify_all();
        self.inner.space_avail.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    /// Dropping the handle stops the service: without this, workers whose
    /// queue has drained would park in `work_avail.wait()` forever,
    /// leaking the threads and the shared state.
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How one execution attempt failed.
enum AttemptError {
    /// Not retryable: a bad configuration (e.g. an unsupported
    /// model/computational-model pair).
    Permanent(String),
    /// Retryable: an injected transient fault.
    Transient(String),
    /// The worker crashed mid-attempt (caught panic); retryable.
    Crash,
    /// The deadline budget expired at a build checkpoint.
    Cancelled,
}

/// What one successful attempt produced.
struct AttemptSuccess {
    profile: Arc<PipelineProfile>,
    cache: CacheDisposition,
    /// Served by the O0 compile fallback.
    degraded: bool,
    /// Served from a stale cache entry past its soft TTL.
    stale: bool,
    peak_device_bytes: u64,
    shard_peak_device_bytes: u64,
}

/// Builds graph + pipeline for `config` — the expensive miss path, run
/// outside the state lock. Repeat compile shapes are served from
/// `templates` (instantiate + schedule only); `scratch` is the calling
/// worker's reusable compile arena; `cancelled` is the deadline budget's
/// cooperative-cancellation checkpoint.
fn build_pipeline(
    config: &RunConfig,
    templates: &TemplateCache,
    scratch: &mut WorkerScratch,
    cancelled: &mut dyn FnMut() -> bool,
) -> Result<CachedPipeline, AttemptError> {
    let graph = Arc::new(config.load_graph());
    match PipelineRun::build_with_templates_in(&graph, config, templates, scratch, cancelled) {
        Ok(run) => Ok((graph, Arc::new(run))),
        Err(CoreError::Cancelled) => Err(AttemptError::Cancelled),
        // The suite's known boundary (e.g. gSuite SAGE under SpMM) and any
        // other build failure both surface as error responses; a serving
        // process must not crash on a bad request.
        Err(e @ CoreError::UnsupportedCombination { .. }) => {
            Err(AttemptError::Permanent(e.to_string()))
        }
        Err(e) => Err(AttemptError::Permanent(format!(
            "cannot build {}: {e}",
            config.label()
        ))),
    }
}

/// One execution attempt of `key`: cache lookup (with stale-TTL aging),
/// build on miss (O0 fallback under deadline pressure), profile (link
/// faults price the halo exchanges), then the injected slowdown and
/// transient-failure effects. Runs under the supervisor's `catch_unwind`.
fn run_attempt(
    inner: &Inner,
    key: &ServeRequest,
    draw: &FaultDraw,
    pressured: bool,
    scratch: &mut WorkerScratch,
    cancelled: &mut dyn FnMut() -> bool,
) -> Result<AttemptSuccess, AttemptError> {
    let started = Instant::now();
    if draw.crash {
        // An injected worker crash: a real panic-unwind through the
        // execution path, caught by the supervisor in `worker_loop`.
        std::panic::panic_any(InjectedCrash);
    }
    let res = &inner.cfg.resilience;

    // Cache lookup under the key's shard lock only; the expensive build
    // outside any lock. Coalescing guarantees one execution per key at a
    // time, so two workers never race to build the same entry.
    let cached = inner.cache.get(key);
    let (disposition, value, degraded, stale) = match cached {
        Some(entry) => {
            let age_ms = ms_between(entry.built_at, Instant::now());
            match res.stale_ttl_ms {
                Some(ttl) if age_ms > ttl && pressured => {
                    // Stale-but-valid: past the soft TTL, but the deadline
                    // budget cannot cover a refresh — serve it anyway.
                    (CacheDisposition::Hit, entry.value, false, true)
                }
                Some(ttl) if age_ms > ttl => {
                    // Refresh: rebuild and re-insert with a fresh age. The
                    // rebuild is a template hit (same shape just aged out),
                    // so only the schedule is recomputed.
                    let built = build_pipeline(&key.config, &inner.templates, scratch, cancelled)?;
                    let bytes = entry_bytes(&built.0, &built.1);
                    inner.cache.insert(
                        key.clone(),
                        CacheEntry {
                            value: built.clone(),
                            built_at: Instant::now(),
                        },
                        bytes,
                    );
                    (CacheDisposition::Miss, built, false, false)
                }
                _ => (CacheDisposition::Hit, entry.value, false, false),
            }
        }
        None if res.degrade && pressured => {
            // Graceful degradation: more than half the budget is gone, so
            // skip the optimizer (O0 compile). Degraded builds are *not*
            // cached — the next unpressured request builds the real thing.
            let o0 = RunConfig {
                opt: OptLevel::O0,
                ..key.config.clone()
            };
            let built = build_pipeline(&o0, &inner.templates, scratch, cancelled)?;
            (CacheDisposition::Miss, built, true, false)
        }
        None => {
            let built = build_pipeline(&key.config, &inner.templates, scratch, cancelled)?;
            let bytes = entry_bytes(&built.0, &built.1);
            inner.cache.insert(
                key.clone(),
                CacheEntry {
                    value: built.clone(),
                    built_at: Instant::now(),
                },
                bytes,
            );
            (CacheDisposition::Miss, built, false, false)
        }
    };

    let (_, run) = &value;
    let profiler = key.gpu.profiler(&inner.cfg.opts, key.config.dataset);
    let link = Interconnect::nvlink().degraded(draw.link_factor);
    let profile = Arc::new(run.profile_with_link(profiler.as_ref(), link));

    // Injected slowdown: stretch the attempt's wall time by the factor.
    if draw.slow_factor > 1.0 {
        std::thread::sleep(started.elapsed().mul_f64(draw.slow_factor - 1.0));
    }
    // Injected transient failure: the work happened, the result is lost.
    if draw.transient {
        return Err(AttemptError::Transient(
            "injected transient fault".to_string(),
        ));
    }

    Ok(AttemptSuccess {
        peak_device_bytes: run.peak_device_bytes,
        shard_peak_device_bytes: run
            .sharding
            .as_ref()
            .map(|s| s.max_shard_peak_bytes())
            .unwrap_or(0),
        profile,
        cache: disposition,
        degraded,
        stale,
    })
}

/// Holds a forming window open for up to
/// [`BatchPolicy::max_queue_delay_ms`]: drains queued jobs whose merge
/// class and GPU match the head's (oldest first, skipping incompatible
/// jobs in place) until the batch is full, the window expires, or the
/// server shuts down. Returns the members in arrival order, head first.
/// Every drained member is registered as executing before the lock
/// drops, so identical submissions coalesce onto it exactly as they
/// would onto a solo execution.
fn form_batch(
    inner: &Inner,
    mut state: std::sync::MutexGuard<'_, State>,
    head: Job,
    policy: BatchPolicy,
    class: &gsuite_core::plan::batchmerge::MergeClass,
) -> Vec<Job> {
    state.forming += 1;
    let mut members = vec![head];
    let gpu = members[0].key.gpu;
    let deadline = Instant::now()
        + std::time::Duration::from_secs_f64(policy.max_queue_delay_ms.max(0.0) / 1e3);
    loop {
        // Drain every compatible queued job, oldest first.
        let mut i = 0;
        while i < state.queue.len() && members.len() < policy.max_batch {
            let compatible = {
                let j = &state.queue[i];
                j.key.gpu == gpu && merge_class(&j.key.config).as_ref() == Some(class)
            };
            if compatible {
                let job = state.queue.remove(i).expect("indexed job exists");
                state.executing.push((job.key.clone(), Vec::new()));
                inner.space_avail.notify_one();
                members.push(job);
            } else {
                i += 1;
            }
        }
        if members.len() >= policy.max_batch || state.shutdown {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Incompatible work may still be queued: hand the wake-up back
        // before parking so an idle worker (not this forming one) takes
        // it.
        if !state.queue.is_empty() {
            inner.work_avail.notify_one();
        }
        let (s, timeout) = inner
            .work_avail
            .wait_timeout(state, deadline - now)
            .expect("server state poisoned");
        state = s;
        if timeout.timed_out() {
            break;
        }
    }
    state.forming -= 1;
    members
}

/// Executes a formed batch (2+ members) as **one** merged Plan build +
/// profile and scatters per-member completions. The merged path skips
/// the pipeline LRU (each member is a distinct key whose merged entry
/// would not be reusable solo) and the fault-injection machinery — it
/// is the healthy fast path; the plan-template cache still serves
/// repeat batch shapes. A panic anywhere in the build is caught and
/// delivered as error completions, so the worker survives.
fn run_merged_batch(inner: &Inner, jobs: Vec<Job>, scratch: &mut WorkerScratch) {
    let dispatched = Instant::now();
    let configs: Vec<RunConfig> = jobs.iter().map(|j| j.key.config.clone()).collect();
    let head = jobs[0].key.clone();
    let built = catch_unwind(AssertUnwindSafe(|| {
        let graph = Arc::new(head.config.load_graph());
        let (run, parts) =
            PipelineRun::build_merged_with_templates(&graph, &configs, &inner.templates, scratch)
                .map_err(|e| e.to_string())?;
        let profiler = head.gpu.profiler(&inner.cfg.opts, head.config.dataset);
        let profile = Arc::new(run.profile(profiler.as_ref()));
        Ok((run.peak_device_bytes, profile, parts))
    }));
    let outcome = match built {
        Ok(res) => res,
        Err(_payload) => {
            let mut state = inner.state.lock().expect("server state poisoned");
            state.crashed += 1;
            state.respawns += 1;
            Err("worker crashed during merged batch build".to_string())
        }
    };
    let finished = Instant::now();
    let service_ms = ms_between(dispatched, finished);
    // Node-share attribution: each member's service share is its own
    // subgraph's node fraction of the merged execution (error batches
    // fall back to the shared wall time).
    let shares: Vec<f64> = match &outcome {
        Ok((_, _, parts)) => {
            let total: usize = parts.iter().map(|p| p.nodes).sum();
            parts
                .iter()
                .map(|p| service_ms * p.nodes as f64 / total.max(1) as f64)
                .collect()
        }
        Err(_) => vec![service_ms; jobs.len()],
    };
    // Retire every member's executing slot (collecting coalescers that
    // attached during execution) and roll the batch into the counters
    // under one lock.
    let late: Vec<Vec<Waiter>> = {
        let mut state = inner.state.lock().expect("server state poisoned");
        state.batches += 1;
        state.batched_requests += jobs.len() as u64;
        if let Ok((peak, _, _)) = &outcome {
            state.peak_device_bytes = state.peak_device_bytes.max(*peak);
        }
        let late: Vec<Vec<Waiter>> = jobs
            .iter()
            .map(|job| {
                let i = state
                    .executing
                    .iter()
                    .position(|(k, _)| *k == job.key)
                    .expect("executing entry registered at dispatch");
                state.executing.swap_remove(i).1
            })
            .collect();
        state.completed += jobs
            .iter()
            .zip(&late)
            .map(|(j, l)| (j.waiters.len() + l.len()) as u64)
            .sum::<u64>();
        late
    };
    let batch = jobs.len() as u32;
    for (i, (job, late_waiters)) in jobs.into_iter().zip(late).enumerate() {
        let member_outcome: Result<Arc<PipelineProfile>, String> = match &outcome {
            Ok((_, profile, _)) => Ok(Arc::clone(profile)),
            Err(msg) => Err(msg.clone()),
        };
        for (n, waiter) in job.waiters.into_iter().chain(late_waiters).enumerate() {
            let completion = Completion {
                id: waiter.id,
                request: job.key.clone(),
                outcome: member_outcome.clone(),
                cache: if n == 0 {
                    CacheDisposition::Miss
                } else {
                    CacheDisposition::Coalesced
                },
                reject: None,
                degraded: false,
                retries: 0,
                batch,
                queue_ms: ms_between(waiter.submitted, dispatched).max(0.0),
                service_ms: shares[i],
                latency_ms: ms_between(waiter.submitted, finished).max(0.0),
            };
            let _ = waiter.tx.send(completion);
        }
    }
}

fn worker_loop(inner: &Inner) {
    // Per-worker reusable compile arena: steady-state builds recycle the
    // schedule allocator and liveness buckets instead of reallocating.
    // Safe across caught panics — every build resets the scratch before
    // use, so a crash-interrupted attempt cannot poison the next one.
    let mut scratch = WorkerScratch::new();
    loop {
        // Wait for a job (or drain-and-exit on shutdown).
        let job = {
            let mut state = inner.state.lock().expect("server state poisoned");
            let head = loop {
                if let Some(job) = state.queue.pop_front() {
                    state.executing.push((job.key.clone(), Vec::new()));
                    inner.space_avail.notify_one();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_avail.wait(state).expect("server state poisoned");
            };
            // Cross-request batching: a mergeable head holds a forming
            // window open for compatible company; everything else takes
            // the historical solo path untouched.
            let formable = inner
                .cfg
                .batch
                .filter(|p| p.max_batch >= 2)
                .and_then(|p| merge_class(&head.key.config).map(|class| (p, class)));
            if let Some((policy, class)) = formable {
                let members = form_batch(inner, state, head, policy, &class);
                if members.len() >= 2 {
                    run_merged_batch(inner, members, &mut scratch);
                    continue;
                }
                members.into_iter().next().expect("former returns the head")
            } else {
                head
            }
        };
        let dispatched = Instant::now();
        let res = &inner.cfg.resilience;
        // The deadline budget and fault stream anchor on the *first*
        // submitter: coalesced waiters share its execution wholesale.
        let anchor = job.waiters[0].submitted;
        let request_index = job.waiters[0].id;
        let deadline_ms = job.key.deadline_ms.or(res.deadline_ms);
        let plan = crate::fault::plan_for(inner.cfg.fault, job.key.fault_seed);
        let expired = |at: Instant| deadline_ms.is_some_and(|d| ms_between(anchor, at) >= d);

        let mut attempt: u32 = 0;
        let mut retries_used: u32 = 0;
        let mut reject: Option<RejectReason> = None;
        let mut success: Option<AttemptSuccess> = None;
        let mut error_msg: Option<String> = None;

        loop {
            // Deadline checkpoint before (each) dispatch: a request that
            // aged out in the queue, or between retries, fails without
            // doing the work.
            if expired(Instant::now()) {
                reject = Some(RejectReason::DeadlineExceeded);
                error_msg = Some("deadline exceeded".to_string());
                break;
            }
            let draw = plan.map_or_else(FaultDraw::healthy, |p| p.draw(request_index, attempt));
            if draw.evict > 0 {
                // Injected eviction storm: poison the LRU tails before the
                // attempt's cache lookup.
                inner.cache.evict_lru(draw.evict);
            }
            let pressured =
                deadline_ms.is_some_and(|d| ms_between(anchor, Instant::now()) > 0.5 * d);

            // The supervisor: one attempt, crash-isolated. A panic (an
            // injected crash or a real bug) unwinds to here; the worker
            // thread survives and is logically respawned.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_attempt(inner, &job.key, &draw, pressured, &mut scratch, &mut || {
                    expired(Instant::now())
                })
            }));
            let result = match caught {
                Ok(r) => r,
                Err(_payload) => {
                    let mut state = inner.state.lock().expect("server state poisoned");
                    state.crashed += 1;
                    state.respawns += 1;
                    Err(AttemptError::Crash)
                }
            };

            // Feed the breaker every definitive attempt outcome (a
            // cancelled build says nothing about the config's health).
            if res.breaker.is_some() && !matches!(result, Err(AttemptError::Cancelled)) {
                let now_ms = ms_between(inner.epoch, Instant::now());
                let ok = result.is_ok();
                let mut state = inner.state.lock().expect("server state poisoned");
                if let Some((_, b)) = state.breakers.iter_mut().find(|(k, _)| *k == job.key) {
                    b.record(now_ms, ok);
                }
            }

            match result {
                Ok(s) => {
                    if expired(Instant::now()) {
                        // The work finished after the budget (e.g. an
                        // injected slowdown): the result is cached, but
                        // this request already missed its deadline.
                        reject = Some(RejectReason::DeadlineExceeded);
                        error_msg = Some("deadline exceeded".to_string());
                    } else {
                        success = Some(s);
                    }
                    break;
                }
                Err(AttemptError::Cancelled) => {
                    reject = Some(RejectReason::DeadlineExceeded);
                    error_msg = Some("deadline exceeded during build".to_string());
                    break;
                }
                Err(AttemptError::Permanent(msg)) => {
                    error_msg = Some(msg);
                    break;
                }
                Err(retryable) => {
                    if retries_used < res.retry.max_retries {
                        retries_used += 1;
                        {
                            let mut state = inner.state.lock().expect("server state poisoned");
                            state.retries += 1;
                        }
                        let jitter = plan.map_or(0.5, |p| p.jitter(request_index, attempt + 1));
                        let backoff_ms = res.retry.backoff_ms(retries_used, jitter);
                        std::thread::sleep(std::time::Duration::from_secs_f64(backoff_ms / 1e3));
                        attempt += 1;
                        continue;
                    }
                    match retryable {
                        AttemptError::Transient(msg) => error_msg = Some(msg),
                        AttemptError::Crash => {
                            reject = Some(RejectReason::Crashed);
                            error_msg = Some("worker crashed (injected fault)".to_string());
                        }
                        _ => unreachable!("permanent/cancelled handled above"),
                    }
                    break;
                }
            }
        }

        let finished = Instant::now();
        let service_ms = ms_between(dispatched, finished);
        let (outcome, disposition, degraded): (Result<Arc<PipelineProfile>, String>, _, bool) =
            match (&success, &error_msg) {
                (Some(s), _) => (Ok(Arc::clone(&s.profile)), s.cache, s.degraded || s.stale),
                (None, Some(msg)) => (Err(msg.clone()), CacheDisposition::Miss, false),
                (None, None) => unreachable!("every exit sets success or error"),
            };

        // Collect the waiters that coalesced during execution and deliver.
        let late_waiters = {
            let mut state = inner.state.lock().expect("server state poisoned");
            let i = state
                .executing
                .iter()
                .position(|(k, _)| *k == job.key)
                .expect("executing entry registered at dispatch");
            let (_, waiters) = state.executing.swap_remove(i);
            state.completed += (job.waiters.len() + waiters.len()) as u64;
            if let Some(s) = &success {
                state.peak_device_bytes = state.peak_device_bytes.max(s.peak_device_bytes);
                state.shard_peak_device_bytes =
                    state.shard_peak_device_bytes.max(s.shard_peak_device_bytes);
                if s.degraded {
                    state.degraded += 1;
                }
                if s.stale {
                    state.stale_serves += 1;
                }
            }
            if reject == Some(RejectReason::DeadlineExceeded) {
                state.timeouts += 1;
            }
            waiters
        };
        for (n, waiter) in job.waiters.into_iter().chain(late_waiters).enumerate() {
            let disposition = if n == 0 {
                disposition
            } else {
                CacheDisposition::Coalesced
            };
            let completion = Completion {
                id: waiter.id,
                request: job.key.clone(),
                outcome: outcome.clone(),
                cache: disposition,
                reject,
                degraded,
                retries: retries_used,
                batch: 1,
                queue_ms: ms_between(waiter.submitted, dispatched).max(0.0),
                service_ms,
                latency_ms: ms_between(waiter.submitted, finished).max(0.0),
            };
            // A submitter that dropped its receiver simply misses the
            // delivery; the server keeps running.
            let _ = waiter.tx.send(completion);
        }
    }
}

fn ms_between(from: Instant, to: Instant) -> f64 {
    to.saturating_duration_since(from).as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use gsuite_core::config::{CompModel, GnnModel};

    fn golden_request(line: &str) -> ServeRequest {
        ServeRequest::parse_line(line).expect("valid request line")
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = Server::start(ServeConfig::golden());
        let rx = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        let done = rx.recv().expect("completion arrives");
        let profile = done.outcome.expect("gcn-mp builds");
        assert!(!profile.kernels.is_empty());
        assert_eq!(done.cache, CacheDisposition::Miss);
        assert!(done.latency_ms >= done.service_ms);
        assert_eq!(done.reject, None);
        assert!(!done.degraded);
        assert_eq!(done.retries, 0);
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache.misses, 1);
        assert!(
            stats.peak_device_bytes > 0,
            "served pipeline reports its memory-schedule peak"
        );
        assert!(stats.to_line().contains("peak_device_bytes="));
        assert!(stats.to_line().ends_with(
            "tpl_hits=0 tpl_misses=1 tpl_instantiates=0 lock_waits=0 \
             batches=0 batched_requests=0 batch_shed=0"
        ));
        server.shutdown();
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let server = Server::start(ServeConfig::golden());
        let req = golden_request("model=gin dataset=cora scale=0.05");
        let first = server.submit(req.clone()).unwrap().recv().unwrap();
        let second = server.submit(req).unwrap().recv().unwrap();
        assert_eq!(first.cache, CacheDisposition::Miss);
        assert_eq!(second.cache, CacheDisposition::Hit);
        // Bit-identical profiles: same pipeline, same profiler.
        assert_eq!(first.outcome.unwrap(), second.outcome.unwrap());
        assert!(server.stats().cache.hit_rate() > 0.0);
        server.shutdown();
    }

    #[test]
    fn evicted_pipelines_rebuild_from_the_plan_template() {
        // A zero-byte cache rejects every pipeline insert, so each repeat
        // request misses the pipeline cache — but the second one finds
        // the plan template and serves an instantiated build that is
        // bit-identical to the first full compile.
        let server = Server::start(ServeConfig {
            cache_bytes: 0,
            ..ServeConfig::golden()
        });
        let req = golden_request("model=gcn dataset=cora scale=0.05");
        let first = server.submit(req.clone()).unwrap().recv().unwrap();
        let second = server.submit(req).unwrap().recv().unwrap();
        assert_eq!(first.cache, CacheDisposition::Miss);
        assert_eq!(second.cache, CacheDisposition::Miss);
        assert_eq!(
            first.outcome.unwrap(),
            second.outcome.unwrap(),
            "instantiated build profiles bit-identically to the full compile"
        );
        let stats = server.stats();
        assert_eq!(stats.tpl_misses, 1, "first request sees no template");
        assert_eq!(stats.tpl_hits, 1, "second request finds the template");
        assert_eq!(stats.tpl_instantiates, 1);
        assert_eq!(stats.cache.rejected, 2, "pipeline cache rejects both");
        server.shutdown();
    }

    #[test]
    fn sharded_requests_report_their_per_shard_peak() {
        let server = Server::start(ServeConfig::golden());
        let done = server
            .submit(golden_request(
                "model=gcn dataset=cora scale=0.05 shards=2 partitioner=range",
            ))
            .unwrap()
            .recv()
            .unwrap();
        let profile = done.outcome.expect("sharded gcn-mp builds");
        let sharding = profile.sharding.as_ref().expect("sharded profile");
        assert_eq!(sharding.shards.len(), 2);
        let stats = server.stats();
        assert!(stats.shard_peak_device_bytes > 0);
        assert_eq!(
            stats.shard_peak_device_bytes,
            sharding.max_shard_peak_bytes()
        );
        assert!(stats.to_line().contains("shard_peak_device_bytes="));
        server.shutdown();
    }

    #[test]
    fn unsupported_combination_is_an_error_response() {
        let server = Server::start(ServeConfig::golden());
        let req = ServeRequest::parse_line("model=sage comp=spmm dataset=cora scale=0.05").unwrap();
        assert_eq!(req.config.model, GnnModel::Sage);
        assert_eq!(req.config.comp, CompModel::Spmm);
        let done = server.submit(req).unwrap().recv().unwrap();
        assert!(done.outcome.is_err());
        assert!(done.to_line().starts_with("err id=0"));
        assert_eq!(done.reject, None, "a build error is not a typed reject");
        server.shutdown();
    }

    #[test]
    fn stats_line_round_trips_with_locked_key_order() {
        let stats = ServerStats {
            workers: 3,
            queue_depth: 2,
            submitted: 40,
            completed: 37,
            coalesced: 5,
            rejected: 1,
            peak_device_bytes: 123_456,
            shard_peak_device_bytes: 7_890,
            retries: 4,
            timeouts: 2,
            breaker_trips: 1,
            breaker_shed: 3,
            degraded: 2,
            stale_serves: 1,
            crashed: 2,
            respawns: 2,
            tpl_hits: 11,
            tpl_misses: 6,
            tpl_instantiates: 9,
            lock_waits: 4,
            batches: 5,
            batched_requests: 12,
            batch_shed: 1,
            cache: LruStats {
                hits: 20,
                misses: 17,
                insertions: 16,
                evictions: 3,
                rejected: 1,
                bytes_in_use: 9999,
                capacity_bytes: 1 << 20,
                entries: 13,
            },
        };
        let line = stats.to_line();
        // The wire key order is locked: exactly LINE_KEYS, in order.
        let keys: Vec<&str> = line
            .split_whitespace()
            .skip(1)
            .map(|tok| tok.split('=').next().unwrap())
            .collect();
        assert_eq!(keys, ServerStats::LINE_KEYS);
        // Exact round trip through the documented format.
        let parsed = ServerStats::parse_line(&line).expect("stats line parses");
        assert_eq!(parsed, stats);
        assert_eq!(parsed.to_line(), line);
        // Non-stats lines do not parse.
        assert_eq!(ServerStats::parse_line("ok id=0 cache=miss"), None);
    }

    #[test]
    fn stats_metrics_expose_counters_and_gauges() {
        let server = Server::start(ServeConfig::golden());
        let rx = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        rx.recv().expect("completion arrives");
        let text = server.stats().metrics().render();
        assert!(text.contains("# TYPE gsuite_serve_completed_total counter"));
        assert!(text.contains("gsuite_serve_completed_total 1"));
        assert!(text.contains("gsuite_cache_misses_total 1"));
        assert!(text.contains("# TYPE gsuite_serve_queue_depth gauge"));
        assert!(text.ends_with("# EOF\n"));
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let server = Server::start(ServeConfig::golden());
        {
            let mut state = server.inner.state.lock().unwrap();
            state.shutdown = true;
        }
        let err = server
            .submit(golden_request("model=gcn scale=0.05"))
            .unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }

    #[test]
    fn response_lines_are_wire_parsable() {
        let server = Server::start(ServeConfig::golden());
        let rx = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        let line = rx.recv().unwrap().to_line();
        assert!(line.starts_with("ok id=0 cache=miss "));
        for field in [
            "queue_ms=",
            "service_ms=",
            "latency_ms=",
            "device_ms=",
            "e2e_ms=",
            "kernels=",
        ] {
            assert!(line.contains(field), "{line}");
        }
        // Fault-free lines never grow resilience keys.
        for absent in ["code=", "degraded=", "retries="] {
            assert!(!line.contains(absent), "{line}");
        }
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out_without_executing() {
        let server = Server::start(ServeConfig::golden());
        let done = server
            .submit(golden_request(
                "model=gcn dataset=cora scale=0.05 deadline_ms=0.000001",
            ))
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(done.reject, Some(RejectReason::DeadlineExceeded));
        assert!(done.outcome.is_err());
        assert!(done.to_line().contains("code=deadline-exceeded"));
        let stats = server.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.cache.misses, 0, "timed-out request never built");
        server.shutdown();
    }

    #[test]
    fn injected_crashes_are_supervised_and_respawned() {
        let crash_plan = FaultPlan {
            seed: 1,
            spec: FaultSpec {
                crash_rate: 1.0,
                ..FaultSpec::none()
            },
        };
        // No retries: every request crashes once and fails typed.
        let server = Server::start(ServeConfig {
            fault: Some(crash_plan),
            ..ServeConfig::golden()
        });
        let n = 3;
        // Distinct scales so the requests never coalesce: one panic each.
        let rxs: Vec<_> = (0..n)
            .map(|i| {
                let line = format!("model=gcn dataset=cora scale=0.0{}", 5 + i);
                server.submit(golden_request(&line)).unwrap()
            })
            .collect();
        for rx in rxs {
            let done = rx.recv().expect("crashed requests still complete");
            assert_eq!(done.reject, Some(RejectReason::Crashed));
            assert!(done.to_line().contains("code=crashed"));
        }
        let stats = server.stats();
        assert_eq!(stats.crashed, n as u64, "every injected panic is counted");
        assert_eq!(stats.respawns, n as u64, "one respawn per crash");
        assert_eq!(stats.completed, n as u64, "no request lost or hung");
        // The worker pool survived: a fault-free request still... would
        // crash under this plan, but submission and delivery both work.
        server.shutdown();
    }

    #[test]
    fn transient_faults_exhaust_retries_with_backoff() {
        let plan = FaultPlan {
            seed: 2,
            spec: FaultSpec {
                transient_rate: 1.0,
                ..FaultSpec::none()
            },
        };
        let server = Server::start(ServeConfig {
            fault: Some(plan),
            resilience: ResilienceConfig {
                retry: crate::fault::RetryPolicy {
                    max_retries: 2,
                    base_ms: 0.1,
                    cap_ms: 0.5,
                },
                ..ResilienceConfig::default()
            },
            ..ServeConfig::golden()
        });
        let done = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap()
            .recv()
            .unwrap();
        assert!(done.outcome.is_err());
        assert_eq!(done.retries, 2, "both retries consumed");
        assert!(done.to_line().contains("retries=2"));
        assert_eq!(server.stats().retries, 2);
        server.shutdown();
    }

    #[test]
    fn compatible_requests_merge_into_one_batch() {
        let server = Server::start(ServeConfig {
            workers: 1,
            batch: Some(BatchPolicy {
                max_batch: 2,
                max_queue_delay_ms: 5_000.0,
                max_backlog: 0,
            }),
            ..ServeConfig::golden()
        });
        // Same dataset + scale + opt + framework: one full-graph merge
        // class, two different models — merged block-diagonally.
        let a = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        let b = server
            .submit(golden_request("model=gin dataset=cora scale=0.05"))
            .unwrap();
        let da = a.recv().expect("first member completes");
        let db = b.recv().expect("second member completes");
        for d in [&da, &db] {
            assert_eq!(d.batch, 2);
            assert!(d.to_line().contains(" batch=2"), "{}", d.to_line());
            assert!(d.outcome.is_ok());
            assert_eq!(d.cache, CacheDisposition::Miss);
            assert!(d.service_ms > 0.0, "node-share attribution is non-zero");
            assert!(d.latency_ms >= d.service_ms);
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 1, "one merged execution for both");
        assert_eq!(stats.batched_requests, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.batch_shed, 0);
        assert!(stats.peak_device_bytes > 0);
        assert!(stats.to_line().contains("batches=1 batched_requests=2"));
        server.shutdown();
    }

    #[test]
    fn batch_backlog_sheds_mergeable_submissions_only() {
        let server = Server::start(ServeConfig {
            workers: 1,
            batch: Some(BatchPolicy {
                max_batch: 8,
                max_queue_delay_ms: 400.0,
                max_backlog: 1,
            }),
            ..ServeConfig::golden()
        });
        let rx = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        // Let the worker open its forming window.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let err = server
            .submit(golden_request("model=gin dataset=cora scale=0.05"))
            .unwrap_err();
        assert_eq!(err, SubmitError::BatchBacklog);
        assert_eq!(err.reject_reason(), Some(RejectReason::BatchBacklog));
        // Unmergeable requests (sharded multi-GPU) bypass the former and
        // its admission control entirely.
        let solo = server
            .submit(golden_request(
                "model=gcn dataset=cora scale=0.05 shards=2 partitioner=range",
            ))
            .unwrap();
        let head = rx.recv().expect("head completes");
        assert_eq!(head.batch, 1, "a lonely window closes into the solo path");
        assert!(!head.to_line().contains("batch="), "{}", head.to_line());
        assert!(solo.recv().unwrap().outcome.is_ok());
        let stats = server.stats();
        assert_eq!(stats.batch_shed, 1);
        assert_eq!(stats.batches, 0, "singleton dispatches are not batches");
        assert_eq!(stats.batched_requests, 0);
        server.shutdown();
    }

    #[test]
    fn breaker_opens_on_persistent_errors_and_sheds_submissions() {
        let server = Server::start(ServeConfig {
            resilience: ResilienceConfig {
                breaker: Some(crate::fault::BreakerConfig {
                    window: 2,
                    min_samples: 2,
                    fail_threshold: 0.5,
                    cooldown_ms: 60_000.0,
                    half_open_probes: 1,
                }),
                ..ResilienceConfig::default()
            },
            ..ServeConfig::golden()
        });
        let bad = "model=sage comp=spmm dataset=cora scale=0.05";
        for _ in 0..2 {
            let done = server.submit(golden_request(bad)).unwrap().recv().unwrap();
            assert!(done.outcome.is_err());
        }
        let err = server.submit(golden_request(bad)).unwrap_err();
        assert_eq!(err, SubmitError::CircuitOpen);
        assert_eq!(err.reject_reason(), Some(RejectReason::CircuitOpen));
        let stats = server.stats();
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_shed, 1);
        // A healthy config is unaffected: breakers are per-config.
        let ok = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap()
            .recv()
            .unwrap();
        assert!(ok.outcome.is_ok());
        server.shutdown();
    }
}
