//! The long-running inference-benchmark service: a worker pool draining a
//! bounded FIFO request queue, a shared byte-accounted LRU cache of built
//! graphs + pipelines, and request coalescing (identical in-flight
//! configurations share one profile run).
//!
//! Execution of one request mirrors the batch scenario runner exactly —
//! `Dataset::load_scaled`, `PipelineRun::build`, then
//! `GpuSpec::profiler(opts, dataset)` and `PipelineRun::profile` — so a
//! served profile is **bit-identical** to the same configuration's cell in
//! [`gsuite_scenarios::run_scenario`] (a property the workspace
//! determinism suite locks in). What serving adds around that execution is
//! the traffic layer: queueing, backpressure, caching and per-request
//! timing.
//!
//! # Example
//!
//! ```
//! use gsuite_serve::{ServeConfig, ServeRequest, Server};
//!
//! let server = Server::start(ServeConfig::golden());
//! let rx = server.submit(ServeRequest::parse_line("model=gcn scale=0.05").unwrap()).unwrap();
//! let done = rx.recv().unwrap();
//! assert!(done.outcome.unwrap().total_time_ms() > 0.0);
//! server.shutdown();
//! ```

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gsuite_core::pipeline::PipelineRun;
use gsuite_core::CoreError;
use gsuite_graph::Graph;
use gsuite_profile::PipelineProfile;
use gsuite_scenarios::BenchOpts;

use crate::cache::{ByteLru, LruStats};
use crate::request::{CacheDisposition, ServeRequest};

/// A cached execution unit: the loaded graph and the built pipeline.
pub type CachedPipeline = (Arc<Graph>, Arc<PipelineRun>);

/// The cost model of one cache entry: feature matrix + COO topology + CSR
/// index of the graph, plus the pipeline's output buffer and a fixed
/// per-launch overhead for workload descriptors. Deliberately a *model*
/// (exact heap sizes are an implementation detail of the substrate
/// crates), but a deterministic, monotone one: bigger graphs and deeper
/// pipelines account more bytes.
pub fn entry_bytes(graph: &Graph, run: &PipelineRun) -> u64 {
    let s = graph.stats();
    let graph_bytes = s.nodes * (s.feature_len * 4 + 8) + s.edges * 8;
    let pipeline_bytes = run.output.len() * 4 + run.launches.len() * 512;
    (graph_bytes + pipeline_bytes) as u64
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth; a full queue blocks [`Server::submit`] and
    /// rejects [`Server::try_submit`].
    pub queue_cap: usize,
    /// LRU cache capacity in bytes.
    pub cache_bytes: u64,
    /// Measurement options shared by every request (scale policy, CTA
    /// caps) — the same knobs the batch scenario runner takes.
    pub opts: BenchOpts,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            cache_bytes: 256 << 20,
            opts: BenchOpts::quick(),
        }
    }
}

impl ServeConfig {
    /// A test-sized config: golden measurement mode (quick scales, 32-CTA
    /// cap) with a small worker pool.
    pub fn golden() -> Self {
        ServeConfig {
            workers: 2,
            opts: BenchOpts::golden(),
            ..ServeConfig::default()
        }
    }
}

/// One finished request as delivered to its submitter.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Submission id (monotone per server).
    pub id: u64,
    /// The request this answers.
    pub request: ServeRequest,
    /// The profile, or the build error (e.g. an unsupported
    /// model/computational-model combination).
    pub outcome: Result<Arc<PipelineProfile>, String>,
    /// How the cache satisfied the request.
    pub cache: CacheDisposition,
    /// Wall milliseconds spent queued before dispatch.
    pub queue_ms: f64,
    /// Wall milliseconds of (possibly shared) build + profile work.
    pub service_ms: f64,
    /// Wall milliseconds from submission to completion.
    pub latency_ms: f64,
}

impl Completion {
    /// Renders the wire-format response line.
    pub fn to_line(&self) -> String {
        match &self.outcome {
            Ok(profile) => format!(
                "ok id={} cache={} queue_ms={:.4} service_ms={:.4} latency_ms={:.4} device_ms={:.4} e2e_ms={:.4} kernels={}",
                self.id,
                self.cache,
                self.queue_ms,
                self.service_ms,
                self.latency_ms,
                profile.device_time_ms(),
                profile.total_time_ms(),
                profile.kernels.len(),
            ),
            Err(msg) => format!(
                "err id={} cache={} latency_ms={:.4} msg={:?}",
                self.id, self.cache, self.latency_ms, msg
            ),
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full ([`Server::try_submit`] only; counted as shed
    /// load in [`ServerStats::rejected`]).
    Busy,
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::Busy => "queue full",
            SubmitError::ShuttingDown => "server shutting down",
        })
    }
}

/// A counter snapshot of the running service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Worker-pool size.
    pub workers: usize,
    /// Requests currently queued (excluding executing ones).
    pub queue_depth: usize,
    /// Accepted submissions (including coalesced ones).
    pub submitted: u64,
    /// Delivered completions.
    pub completed: u64,
    /// Submissions that attached to an in-flight identical request.
    pub coalesced: u64,
    /// `try_submit` calls shed due to a full queue.
    pub rejected: u64,
    /// Largest peak-device-bytes footprint of any pipeline served so far
    /// (each pipeline's memory schedule reports its own peak; see
    /// `gsuite_profile::PipelineProfile::peak_device_bytes`).
    pub peak_device_bytes: u64,
    /// Largest *per-shard* device-bytes peak among sharded (multi-GPU)
    /// pipelines served so far — the memory one device of the modeled
    /// cluster must provision. `0` until a `shards>1` request runs.
    pub shard_peak_device_bytes: u64,
    /// Cache counters.
    pub cache: LruStats,
}

impl ServerStats {
    /// Renders the wire-format `stats` response line.
    pub fn to_line(&self) -> String {
        format!(
            "stats workers={} queue={} submitted={} completed={} coalesced={} rejected={} \
             cache_hits={} cache_misses={} cache_insertions={} cache_evictions={} \
             cache_rejected={} cache_bytes={} cache_capacity={} cache_entries={} \
             peak_device_bytes={} shard_peak_device_bytes={}",
            self.workers,
            self.queue_depth,
            self.submitted,
            self.completed,
            self.coalesced,
            self.rejected,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.rejected,
            self.cache.bytes_in_use,
            self.cache.capacity_bytes,
            self.cache.entries,
            self.peak_device_bytes,
            self.shard_peak_device_bytes,
        )
    }
}

struct Waiter {
    id: u64,
    submitted: Instant,
    tx: mpsc::Sender<Completion>,
}

struct Job {
    key: ServeRequest,
    /// The original submitter plus any identical submissions coalesced
    /// while this job sat in the queue.
    waiters: Vec<Waiter>,
}

struct State {
    queue: VecDeque<Job>,
    /// Keys currently executing on a worker; identical submissions attach
    /// their waiter here.
    executing: Vec<(ServeRequest, Vec<Waiter>)>,
    cache: ByteLru<ServeRequest, CachedPipeline>,
    next_id: u64,
    submitted: u64,
    completed: u64,
    coalesced: u64,
    rejected: u64,
    peak_device_bytes: u64,
    shard_peak_device_bytes: u64,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    work_avail: Condvar,
    space_avail: Condvar,
}

/// The running service. Dropping the handle is equivalent to
/// [`Server::shutdown`]: the queue drains (pending submitters still get
/// their completions) and the workers are joined.
pub struct Server {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool and returns the service handle.
    pub fn start(cfg: ServeConfig) -> Server {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                executing: Vec::new(),
                cache: ByteLru::new(cfg.cache_bytes),
                next_id: 0,
                submitted: 0,
                completed: 0,
                coalesced: 0,
                rejected: 0,
                peak_device_bytes: 0,
                shard_peak_device_bytes: 0,
                shutdown: false,
            }),
            work_avail: Condvar::new(),
            space_avail: Condvar::new(),
            cfg,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Server { inner, handles }
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// Submits a request, **blocking** while the queue is full — the
    /// backpressure path closed-loop clients ride on. Returns the channel
    /// the [`Completion`] arrives on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, req: ServeRequest) -> Result<mpsc::Receiver<Completion>, SubmitError> {
        self.submit_inner(req, true)
    }

    /// Non-blocking submission: a full queue sheds the request instead of
    /// waiting — the open-loop overload path.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue is full,
    /// [`SubmitError::ShuttingDown`] during shutdown.
    pub fn try_submit(&self, req: ServeRequest) -> Result<mpsc::Receiver<Completion>, SubmitError> {
        self.submit_inner(req, false)
    }

    fn submit_inner(
        &self,
        req: ServeRequest,
        block: bool,
    ) -> Result<mpsc::Receiver<Completion>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let mut state = self.inner.state.lock().expect("server state poisoned");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = state.next_id;
        state.next_id += 1;
        let waiter = Waiter {
            id,
            submitted: Instant::now(),
            tx,
        };

        loop {
            // Coalesce onto an identical executing or queued request: the
            // waiter shares that execution's profile run. Re-checked after
            // every full-queue wait — while this submitter was blocked,
            // another may have enqueued the same key, and pushing a second
            // job would break the one-execution-per-key invariant the
            // cache-build path relies on.
            if let Some((_, waiters)) = state.executing.iter_mut().find(|(k, _)| *k == req) {
                waiters.push(waiter);
                state.submitted += 1;
                state.coalesced += 1;
                return Ok(rx);
            }
            if let Some(job) = state.queue.iter_mut().find(|j| j.key == req) {
                job.waiters.push(waiter);
                state.submitted += 1;
                state.coalesced += 1;
                return Ok(rx);
            }
            if state.queue.len() < self.inner.cfg.queue_cap.max(1) {
                break;
            }
            if !block {
                state.rejected += 1;
                return Err(SubmitError::Busy);
            }
            state = self
                .inner
                .space_avail
                .wait(state)
                .expect("server state poisoned");
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
        }
        state.submitted += 1;
        state.queue.push_back(Job {
            key: req,
            waiters: vec![waiter],
        });
        drop(state);
        self.inner.work_avail.notify_one();
        Ok(rx)
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let state = self.inner.state.lock().expect("server state poisoned");
        ServerStats {
            workers: self.handles.len(),
            queue_depth: state.queue.len(),
            submitted: state.submitted,
            completed: state.completed,
            coalesced: state.coalesced,
            rejected: state.rejected,
            peak_device_bytes: state.peak_device_bytes,
            shard_peak_device_bytes: state.shard_peak_device_bytes,
            cache: state.cache.stats(),
        }
    }

    /// Stops accepting work, drains the queue and joins the workers.
    /// Queued requests still receive their completions.
    pub fn shutdown(self) {
        // Drop does the work; the method exists to make the stop explicit.
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("server state poisoned");
            state.shutdown = true;
        }
        self.inner.work_avail.notify_all();
        self.inner.space_avail.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    /// Dropping the handle stops the service: without this, workers whose
    /// queue has drained would park in `work_avail.wait()` forever,
    /// leaking the threads and the shared state.
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Builds graph + pipeline for `req` — the expensive miss path, run
/// outside the state lock.
fn build_pipeline(req: &ServeRequest) -> Result<CachedPipeline, String> {
    let graph = Arc::new(req.config.load_graph());
    match PipelineRun::build(&graph, &req.config) {
        Ok(run) => Ok((graph, Arc::new(run))),
        // The suite's known boundary (e.g. gSuite SAGE under SpMM) and any
        // other build failure both surface as error responses; a serving
        // process must not crash on a bad request.
        Err(e @ CoreError::UnsupportedCombination { .. }) => Err(e.to_string()),
        Err(e) => Err(format!("cannot build {}: {e}", req.config.label())),
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Wait for a job (or drain-and-exit on shutdown).
        let job = {
            let mut state = inner.state.lock().expect("server state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.executing.push((job.key.clone(), Vec::new()));
                    inner.space_avail.notify_one();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_avail.wait(state).expect("server state poisoned");
            }
        };
        let dispatched = Instant::now();

        // Cache lookup under the lock; the expensive build outside it.
        // Coalescing guarantees one execution per key at a time, so two
        // workers never race to build the same entry.
        let cached = {
            let mut state = inner.state.lock().expect("server state poisoned");
            state.cache.get(&job.key).cloned()
        };
        let (disposition, built) = match cached {
            Some(hit) => (CacheDisposition::Hit, Ok(hit)),
            None => {
                let built = build_pipeline(&job.key);
                if let Ok((graph, run)) = &built {
                    let bytes = entry_bytes(graph, run);
                    let mut state = inner.state.lock().expect("server state poisoned");
                    state.cache.insert(
                        job.key.clone(),
                        (Arc::clone(graph), Arc::clone(run)),
                        bytes,
                    );
                }
                (CacheDisposition::Miss, built)
            }
        };

        let peak_device_bytes = built
            .as_ref()
            .ok()
            .map(|(_, run)| run.peak_device_bytes)
            .unwrap_or(0);
        // For sharded pipelines, the per-shard high-water mark (what one
        // device of the modeled cluster provisions) feeds its own stat.
        let shard_peak_device_bytes = built
            .as_ref()
            .ok()
            .and_then(|(_, run)| run.sharding.as_ref())
            .map(|s| s.max_shard_peak_bytes())
            .unwrap_or(0);
        let outcome: Result<Arc<PipelineProfile>, String> = built.map(|(_, run)| {
            let profiler = job
                .key
                .gpu
                .profiler(&inner.cfg.opts, job.key.config.dataset);
            Arc::new(run.profile(profiler.as_ref()))
        });
        let finished = Instant::now();
        let service_ms = ms_between(dispatched, finished);

        // Collect the waiters that coalesced during execution and deliver.
        let late_waiters = {
            let mut state = inner.state.lock().expect("server state poisoned");
            let i = state
                .executing
                .iter()
                .position(|(k, _)| *k == job.key)
                .expect("executing entry registered at dispatch");
            let (_, waiters) = state.executing.swap_remove(i);
            state.completed += (job.waiters.len() + waiters.len()) as u64;
            state.peak_device_bytes = state.peak_device_bytes.max(peak_device_bytes);
            state.shard_peak_device_bytes =
                state.shard_peak_device_bytes.max(shard_peak_device_bytes);
            waiters
        };
        for (n, waiter) in job.waiters.into_iter().chain(late_waiters).enumerate() {
            let disposition = if n == 0 {
                disposition
            } else {
                CacheDisposition::Coalesced
            };
            let completion = Completion {
                id: waiter.id,
                request: job.key.clone(),
                outcome: outcome.clone(),
                cache: disposition,
                queue_ms: ms_between(waiter.submitted, dispatched).max(0.0),
                service_ms,
                latency_ms: ms_between(waiter.submitted, finished).max(0.0),
            };
            // A submitter that dropped its receiver simply misses the
            // delivery; the server keeps running.
            let _ = waiter.tx.send(completion);
        }
    }
}

fn ms_between(from: Instant, to: Instant) -> f64 {
    to.saturating_duration_since(from).as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_core::config::{CompModel, GnnModel};

    fn golden_request(line: &str) -> ServeRequest {
        ServeRequest::parse_line(line).expect("valid request line")
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = Server::start(ServeConfig::golden());
        let rx = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        let done = rx.recv().expect("completion arrives");
        let profile = done.outcome.expect("gcn-mp builds");
        assert!(!profile.kernels.is_empty());
        assert_eq!(done.cache, CacheDisposition::Miss);
        assert!(done.latency_ms >= done.service_ms);
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache.misses, 1);
        assert!(
            stats.peak_device_bytes > 0,
            "served pipeline reports its memory-schedule peak"
        );
        assert!(stats.to_line().contains("peak_device_bytes="));
        server.shutdown();
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let server = Server::start(ServeConfig::golden());
        let req = golden_request("model=gin dataset=cora scale=0.05");
        let first = server.submit(req.clone()).unwrap().recv().unwrap();
        let second = server.submit(req).unwrap().recv().unwrap();
        assert_eq!(first.cache, CacheDisposition::Miss);
        assert_eq!(second.cache, CacheDisposition::Hit);
        // Bit-identical profiles: same pipeline, same profiler.
        assert_eq!(first.outcome.unwrap(), second.outcome.unwrap());
        assert!(server.stats().cache.hit_rate() > 0.0);
        server.shutdown();
    }

    #[test]
    fn sharded_requests_report_their_per_shard_peak() {
        let server = Server::start(ServeConfig::golden());
        let done = server
            .submit(golden_request(
                "model=gcn dataset=cora scale=0.05 shards=2 partitioner=range",
            ))
            .unwrap()
            .recv()
            .unwrap();
        let profile = done.outcome.expect("sharded gcn-mp builds");
        let sharding = profile.sharding.as_ref().expect("sharded profile");
        assert_eq!(sharding.shards.len(), 2);
        let stats = server.stats();
        assert!(stats.shard_peak_device_bytes > 0);
        assert_eq!(
            stats.shard_peak_device_bytes,
            sharding.max_shard_peak_bytes()
        );
        assert!(stats.to_line().contains("shard_peak_device_bytes="));
        server.shutdown();
    }

    #[test]
    fn unsupported_combination_is_an_error_response() {
        let server = Server::start(ServeConfig::golden());
        let req = ServeRequest::parse_line("model=sage comp=spmm dataset=cora scale=0.05").unwrap();
        assert_eq!(req.config.model, GnnModel::Sage);
        assert_eq!(req.config.comp, CompModel::Spmm);
        let done = server.submit(req).unwrap().recv().unwrap();
        assert!(done.outcome.is_err());
        assert!(done.to_line().starts_with("err id=0"));
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let server = Server::start(ServeConfig::golden());
        {
            let mut state = server.inner.state.lock().unwrap();
            state.shutdown = true;
        }
        let err = server
            .submit(golden_request("model=gcn scale=0.05"))
            .unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }

    #[test]
    fn response_lines_are_wire_parsable() {
        let server = Server::start(ServeConfig::golden());
        let rx = server
            .submit(golden_request("model=gcn dataset=cora scale=0.05"))
            .unwrap();
        let line = rx.recv().unwrap().to_line();
        assert!(line.starts_with("ok id=0 cache=miss "));
        for field in [
            "queue_ms=",
            "service_ms=",
            "latency_ms=",
            "device_ms=",
            "e2e_ms=",
            "kernels=",
        ] {
            assert!(line.contains(field), "{line}");
        }
        server.shutdown();
    }
}
