//! The simulated-clock execution model of the load generator: a
//! deterministic discrete-event simulation of the serving layer — FIFO
//! bounded queue, `W` workers, the byte-accounted LRU cache and request
//! coalescing — over *modeled* service times (the profiled pipeline's own
//! end-to-end milliseconds plus a modeled build cost on cache misses).
//!
//! Everything here is pure `f64` arithmetic over a fixed iteration order:
//! the same request stream always yields the same per-request latencies,
//! the same hit/miss counters and the same eviction sequence, regardless
//! of host, core count or wall time — the property that makes
//! `gsuite-cli loadgen --clock sim` a *reproducible* benchmark rather
//! than a measurement of the load generator's machine.

use crate::cache::{ByteLru, LruStats};
use crate::request::CacheDisposition;

/// The modeled execution costs of one distinct request configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCosts {
    /// Modeled inference milliseconds (the profile's end-to-end time).
    pub service_ms: f64,
    /// Modeled graph-load + pipeline-build milliseconds paid on a cache
    /// miss.
    pub build_ms: f64,
    /// Cache accounting bytes of the built entry.
    pub bytes: u64,
    /// `Some(msg)` when the configuration cannot build (the request
    /// completes as an error after paying the build cost).
    pub error: Option<String>,
}

/// Queue/worker/cache parameters of the simulated service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Simulated worker count.
    pub workers: usize,
    /// Bounded queue depth; arrivals beyond it are shed (open loop only).
    pub queue_cap: usize,
    /// LRU capacity in bytes.
    pub cache_bytes: u64,
}

/// What happened to one simulated request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimDisposition {
    /// Completed; how the cache satisfied it.
    Done(CacheDisposition),
    /// Completed as an error response (unbuildable configuration).
    Error,
    /// Shed at arrival: queue full.
    Rejected,
}

/// One simulated request's timing record.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRecord {
    /// Index into the distinct-configuration table.
    pub key: usize,
    /// Simulated submission time (ms since sim start).
    pub submit_ms: f64,
    /// Milliseconds waited for a worker.
    pub queue_ms: f64,
    /// Milliseconds of (possibly shared) build + inference work.
    pub service_ms: f64,
    /// Submission-to-completion milliseconds (`0` for rejected requests).
    pub latency_ms: f64,
    /// Outcome.
    pub disposition: SimDisposition,
}

/// The full outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// One record per request, in stream order.
    pub records: Vec<SimRecord>,
    /// Cache counters after the run.
    pub cache: LruStats,
    /// Requests that shared an in-flight execution.
    pub coalesced: u64,
    /// Requests shed by the bounded queue.
    pub rejected: u64,
    /// Last completion time (ms since sim start).
    pub makespan_ms: f64,
}

/// An execution in flight: submitted (at or before the current clock,
/// since requests are fed in nondecreasing submission order), possibly
/// not yet dispatched to a worker.
struct InFlight {
    key: usize,
    start_ms: f64,
    finish_ms: f64,
    /// Whether this execution completes as an error response (coalesced
    /// requests share the outcome, error or not — exactly like the live
    /// server's shared `Completion`).
    error: bool,
}

/// The simulation core: workers, queue accounting, cache and the
/// coalescing window. Requests are fed one at a time in nondecreasing
/// submission order.
struct ServiceSim<'a> {
    costs: &'a [SimCosts],
    params: SimParams,
    /// Per-worker next-free time.
    worker_free: Vec<f64>,
    /// Executions whose finish time is still ahead of the clock.
    in_flight: Vec<InFlight>,
    cache: ByteLru<usize, ()>,
    coalesced: u64,
    rejected: u64,
    makespan_ms: f64,
}

impl<'a> ServiceSim<'a> {
    fn new(costs: &'a [SimCosts], params: SimParams) -> Self {
        ServiceSim {
            costs,
            worker_free: vec![0.0; params.workers.max(1)],
            in_flight: Vec::new(),
            cache: ByteLru::new(params.cache_bytes),
            coalesced: 0,
            rejected: 0,
            makespan_ms: 0.0,
            params,
        }
    }

    /// Feeds one request submitted at `t`; returns its record. `reject`
    /// enables the bounded-queue shed path (open loop).
    fn offer(&mut self, key: usize, t: f64, reject: bool) -> SimRecord {
        // Retire executions that finished before `t`.
        self.in_flight.retain(|e| e.finish_ms > t);

        // Coalescing window: an identical configuration is in flight.
        if let Some(e) = self.in_flight.iter().find(|e| e.key == key) {
            self.coalesced += 1;
            let finish = e.finish_ms;
            let start = e.start_ms;
            let disposition = if e.error {
                SimDisposition::Error
            } else {
                SimDisposition::Done(CacheDisposition::Coalesced)
            };
            self.makespan_ms = self.makespan_ms.max(finish);
            return SimRecord {
                key,
                submit_ms: t,
                queue_ms: (start - t).max(0.0),
                service_ms: finish - start.max(t),
                latency_ms: finish - t,
                disposition,
            };
        }

        // Backpressure: executions not yet started at `t` are the queue.
        if reject {
            let waiting = self.in_flight.iter().filter(|e| e.start_ms > t).count();
            if waiting >= self.params.queue_cap.max(1) {
                self.rejected += 1;
                return SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: 0.0,
                    service_ms: 0.0,
                    latency_ms: 0.0,
                    disposition: SimDisposition::Rejected,
                };
            }
        }

        // Dispatch to the earliest-free worker (FIFO; ties to the lowest
        // index keep the schedule deterministic).
        let w = min_index(&self.worker_free);
        let start = t.max(self.worker_free[w]);
        let cost = &self.costs[key];
        let (service, disposition) = if cost.error.is_some() {
            // Unbuildable configurations pay the build (discovery) cost and
            // complete as errors; nothing enters the cache.
            self.cache.get(&key);
            (cost.build_ms, SimDisposition::Error)
        } else if self.cache.get(&key).is_some() {
            (cost.service_ms, SimDisposition::Done(CacheDisposition::Hit))
        } else {
            self.cache.insert(key, (), cost.bytes);
            (
                cost.build_ms + cost.service_ms,
                SimDisposition::Done(CacheDisposition::Miss),
            )
        };
        let finish = start + service;
        self.worker_free[w] = finish;
        self.in_flight.push(InFlight {
            key,
            start_ms: start,
            finish_ms: finish,
            error: disposition == SimDisposition::Error,
        });
        self.makespan_ms = self.makespan_ms.max(finish);
        SimRecord {
            key,
            submit_ms: t,
            queue_ms: start - t,
            service_ms: service,
            latency_ms: finish - t,
            disposition,
        }
    }

    fn into_outcome(self, records: Vec<SimRecord>) -> SimOutcome {
        SimOutcome {
            records,
            cache: self.cache.stats(),
            coalesced: self.coalesced,
            rejected: self.rejected,
            makespan_ms: self.makespan_ms,
        }
    }
}

/// Simulates an **open-loop** run: request `i` (a distinct-configuration
/// index in `keys`) is submitted at `arrivals[i]` milliseconds regardless
/// of completions; a full queue sheds arrivals.
///
/// # Panics
///
/// Panics if `keys` and `arrivals` differ in length or arrivals are not
/// nondecreasing.
pub fn simulate_open(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
) -> SimOutcome {
    assert_eq!(keys.len(), arrivals.len(), "one arrival per request");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );
    let mut sim = ServiceSim::new(costs, params);
    let records = keys
        .iter()
        .zip(arrivals)
        .map(|(&key, &t)| sim.offer(key, t, true))
        .collect();
    sim.into_outcome(records)
}

/// Simulates a **closed-loop** run: `clients` clients share the request
/// stream; each submits its next request the moment its previous one
/// completes (zero think time). The queue never exceeds the client count,
/// so nothing is shed.
pub fn simulate_closed(
    keys: &[usize],
    clients: usize,
    costs: &[SimCosts],
    params: SimParams,
) -> SimOutcome {
    let clients = clients.max(1);
    let mut sim = ServiceSim::new(costs, params);
    let mut available: Vec<f64> = vec![0.0; clients];
    let mut records = Vec::with_capacity(keys.len());
    for &key in keys {
        let c = min_index(&available);
        let record = sim.offer(key, available[c], false);
        available[c] += record.latency_ms;
        records.push(record);
    }
    sim.into_outcome(records)
}

/// Index of the minimum element (first on ties) — worker/client election.
fn min_index(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(n: usize, service: f64, build: f64, bytes: u64) -> Vec<SimCosts> {
        (0..n)
            .map(|_| SimCosts {
                service_ms: service,
                build_ms: build,
                bytes,
                error: None,
            })
            .collect()
    }

    fn params(workers: usize, queue: usize, cache: u64) -> SimParams {
        SimParams {
            workers,
            queue_cap: queue,
            cache_bytes: cache,
        }
    }

    #[test]
    fn single_worker_serializes_and_caches() {
        let costs = costs(1, 10.0, 5.0, 100);
        // Same key three times, back-to-back arrivals after completion.
        let out = simulate_open(&[0, 0, 0], &[0.0, 20.0, 40.0], &costs, params(1, 4, 1000));
        // First: miss (build + service = 15), later: hits (10 each).
        assert_eq!(out.records[0].latency_ms, 15.0);
        assert_eq!(out.records[1].latency_ms, 10.0);
        assert_eq!(out.records[2].latency_ms, 10.0);
        assert_eq!(out.cache.hits, 2);
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.coalesced, 0);
    }

    #[test]
    fn overlapping_identical_requests_coalesce() {
        let costs = costs(1, 10.0, 5.0, 100);
        // Second arrives while the first is still executing.
        let out = simulate_open(&[0, 0], &[0.0, 3.0], &costs, params(2, 4, 1000));
        assert_eq!(out.coalesced, 1);
        assert_eq!(out.records[1].latency_ms, 12.0); // finishes at 15, arrived at 3
        assert_eq!(
            out.records[1].disposition,
            SimDisposition::Done(CacheDisposition::Coalesced)
        );
        // Only one real execution touched the cache.
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.cache.hits, 0);
    }

    #[test]
    fn bounded_queue_sheds_bursts() {
        let costs = costs(3, 100.0, 0.0, 1);
        // Three distinct configs at t=0 on one worker with queue depth 1:
        // first executes, second waits, third is shed.
        let out = simulate_open(&[0, 1, 2], &[0.0, 0.0, 0.0], &costs, params(1, 1, 1000));
        assert_eq!(out.rejected, 1);
        assert_eq!(out.records[2].disposition, SimDisposition::Rejected);
        assert_eq!(out.records[1].queue_ms, 100.0);
    }

    #[test]
    fn eviction_follows_lru_under_pressure() {
        // Cache fits two of three equally sized entries.
        let costs = costs(3, 1.0, 1.0, 100);
        let keys = [0, 1, 2, 0]; // 0 evicted by 2's insertion, so the last 0 misses again
        let arrivals = [0.0, 10.0, 20.0, 30.0];
        let out = simulate_open(&keys, &arrivals, &costs, params(1, 4, 200));
        assert_eq!(out.cache.misses, 4);
        assert_eq!(out.cache.evictions, 2);
        assert_eq!(out.cache.hits, 0);
    }

    #[test]
    fn closed_loop_keeps_clients_busy() {
        let costs = costs(2, 10.0, 0.0, 1);
        let keys = [0, 1, 0, 1, 0, 1];
        let out = simulate_closed(&keys, 2, &costs, params(2, 8, 1000));
        assert_eq!(out.rejected, 0);
        // Two clients, two workers, 10 ms each, 6 requests => 30 ms.
        assert_eq!(out.makespan_ms, 30.0);
        assert!(out.records.iter().all(|r| r.queue_ms == 0.0));
    }

    #[test]
    fn error_configs_complete_as_errors() {
        let mut c = costs(2, 10.0, 5.0, 100);
        c[1].error = Some("unsupported".to_string());
        let out = simulate_open(&[1, 1], &[0.0, 100.0], &c, params(1, 4, 1000));
        assert!(out
            .records
            .iter()
            .all(|r| r.disposition == SimDisposition::Error));
        // Errors never enter the cache: both pay the build cost.
        assert_eq!(out.records[0].latency_ms, 5.0);
        assert_eq!(out.records[1].latency_ms, 5.0);
        assert_eq!(out.cache.entries, 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let costs = costs(4, 3.0, 1.5, 64);
        let keys: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..40).map(|i| i as f64 * 0.75).collect();
        let a = simulate_open(&keys, &arrivals, &costs, params(3, 8, 128));
        let b = simulate_open(&keys, &arrivals, &costs, params(3, 8, 128));
        assert_eq!(a, b);
        let c = simulate_closed(&keys, 5, &costs, params(3, 8, 128));
        let d = simulate_closed(&keys, 5, &costs, params(3, 8, 128));
        assert_eq!(c, d);
    }
}
