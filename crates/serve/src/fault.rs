//! Fault injection and resilience policy for the serving layer.
//!
//! The declarative fault model ([`FaultPlan`], [`FaultSpec`]) and the
//! resilience policy ([`ResilienceConfig`], [`RetryPolicy`],
//! [`BreakerConfig`], [`CircuitBreaker`], [`RejectReason`]) live in
//! [`gsuite_scenarios::resilience`], where both the live server and the
//! registry's `chaos` scenario can reach them; this module re-exports
//! them and adds the serve-side glue:
//!
//! * [`plan_for`] — resolves the per-request `fault_seed` override
//!   against the server's configured plan, so a chaos client can replay
//!   one request's fault draws deterministically;
//! * fault draws are keyed on `(seed, request index, attempt)` only, so
//!   a `(seed, mix)` pair replays **byte-identically** under
//!   `--clock sim` and identically-in-distribution under `--clock wall`
//!   (where queueing order, and therefore the request-index assignment,
//!   is the only nondeterminism).

pub use gsuite_scenarios::resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultDraw, FaultPlan, FaultRng, FaultSpec,
    RejectReason, ResilienceConfig, RetryPolicy,
};

/// Resolves the effective fault plan for one request: the server's plan
/// with the request's `fault_seed` override applied (`None` stays
/// fault-free — a seed override cannot conjure faults the server was not
/// configured to inject).
pub fn plan_for(server_plan: Option<FaultPlan>, request_seed: Option<u64>) -> Option<FaultPlan> {
    server_plan.map(|plan| match request_seed {
        Some(seed) => FaultPlan { seed, ..plan },
        None => plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seed_overrides_the_plan_seed_only() {
        let plan = FaultPlan::mixed(7, 0.25);
        let resolved = plan_for(Some(plan), Some(99)).unwrap();
        assert_eq!(resolved.seed, 99);
        assert_eq!(resolved.spec, plan.spec);
        assert_eq!(plan_for(Some(plan), None), Some(plan));
        assert_eq!(plan_for(None, Some(99)), None, "no plan, no faults");
    }
}
