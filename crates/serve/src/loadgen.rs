//! The load generator: a seeded request stream over a scenario-registry
//! workload mix, driven through the serving layer in one of two clock
//! modes, with a throughput + latency-percentile + SLO report.
//!
//! * **Simulated clock** ([`ClockMode::Sim`], the default): profiles every
//!   distinct configuration once (order-preserving parallel fan-out, so
//!   results are thread-count independent) and replays the stream through
//!   the deterministic queueing model of [`crate::sim`]. The report —
//!   every per-request latency, every counter — is a pure function of
//!   `(scenario, seed, parameters)`: a *reproducible benchmark*.
//! * **Wall clock** ([`ClockMode::Wall`]): drives a real in-process
//!   [`Server`] with live threads and reports measured wall times — a
//!   *measurement* of the host.
//!
//! Closed-loop mode models a fixed client population (each client submits
//! its next request when the previous completes); open-loop mode models
//! seeded Poisson arrivals at a fixed rate that do not slow down under
//! server pressure — the regime where the bounded queue sheds load.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsuite_core::plan::template::TemplateKey;
use gsuite_scenarios::trace::span_profile;
use gsuite_scenarios::{registry, BenchOpts, LruStats};
use gsuite_telemetry::metrics::LATENCY_BUCKETS_MS;
use gsuite_telemetry::{Attr, ClockDomain, MetricsRegistry, SpanSink, Trace};

use gsuite_core::plan::batchmerge::{merge_class, MergeClass};

use crate::fault::{FaultPlan, ResilienceConfig};
use crate::request::ServeRequest;
use crate::server::{entry_bytes, Completion, ServeConfig, Server, SubmitError};
use crate::sim::{
    simulate_closed, simulate_closed_traced, simulate_open, simulate_open_batched,
    simulate_open_batched_traced, simulate_open_traced, BatchPolicy, SimBatch, SimCosts,
    SimDisposition, SimParams, SpanProfile,
};

/// How the stream's submission times are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// A fixed client population with zero think time.
    Closed {
        /// Concurrent clients.
        clients: usize,
    },
    /// Seeded Poisson arrivals at a fixed rate, independent of completions.
    Open {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
}

impl std::fmt::Display for ArrivalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalMode::Closed { clients } => write!(f, "closed(clients={clients})"),
            ArrivalMode::Open { rate_rps } => write!(f, "open(rate={rate_rps}/s)"),
        }
    }
}

/// Which clock the run is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic queueing simulation over modeled service times.
    Sim,
    /// A live in-process server measured in wall time.
    Wall,
}

impl ClockMode {
    /// Report name (`sim` / `wall`).
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Sim => "sim",
            ClockMode::Wall => "wall",
        }
    }
}

/// A full load-generation specification.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Scenario-registry entry whose expanded grid is the workload mix.
    pub scenario: String,
    /// Stream seed: drives configuration sampling and open-loop arrivals.
    pub seed: u64,
    /// Total requests in the stream.
    pub requests: usize,
    /// Closed- or open-loop arrivals.
    pub arrival: ArrivalMode,
    /// Simulated or wall clock.
    pub clock: ClockMode,
    /// Service worker-pool size.
    pub workers: usize,
    /// Bounded queue depth.
    pub queue_cap: usize,
    /// LRU cache capacity in bytes.
    pub cache_bytes: u64,
    /// Threads for the distinct-configuration profiling pass (and the
    /// wall-mode worker pool); `0` uses [`gsuite_par::default_threads`].
    pub threads: usize,
    /// Optional latency SLO in milliseconds (report attainment against a
    /// 99% target).
    pub slo_ms: Option<f64>,
    /// Seeded fault injection plan; `None` (the default) injects nothing
    /// and leaves every report byte-identical to the pre-fault format.
    pub fault: Option<FaultPlan>,
    /// Resilience policy applied by the service (sim and wall clocks
    /// share the same policy engine). Default: fully inert.
    pub resilience: ResilienceConfig,
    /// Cross-request batching policy. `None` (the default) serves every
    /// request alone and keeps all reports byte-identical to the
    /// unbatched format. `Some` requires open-loop arrivals: compatible
    /// queued requests merge into one batched Plan execution
    /// ([`simulate_open_batched`] on the sim clock, the server's batch
    /// former on the wall clock).
    pub batch: Option<BatchPolicy>,
    /// Measurement options (scale policy, CTA caps).
    pub opts: BenchOpts,
}

impl Default for LoadSpec {
    /// The acceptance-criteria default: `serve-mix`, seed 42, 128 requests
    /// from 8 closed-loop clients on the simulated clock, quick scales.
    fn default() -> Self {
        LoadSpec {
            scenario: "serve-mix".to_string(),
            seed: 42,
            requests: 128,
            arrival: ArrivalMode::Closed { clients: 8 },
            clock: ClockMode::Sim,
            workers: 4,
            queue_cap: 64,
            cache_bytes: 64 << 20,
            threads: 0,
            slo_ms: None,
            fault: None,
            resilience: ResilienceConfig::default(),
            batch: None,
            opts: BenchOpts::quick(),
        }
    }
}

impl LoadSpec {
    /// The workload-mix universe: the expanded cells of the named
    /// scenario, as serving requests.
    ///
    /// # Errors
    ///
    /// Unknown scenario names and scenarios with empty grids (the static
    /// table scenarios) are rejected.
    pub fn universe(&self) -> Result<Vec<ServeRequest>, String> {
        let scenario = registry::find(&self.scenario).ok_or_else(|| {
            let known: Vec<&str> = registry::all().iter().map(|s| s.name).collect();
            format!(
                "unknown scenario {:?} (registry: {})",
                self.scenario,
                known.join(", ")
            )
        })?;
        let cells = scenario.spec().expand(&self.opts);
        if cells.is_empty() {
            return Err(format!(
                "scenario {:?} expands to an empty grid (nothing to serve)",
                self.scenario
            ));
        }
        Ok(cells.iter().map(ServeRequest::from_cell).collect())
    }

    /// The seeded request stream as a **lazy** iterator: `requests`
    /// indices into a universe of `universe_len` configurations, sampled
    /// uniformly with replacement. The iterator carries only the RNG
    /// state — `O(1)` memory regardless of stream length — so
    /// million-request mixes never materialize a key vector just to be
    /// walked once.
    pub fn key_stream(&self, universe_len: usize) -> KeyStream {
        KeyStream {
            rng: SmallRng::seed_from_u64(self.seed),
            universe_len,
            remaining: self.requests,
        }
    }

    /// The seeded request stream, collected ([`LoadSpec::key_stream`] is
    /// the single source of truth; this is its eager form).
    pub fn sample_keys(&self, universe_len: usize) -> Vec<usize> {
        self.key_stream(universe_len).collect()
    }

    /// Seeded open-loop arrival times (ms, nondecreasing) as a **lazy**
    /// iterator: exponential inter-arrivals at `rate_rps`, `O(1)` memory.
    /// Decoupled from the sampling stream so the same seed yields the
    /// same mix under both arrival modes.
    pub fn arrival_stream(&self, rate_rps: f64) -> ArrivalStream {
        ArrivalStream {
            rng: SmallRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A_1234_5678),
            rate_rps,
            t: 0.0,
            remaining: self.requests,
        }
    }

    /// Seeded open-loop arrival times, collected
    /// ([`LoadSpec::arrival_stream`] is the single source of truth; this
    /// is its eager form).
    pub fn arrivals(&self, rate_rps: f64) -> Vec<f64> {
        self.arrival_stream(rate_rps).collect()
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            gsuite_par::default_threads()
        } else {
            self.threads
        }
    }
}

/// Lazy seeded key stream — see [`LoadSpec::key_stream`]. Holds only
/// the RNG and a countdown; its memory footprint is independent of the
/// stream length.
#[derive(Debug, Clone)]
pub struct KeyStream {
    rng: SmallRng,
    universe_len: usize,
    remaining: usize,
}

impl Iterator for KeyStream {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.rng.gen_range(0..self.universe_len))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for KeyStream {}

/// Lazy seeded open-loop arrival stream — see
/// [`LoadSpec::arrival_stream`]. Yields nondecreasing milliseconds;
/// `O(1)` memory.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    rng: SmallRng,
    rate_rps: f64,
    t: f64,
    remaining: usize,
}

impl Iterator for ArrivalStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = self.rng.gen();
        self.t += -(1.0 - u).ln() / self.rate_rps.max(1e-9) * 1e3;
        Some(self.t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ArrivalStream {}

/// Latency percentile summary in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// The nearest-rank percentile of an ascending sample: the element at
    /// rank `ceil(percent·n / 100)` (1-based), in exact integer
    /// arithmetic. The float form `(q * n as f64).ceil()` lands one rank
    /// high whenever the product rounds just above an integer (e.g.
    /// `0.28 * 25.0 == 7.000000000000001` ranks 8th instead of 7th), so
    /// the rank is never allowed near floating point.
    fn nearest_rank(sorted: &[f64], percent: u64) -> f64 {
        let n = sorted.len() as u64;
        let rank = (percent * n).div_ceil(100).max(1);
        sorted[rank as usize - 1]
    }

    /// Summarizes a latency sample (empty samples summarize to zeros).
    pub fn of(latencies: &[f64]) -> LatencySummary {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(f64::total_cmp);
        LatencySummary {
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: Self::nearest_rank(&sorted, 50),
            p95_ms: Self::nearest_rank(&sorted, 95),
            p99_ms: Self::nearest_rank(&sorted, 99),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// SLO attainment against a 99%-of-requests target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// Latency objective in milliseconds.
    pub target_ms: f64,
    /// Fraction of completed requests at or under the objective.
    pub attainment: f64,
}

impl SloReport {
    /// The attainment fraction the SLO is judged against.
    pub const TARGET_FRACTION: f64 = 0.99;

    /// Whether the run met the objective.
    pub fn met(&self) -> bool {
        self.attainment >= Self::TARGET_FRACTION
    }
}

/// Resilience-layer counters of one load-generation run, all zero on a
/// fault-free run with an inert policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceSummary {
    /// Retry attempts performed.
    pub retries: u64,
    /// Requests failed on an expired deadline.
    pub timeouts: u64,
    /// Requests failed by worker crashes (retries exhausted).
    pub crashed: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Requests shed at admission by an open circuit breaker.
    pub circuit_open: u64,
    /// Requests served by the O0 compile fallback.
    pub degraded: u64,
    /// Stale-but-valid cache serves past the soft TTL.
    pub stale_serves: u64,
}

/// Cross-request batching counters of one load-generation run. Present
/// on the report only when the run had a [`BatchPolicy`] — unbatched
/// reports keep the historical format byte-for-byte.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchSummary {
    /// Batches dispatched (singleton dispatches included).
    pub batches: u64,
    /// Requests that resolved through a dispatched batch.
    pub batched_requests: u64,
    /// Requests shed by the batch former's admission control.
    pub shed: u64,
    /// `size_hist[i]` = dispatched batches of size `i + 1`.
    pub size_hist: Vec<u64>,
}

impl BatchSummary {
    /// Mean members per dispatched batch (`0` with no batches).
    pub fn avg_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// The histogram as `size:count` pairs, skipping empty sizes.
    fn hist_cells(&self) -> Vec<String> {
        self.size_hist
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| format!("{}:{}", i + 1, n))
            .collect()
    }
}

/// The load generator's result: counters, cache stats, throughput and the
/// latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Workload-mix scenario name.
    pub scenario: String,
    /// Stream seed.
    pub seed: u64,
    /// Clock the run was measured on (`sim` / `wall` / `tcp`).
    pub clock: String,
    /// Arrival-mode description.
    pub arrival: String,
    /// Distinct configurations in the mix universe.
    pub universe: usize,
    /// Requests in the stream.
    pub requests: usize,
    /// Delivered completions (successful profiles + error responses).
    pub completed: u64,
    /// Completions that were error responses (unbuildable configs).
    pub errors: u64,
    /// Requests shed by the bounded queue.
    pub rejected: u64,
    /// Requests that shared an in-flight identical execution.
    pub coalesced: u64,
    /// Cache counters after the run.
    pub cache: LruStats,
    /// Plan-template fast-path builds: charged builds served at the
    /// instantiate share (sim clock), or the server's template-cache
    /// hits (wall clock). Zero on clocks that do not surface them (TCP).
    pub tpl_hits: u64,
    /// Template-carrying builds that paid the full compile (sim clock),
    /// or the server's template-cache misses (wall clock).
    pub tpl_misses: u64,
    /// Completed requests per second over the makespan.
    pub throughput_rps: f64,
    /// First-submission-to-last-completion milliseconds.
    pub makespan_ms: f64,
    /// Latency distribution of completed requests.
    pub latency: LatencySummary,
    /// SLO attainment, when an objective was set.
    pub slo: Option<SloReport>,
    /// True when the run injected faults or ran a non-inert resilience
    /// policy — gates the `outcome:` / `resilience:` report lines so
    /// fault-free reports keep the historical format byte-for-byte.
    pub fault_mode: bool,
    /// Resilience counters (all zero when [`LoadReport::fault_mode`] is
    /// false).
    pub resilience: ResilienceSummary,
    /// Cross-request batching counters; `None` (every unbatched run)
    /// keeps the report byte-identical to the historical format.
    pub batch: Option<BatchSummary>,
    /// Per-completed-request latencies in stream order — the
    /// reproducibility surface the determinism tests compare.
    pub latencies_ms: Vec<f64>,
    /// Per-phase total milliseconds summed over the run's span stream,
    /// in [`PHASE_SPAN_NAMES`] order. Empty unless the run was traced
    /// ([`run_loadgen_traced`]) — untraced reports keep the historical
    /// format byte-for-byte.
    pub phases: Vec<(String, f64)>,
}

impl LoadReport {
    /// Renders the human-readable report. In sim-clock mode the output is
    /// byte-stable across runs, hosts and thread counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== gsuite-serve :: loadgen report\n");
        out.push_str(&format!(
            "scenario={} seed={} clock={} arrival={}\n",
            self.scenario, self.seed, self.clock, self.arrival
        ));
        out.push_str(&format!(
            "universe={} configs | requests={} | completed={} (errors={}) | rejected={} | coalesced={}\n",
            self.universe, self.requests, self.completed, self.errors, self.rejected, self.coalesced
        ));
        out.push_str(&format!(
            "throughput: {:.1} req/s | makespan: {:.4} ms\n",
            self.throughput_rps, self.makespan_ms
        ));
        out.push_str(&format!(
            "latency (ms): mean={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}\n",
            self.latency.mean_ms,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.max_ms
        ));
        out.push_str(&format!(
            "cache: hits={} misses={} hit-rate={:.1}% evictions={} rejected={} bytes={}/{} entries={}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions,
            self.cache.rejected,
            self.cache.bytes_in_use,
            self.cache.capacity_bytes,
            self.cache.entries
        ));
        if self.tpl_hits + self.tpl_misses > 0 {
            out.push_str(&format!(
                "templates: hits={} misses={} hit-rate={:.1}%\n",
                self.tpl_hits,
                self.tpl_misses,
                self.tpl_hits as f64 / (self.tpl_hits + self.tpl_misses) as f64 * 100.0
            ));
        }
        if self.fault_mode {
            let ok = self.completed.saturating_sub(self.errors);
            let shed = self.rejected + self.resilience.circuit_open;
            let total = self.requests.max(1) as f64;
            out.push_str(&format!(
                "outcome: ok={} ({:.1}%) failed={} ({:.1}%) shed={} ({:.1}%) | availability={:.1}%\n",
                ok,
                ok as f64 / total * 100.0,
                self.errors,
                self.errors as f64 / total * 100.0,
                shed,
                shed as f64 / total * 100.0,
                self.availability() * 100.0,
            ));
            let r = &self.resilience;
            out.push_str(&format!(
                "resilience: retries={} timeouts={} crashed={} breaker-trips={} circuit-shed={} degraded={} stale={}\n",
                r.retries, r.timeouts, r.crashed, r.breaker_trips, r.circuit_open, r.degraded, r.stale_serves
            ));
        }
        if let Some(b) = &self.batch {
            out.push_str(&format!(
                "batch: batches={} batched={} avg-size={:.2} shed={}",
                b.batches,
                b.batched_requests,
                b.avg_size(),
                b.shed
            ));
            let cells = b.hist_cells();
            if !cells.is_empty() {
                out.push_str(&format!(" | sizes {}", cells.join(" ")));
            }
            out.push('\n');
        }
        if !self.phases.is_empty() {
            out.push_str("phases (ms):");
            for (name, total) in &self.phases {
                out.push_str(&format!(" {name}={total:.4}"));
            }
            out.push('\n');
        }
        if let Some(slo) = &self.slo {
            out.push_str(&format!(
                "SLO: {:.1}% of requests <= {:.2} ms (target {:.1}%) -> {}\n",
                slo.attainment * 100.0,
                slo.target_ms,
                SloReport::TARGET_FRACTION * 100.0,
                if slo.met() { "MET" } else { "VIOLATED" }
            ));
        }
        out
    }

    /// Successful (non-error, non-shed) completions over the whole
    /// request stream — the chaos sweeps' headline availability metric.
    pub fn availability(&self) -> f64 {
        self.completed.saturating_sub(self.errors) as f64 / self.requests.max(1) as f64
    }

    /// Renders the report as one JSON object (hand-rolled: the workspace
    /// builds offline, without serde_json).
    pub fn to_json(&self) -> String {
        let slo = match &self.slo {
            Some(s) => format!(
                ",\n  \"slo\": {{\"target_ms\": {}, \"attainment\": {:.6}, \"met\": {}}}",
                s.target_ms,
                s.attainment,
                s.met()
            ),
            None => String::new(),
        };
        let fault = if self.fault_mode {
            let r = &self.resilience;
            format!(
                ",\n  \"availability\": {:.6},\n  \"resilience\": {{\"retries\": {}, \"timeouts\": {}, \
                 \"crashed\": {}, \"breaker_trips\": {}, \"circuit_open\": {}, \"degraded\": {}, \
                 \"stale_serves\": {}}}",
                self.availability(),
                r.retries,
                r.timeouts,
                r.crashed,
                r.breaker_trips,
                r.circuit_open,
                r.degraded,
                r.stale_serves
            )
        } else {
            String::new()
        };
        let templates = if self.tpl_hits + self.tpl_misses > 0 {
            format!(
                ",\n  \"tpl_hits\": {},\n  \"tpl_misses\": {},\n  \"tpl_hit_rate\": {:.6}",
                self.tpl_hits,
                self.tpl_misses,
                self.tpl_hits as f64 / (self.tpl_hits + self.tpl_misses) as f64
            )
        } else {
            String::new()
        };
        let phases = if self.phases.is_empty() {
            String::new()
        } else {
            let cols: Vec<String> = self
                .phases
                .iter()
                .map(|(name, total)| format!("\"{name}\": {total:.4}"))
                .collect();
            format!(",\n  \"phases\": {{{}}}", cols.join(", "))
        };
        let batch = match &self.batch {
            Some(b) => {
                let hist: Vec<String> = b.size_hist.iter().map(u64::to_string).collect();
                format!(
                    ",\n  \"batch\": {{\"batches\": {}, \"batched_requests\": {}, \
                     \"avg_size\": {:.4}, \"shed\": {}, \"size_hist\": [{}]}}",
                    b.batches,
                    b.batched_requests,
                    b.avg_size(),
                    b.shed,
                    hist.join(", ")
                )
            }
            None => String::new(),
        };
        format!(
            "{{\n  \"scenario\": {:?},\n  \"seed\": {},\n  \"clock\": {:?},\n  \"arrival\": {:?},\n  \
             \"universe\": {},\n  \"requests\": {},\n  \"completed\": {},\n  \"errors\": {},\n  \
             \"rejected\": {},\n  \"coalesced\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"cache_hit_rate\": {:.6},\n  \"cache_evictions\": {},\n  \"throughput_rps\": {:.3},\n  \
             \"makespan_ms\": {:.4},\n  \"latency_ms\": {{\"mean\": {:.4}, \"p50\": {:.4}, \"p95\": {:.4}, \
             \"p99\": {:.4}, \"max\": {:.4}}}{}{}{}{}{}\n}}",
            self.scenario,
            self.seed,
            self.clock,
            self.arrival,
            self.universe,
            self.requests,
            self.completed,
            self.errors,
            self.rejected,
            self.coalesced,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.evictions,
            self.throughput_rps,
            self.makespan_ms,
            self.latency.mean_ms,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.max_ms,
            templates,
            slo,
            fault,
            batch,
            phases
        )
    }

    /// The report as a metrics registry: counters for the traffic and
    /// cache outcomes, gauges for point-in-time values, a fixed-bucket
    /// latency histogram, and (for traced runs) one gauge per phase
    /// column. Exposition order is sorted by name, so the rendered text
    /// is byte-stable wherever the report itself is.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = |reg: &mut MetricsRegistry, name, help, v| reg.counter_add(name, help, v);
        c(
            &mut reg,
            "gsuite_loadgen_completed_total",
            "Delivered completions.",
            self.completed,
        );
        c(
            &mut reg,
            "gsuite_loadgen_errors_total",
            "Completions that were error responses.",
            self.errors,
        );
        c(
            &mut reg,
            "gsuite_loadgen_rejected_total",
            "Requests shed by the bounded queue.",
            self.rejected,
        );
        c(
            &mut reg,
            "gsuite_loadgen_coalesced_total",
            "Requests sharing an in-flight execution.",
            self.coalesced,
        );
        c(
            &mut reg,
            "gsuite_cache_hits_total",
            "Pipeline-cache lookup hits.",
            self.cache.hits,
        );
        c(
            &mut reg,
            "gsuite_cache_misses_total",
            "Pipeline-cache lookup misses.",
            self.cache.misses,
        );
        c(
            &mut reg,
            "gsuite_cache_evictions_total",
            "Pipeline-cache evictions.",
            self.cache.evictions,
        );
        let r = &self.resilience;
        c(
            &mut reg,
            "gsuite_resilience_retries_total",
            "Retry attempts performed.",
            r.retries,
        );
        c(
            &mut reg,
            "gsuite_resilience_timeouts_total",
            "Requests failed on an expired deadline.",
            r.timeouts,
        );
        c(
            &mut reg,
            "gsuite_resilience_crashed_total",
            "Requests failed by worker crashes.",
            r.crashed,
        );
        c(
            &mut reg,
            "gsuite_resilience_breaker_trips_total",
            "Circuit-breaker trips.",
            r.breaker_trips,
        );
        c(
            &mut reg,
            "gsuite_resilience_circuit_open_total",
            "Requests shed by an open circuit breaker.",
            r.circuit_open,
        );
        c(
            &mut reg,
            "gsuite_resilience_degraded_total",
            "Requests served by the O0 compile fallback.",
            r.degraded,
        );
        c(
            &mut reg,
            "gsuite_resilience_stale_serves_total",
            "Stale-but-valid cache serves past the soft TTL.",
            r.stale_serves,
        );
        reg.gauge_set(
            "gsuite_cache_bytes_in_use",
            "Pipeline-cache bytes in use.",
            self.cache.bytes_in_use as f64,
        );
        reg.gauge_set(
            "gsuite_cache_entries",
            "Pipeline-cache resident entries.",
            self.cache.entries as f64,
        );
        reg.gauge_set(
            "gsuite_loadgen_throughput_rps",
            "Completed requests per second over the makespan.",
            self.throughput_rps,
        );
        reg.gauge_set(
            "gsuite_loadgen_makespan_ms",
            "First-submission-to-last-completion milliseconds.",
            self.makespan_ms,
        );
        for &l in &self.latencies_ms {
            reg.histogram_observe(
                "gsuite_loadgen_latency_ms",
                "Completed-request latency (milliseconds).",
                &LATENCY_BUCKETS_MS,
                l,
            );
        }
        if let Some(b) = &self.batch {
            c(
                &mut reg,
                "gsuite_batch_dispatched_total",
                "Batches dispatched by the cross-request former.",
                b.batches,
            );
            c(
                &mut reg,
                "gsuite_batch_requests_total",
                "Requests resolved through a dispatched batch.",
                b.batched_requests,
            );
            c(
                &mut reg,
                "gsuite_batch_shed_total",
                "Requests shed by the batch former's admission control.",
                b.shed,
            );
            reg.gauge_set(
                "gsuite_batch_avg_size",
                "Mean members per dispatched batch.",
                b.avg_size(),
            );
            for (i, &n) in b.size_hist.iter().enumerate() {
                if n > 0 {
                    let name = format!("gsuite_batch_size_{}_total", i + 1);
                    reg.counter_add(&name, "Dispatched batches of this size.", n);
                }
            }
        }
        for (name, total) in &self.phases {
            let metric = format!("gsuite_phase_{}_ms", name.replace('.', "_"));
            reg.gauge_set(
                &metric,
                "Total milliseconds spent in this span phase.",
                *total,
            );
        }
        reg
    }

    /// Assembles a report from raw counters and a latency sample.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        spec: &LoadSpec,
        clock: &str,
        universe: usize,
        completed: u64,
        errors: u64,
        rejected: u64,
        coalesced: u64,
        cache: LruStats,
        makespan_ms: f64,
        latencies_ms: Vec<f64>,
    ) -> LoadReport {
        let latency = LatencySummary::of(&latencies_ms);
        let slo = spec.slo_ms.map(|target_ms| {
            let within = latencies_ms.iter().filter(|&&l| l <= target_ms).count();
            SloReport {
                target_ms,
                attainment: if latencies_ms.is_empty() {
                    0.0
                } else {
                    within as f64 / latencies_ms.len() as f64
                },
            }
        });
        LoadReport {
            scenario: spec.scenario.clone(),
            seed: spec.seed,
            clock: clock.to_string(),
            arrival: spec.arrival.to_string(),
            universe,
            requests: spec.requests,
            completed,
            errors,
            rejected,
            coalesced,
            cache,
            tpl_hits: 0,
            tpl_misses: 0,
            throughput_rps: if makespan_ms > 0.0 {
                completed as f64 / makespan_ms * 1e3
            } else {
                0.0
            },
            makespan_ms,
            latency,
            slo,
            fault_mode: spec.fault.is_some() || !spec.resilience.is_inert(),
            resilience: ResilienceSummary::default(),
            batch: None,
            latencies_ms,
            phases: Vec::new(),
        }
    }
}

/// The span names the traced reports' per-phase breakdown sums, in
/// column order: the queue/cache/compile/service decomposition of a
/// served request. Wall-clock traces only populate the envelope phases
/// (`queue`, `service`) — the rest read 0.
pub const PHASE_SPAN_NAMES: [&str; 12] = [
    "queue",
    "cache_lookup",
    "build",
    "compile.lower",
    "compile.optimize",
    "compile.decorate",
    "compile.instantiate",
    "compile.schedule",
    "service",
    "kernel",
    "exchange",
    "backoff",
];

/// Sums each [`PHASE_SPAN_NAMES`] column over a trace.
fn phase_totals(trace: &Trace) -> Vec<(String, f64)> {
    PHASE_SPAN_NAMES
        .iter()
        .map(|&name| (name.to_string(), trace.total_ms(name)))
        .collect()
}

/// The modeled graph-load + pipeline-build cost charged on a cache miss in
/// sim-clock mode: a flat dispatch term plus ~2 ms per accounted MiB.
pub fn build_cost_ms(bytes: u64) -> f64 {
    0.2 + bytes as f64 / (512.0 * 1024.0)
}

/// Profiles the distinct configurations of a stream (order-preserving
/// parallel fan-out) into sim-mode cost records. Unreferenced universe
/// entries get zero-cost placeholders that the simulation never touches.
///
/// With `traced`, the same pass also captures each key's per-launch
/// [`SpanProfile`] (kernel names, modeled times, exchange peers/bytes)
/// for the traced simulation to attach under its `service` spans —
/// untraced runs skip that allocation entirely.
///
/// With `batched`, every mergeable configuration (see
/// `plan::batchmerge::merge_class`) is additionally profiled as a
/// merged **pair** of itself: the two-point measurement splits its solo
/// service time into the batch-invariant `fixed_ms = 2·alone − pair`
/// and the per-member `marginal_ms = pair − alone` shares (clamped into
/// `[0, alone]`, so `fixed + marginal == alone` exactly) that
/// [`simulate_open_batched`] charges merged executions. Unbatched runs
/// skip the pair builds entirely and produce the historical costs.
fn sim_costs(
    universe: &[ServeRequest],
    keys: &[usize],
    opts: &BenchOpts,
    threads: usize,
    traced: bool,
    batched: bool,
) -> (Vec<SimCosts>, Vec<SpanProfile>) {
    let mut referenced: Vec<usize> = Vec::new();
    for &k in keys {
        if !referenced.contains(&k) {
            referenced.push(k);
        }
    }
    let profiled = gsuite_par::par_map_threads(&referenced, threads, |_, &k| {
        let req = &universe[k];
        let graph = req.config.load_graph();
        match gsuite_core::pipeline::PipelineRun::build(&graph, &req.config) {
            Ok(run) => {
                let profiler = req.gpu.profiler(opts, req.config.dataset);
                let profile = run.profile(profiler.as_ref());
                let bytes = entry_bytes(&graph, &run);
                // The slowest shard's halo-exchange share: what a
                // degraded-link fault gets to inflate (0 single-device).
                let exchange_ms = profile.sharding.as_ref().map_or(0.0, |sh| {
                    sh.shards
                        .iter()
                        .map(|shard| shard.exchange_ms)
                        .fold(0.0, f64::max)
                });
                let spans = if traced {
                    span_profile(&run, &profile)
                } else {
                    SpanProfile::default()
                };
                let alone_ms = profile.total_time_ms();
                let probe = if batched {
                    merge_class(&req.config).and_then(|class| {
                        let pair = [req.config.clone(), req.config.clone()];
                        gsuite_core::pipeline::PipelineRun::build_merged(&graph, &pair)
                            .ok()
                            .map(|(pair_run, _)| {
                                let pair_ms = pair_run.profile(profiler.as_ref()).total_time_ms();
                                let marginal = (pair_ms - alone_ms).clamp(0.0, alone_ms);
                                (class, alone_ms - marginal, marginal)
                            })
                    })
                } else {
                    None
                };
                (
                    SimCosts {
                        service_ms: alone_ms,
                        build_ms: build_cost_ms(bytes),
                        exchange_ms,
                        bytes,
                        template: None,
                        batch: None,
                        error: None,
                    },
                    spans,
                    TemplateKey::of(&graph, &req.config),
                    probe,
                )
            }
            Err(e) => (
                SimCosts {
                    service_ms: 0.0,
                    build_ms: build_cost_ms(0),
                    exchange_ms: 0.0,
                    bytes: 0,
                    template: None,
                    batch: None,
                    error: Some(e.to_string()),
                },
                SpanProfile::default(),
                None,
                None,
            ),
        }
    });
    let mut costs = vec![
        SimCosts {
            service_ms: 0.0,
            build_ms: 0.0,
            exchange_ms: 0.0,
            bytes: 0,
            template: None,
            batch: None,
            error: None,
        };
        universe.len()
    ];
    let mut profiles = vec![SpanProfile::default(); universe.len()];
    // Mirror the server's plan-template cache: every buildable entry
    // whose compile shape (TemplateKey) matches an earlier one shares
    // that entry's group, so only the group's first build pays the full
    // lower/optimize/decorate cost. Group ids are assigned in first-use
    // order, which keys them to the deterministic request stream.
    let mut groups: Vec<TemplateKey> = Vec::new();
    // Merge-class ids for the batch former, likewise in first-use order.
    let mut batch_groups: Vec<MergeClass> = Vec::new();
    for (&k, (mut cost, spans, tkey, probe)) in referenced.iter().zip(profiled) {
        cost.template = tkey.map(|key| match groups.iter().position(|g| *g == key) {
            Some(id) => id,
            None => {
                groups.push(key);
                groups.len() - 1
            }
        });
        if let Some((class, fixed_ms, marginal_ms)) = probe {
            let group = match batch_groups.iter().position(|g| *g == class) {
                Some(id) => id,
                None => {
                    batch_groups.push(class);
                    batch_groups.len() - 1
                }
            };
            cost.batch = Some(SimBatch {
                group,
                fixed_ms,
                marginal_ms,
            });
        }
        costs[k] = cost;
        profiles[k] = spans;
    }
    (costs, profiles)
}

/// Runs the load generator in-process (sim or wall clock) and returns its
/// report.
///
/// # Errors
///
/// Propagates workload-mix resolution failures (unknown scenario, empty
/// grid).
pub fn run_loadgen(spec: &LoadSpec) -> Result<LoadReport, String> {
    validate_batch_mode(spec)?;
    let universe = spec.universe()?;
    let keys = spec.sample_keys(universe.len());
    match spec.clock {
        ClockMode::Sim => Ok(run_sim(spec, &universe, &keys, false).0),
        ClockMode::Wall => Ok(run_wall(spec, &universe, &keys, false).0),
    }
}

/// [`run_loadgen`] with telemetry: the same report (sim-clock reports
/// are bit-identical to the untraced run's, down to every latency) plus
/// the run's span stream and a populated per-phase breakdown.
///
/// * `--clock sim`: the discrete-event model records every request as a
///   `request` tree (queue → cache_lookup → build/compile.\* →
///   service/kernel/exchange, plus retry/backoff/degrade events) on the
///   **sim clock** — deterministic, byte-identical across runs, hosts
///   and thread counts.
/// * `--clock wall`: spans are synthesized from each live completion's
///   measured envelope (queue/service under the request root) on the
///   **monotonic clock** — real, not reproducible.
///
/// # Errors
///
/// Propagates workload-mix resolution failures (unknown scenario, empty
/// grid).
pub fn run_loadgen_traced(spec: &LoadSpec) -> Result<(LoadReport, Trace), String> {
    validate_batch_mode(spec)?;
    let universe = spec.universe()?;
    let keys = spec.sample_keys(universe.len());
    let (mut report, trace) = match spec.clock {
        ClockMode::Sim => run_sim(spec, &universe, &keys, true),
        ClockMode::Wall => run_wall(spec, &universe, &keys, true),
    };
    let trace = trace.expect("traced run produces a trace");
    report.phases = phase_totals(&trace);
    if spec.batch.is_some() {
        // Batch orchestration spans sit outside the per-request phase
        // list, so append them explicitly when batching is on.
        for name in ["batch.form", "batch.scatter"] {
            report.phases.push((name.to_string(), trace.total_ms(name)));
        }
    }
    Ok((report, trace))
}

/// Rejects spec combinations the batching layer cannot serve: the batch
/// former keys off open-loop arrival timestamps, so closed-loop runs
/// (which have no arrival clock to age a forming batch against) are a
/// configuration error rather than a silently unbatched run.
fn validate_batch_mode(spec: &LoadSpec) -> Result<(), String> {
    if spec.batch.is_some() && matches!(spec.arrival, ArrivalMode::Closed { .. }) {
        return Err("cross-request batching requires open-loop arrivals (--rate)".to_string());
    }
    Ok(())
}

fn run_sim(
    spec: &LoadSpec,
    universe: &[ServeRequest],
    keys: &[usize],
    traced: bool,
) -> (LoadReport, Option<Trace>) {
    let (costs, profiles) = sim_costs(
        universe,
        keys,
        &spec.opts,
        spec.effective_threads(),
        traced,
        spec.batch.is_some(),
    );
    let params = SimParams {
        workers: spec.workers,
        queue_cap: spec.queue_cap,
        cache_bytes: spec.cache_bytes,
        fault: spec.fault,
        resilience: spec.resilience,
    };
    let arrivals;
    let (outcome, trace) = if traced {
        let (outcome, trace) = match (spec.arrival, spec.batch) {
            (ArrivalMode::Closed { clients }, _) => {
                simulate_closed_traced(keys, clients, &costs, params, &profiles)
            }
            (ArrivalMode::Open { rate_rps }, None) => {
                arrivals = spec.arrivals(rate_rps);
                simulate_open_traced(keys, &arrivals, &costs, params, &profiles)
            }
            (ArrivalMode::Open { rate_rps }, Some(policy)) => {
                arrivals = spec.arrivals(rate_rps);
                simulate_open_batched_traced(keys, &arrivals, &costs, params, policy, &profiles)
            }
        };
        (outcome, Some(trace))
    } else {
        let outcome = match (spec.arrival, spec.batch) {
            (ArrivalMode::Closed { clients }, _) => simulate_closed(keys, clients, &costs, params),
            (ArrivalMode::Open { rate_rps }, None) => {
                simulate_open(keys, &spec.arrivals(rate_rps), &costs, params)
            }
            (ArrivalMode::Open { rate_rps }, Some(policy)) => {
                simulate_open_batched(keys, &spec.arrivals(rate_rps), &costs, params, policy)
            }
        };
        (outcome, None)
    };
    let mut latencies = Vec::with_capacity(outcome.records.len());
    let (mut completed, mut errors) = (0u64, 0u64);
    for r in &outcome.records {
        match r.disposition {
            // Shed before execution: no completion, no latency sample.
            SimDisposition::Rejected | SimDisposition::CircuitOpen | SimDisposition::BatchShed => {}
            // Delivered as an error response — mirroring the wall server,
            // where timeouts and crashes complete with `err` lines.
            SimDisposition::Error | SimDisposition::TimedOut | SimDisposition::Crashed => {
                completed += 1;
                errors += 1;
                latencies.push(r.latency_ms);
            }
            SimDisposition::Done(_) => {
                completed += 1;
                latencies.push(r.latency_ms);
            }
        }
    }
    let mut report = LoadReport::assemble(
        spec,
        "sim",
        universe.len(),
        completed,
        errors,
        outcome.rejected,
        outcome.coalesced,
        outcome.cache,
        outcome.makespan_ms,
        latencies,
    );
    report.tpl_hits = outcome.template_hits;
    report.tpl_misses = outcome.template_misses;
    report.resilience = ResilienceSummary {
        retries: outcome.retries,
        timeouts: outcome.timeouts,
        crashed: outcome.crashed,
        breaker_trips: outcome.breaker_trips,
        circuit_open: outcome.circuit_open,
        degraded: outcome.degraded,
        stale_serves: outcome.stale_serves,
    };
    if spec.batch.is_some() {
        report.batch = Some(BatchSummary {
            batches: outcome.batches,
            batched_requests: outcome.batched_requests,
            shed: outcome.batch_shed,
            size_hist: outcome.batch_size_hist.clone(),
        });
    }
    (report, trace)
}

/// One closed-loop step's result (see [`drive_closed_loop`]).
pub(crate) enum Step {
    /// A completion was delivered: `(latency_ms, was_error)`.
    Done(f64, bool),
    /// The request was shed before execution (open breaker / full
    /// queue) — counted by the server, no latency sample.
    Shed,
    /// The server is stopping; retire this worker quietly.
    Retire,
}

/// The shared closed-loop driver: `clients` workers pull stream indices
/// `0..n` from one shared cursor; each worker gets its own state from
/// `setup` (e.g. a TCP connection) and runs `step` per index. `step`
/// returns a [`Step`] describing what happened, or `Err` to fail the
/// whole run (first failure wins). Results come back sorted by stream
/// index.
///
/// Both the in-process wall-clock loadgen and the TCP loadgen ride on
/// this, so their work-distribution and accounting cannot drift apart.
pub(crate) fn drive_closed_loop<S>(
    clients: usize,
    n: usize,
    setup: impl Fn() -> Result<S, String> + Sync,
    step: impl Fn(&mut S, usize) -> Result<Step, String> + Sync,
) -> Result<Vec<(usize, f64, bool)>, String> {
    let next = std::sync::atomic::AtomicUsize::new(0);
    let collected: std::sync::Mutex<Vec<(usize, f64, bool)>> = std::sync::Mutex::new(Vec::new());
    let failure: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| {
                let mut state = match setup() {
                    Ok(s) => s,
                    Err(msg) => {
                        failure
                            .lock()
                            .expect("failure slot poisoned")
                            .get_or_insert(msg);
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match step(&mut state, i) {
                        Ok(Step::Done(latency_ms, is_err)) => {
                            collected
                                .lock()
                                .expect("collector poisoned")
                                .push((i, latency_ms, is_err));
                        }
                        Ok(Step::Shed) => {}
                        Ok(Step::Retire) => break,
                        Err(msg) => {
                            failure
                                .lock()
                                .expect("failure slot poisoned")
                                .get_or_insert(msg);
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some(msg) = failure.into_inner().expect("failure slot poisoned") {
        return Err(msg);
    }
    let mut results = collected.into_inner().expect("collector poisoned");
    results.sort_by_key(|&(i, _, _)| i);
    Ok(results)
}

fn run_wall(
    spec: &LoadSpec,
    universe: &[ServeRequest],
    keys: &[usize],
    traced: bool,
) -> (LoadReport, Option<Trace>) {
    let threads = spec.effective_threads();
    // Traced runs capture each delivered completion with its submission
    // offset (ms since run start) so the span synthesis can rebuild the
    // request timeline; untraced runs never touch this.
    let captured: std::sync::Mutex<Vec<(usize, f64, Completion)>> =
        std::sync::Mutex::new(Vec::new());
    let server = Server::start(ServeConfig {
        workers: if spec.workers == 0 {
            threads
        } else {
            spec.workers
        },
        queue_cap: spec.queue_cap,
        cache_bytes: spec.cache_bytes,
        cache_shards: ServeConfig::default().cache_shards,
        opts: spec.opts.clone(),
        fault: spec.fault,
        resilience: spec.resilience,
        batch: spec.batch,
    });
    let t0 = std::time::Instant::now();
    // (stream index, latency_ms, was_error) per delivered completion.
    let mut results: Vec<(usize, f64, bool)> = Vec::new();
    match spec.arrival {
        ArrivalMode::Closed { clients } => {
            results = drive_closed_loop(
                clients,
                keys.len(),
                || Ok(()),
                |(), i| {
                    let submit_ms = t0.elapsed().as_secs_f64() * 1e3;
                    let rx = match server.submit(universe[keys[i]].clone()) {
                        Ok(rx) => rx,
                        // An open breaker or full batch backlog sheds this
                        // request; the stream moves on (the server counts
                        // the shed).
                        Err(SubmitError::CircuitOpen | SubmitError::BatchBacklog) => {
                            return Ok(Step::Shed)
                        }
                        // Submit failures mean the server is stopping:
                        // retire the worker rather than failing the run.
                        Err(_) => return Ok(Step::Retire),
                    };
                    let Ok(done) = rx.recv() else {
                        return Ok(Step::Retire);
                    };
                    let result = Step::Done(done.latency_ms, done.outcome.is_err());
                    if traced {
                        captured
                            .lock()
                            .expect("capture buffer poisoned")
                            .push((i, submit_ms, done));
                    }
                    Ok(result)
                },
            )
            .expect("in-process setup is infallible");
        }
        ArrivalMode::Open { rate_rps } => {
            // One dispatcher pacing seeded arrivals, streamed lazily (the
            // schedule is O(1) memory however long the run is); a full
            // queue sheds.
            let mut pending = Vec::new();
            for (i, at_ms) in spec.arrival_stream(rate_rps).enumerate() {
                let due = std::time::Duration::from_secs_f64(at_ms / 1e3);
                if let Some(sleep) = due.checked_sub(t0.elapsed()) {
                    std::thread::sleep(sleep);
                }
                let submit_ms = t0.elapsed().as_secs_f64() * 1e3;
                match server.try_submit(universe[keys[i]].clone()) {
                    Ok(rx) => pending.push((i, submit_ms, rx)),
                    // Queue, breaker and batch-backlog sheds are counted
                    // by the server.
                    Err(
                        SubmitError::Busy | SubmitError::CircuitOpen | SubmitError::BatchBacklog,
                    ) => {}
                    Err(SubmitError::ShuttingDown) => break,
                }
            }
            for (i, submit_ms, rx) in pending {
                if let Ok(done) = rx.recv() {
                    results.push((i, done.latency_ms, done.outcome.is_err()));
                    if traced {
                        captured
                            .lock()
                            .expect("capture buffer poisoned")
                            .push((i, submit_ms, done));
                    }
                }
            }
        }
    }
    let makespan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = server.stats();
    server.shutdown();

    results.sort_by_key(|&(i, _, _)| i);
    let errors = results.iter().filter(|&&(_, _, e)| e).count() as u64;
    let latencies: Vec<f64> = results.iter().map(|&(_, l, _)| l).collect();
    let mut report = LoadReport::assemble(
        spec,
        "wall",
        universe.len(),
        results.len() as u64,
        errors,
        stats.rejected,
        stats.coalesced,
        stats.cache,
        makespan_ms,
        latencies,
    );
    report.tpl_hits = stats.tpl_hits;
    report.tpl_misses = stats.tpl_misses;
    report.resilience = ResilienceSummary {
        retries: stats.retries,
        timeouts: stats.timeouts,
        crashed: stats.crashed,
        breaker_trips: stats.breaker_trips,
        circuit_open: stats.breaker_shed,
        degraded: stats.degraded,
        stale_serves: stats.stale_serves,
    };
    if spec.batch.is_some() {
        // The wall server does not keep a per-size histogram; the
        // summary's average still falls out of the two counters.
        report.batch = Some(BatchSummary {
            batches: stats.batches,
            batched_requests: stats.batched_requests,
            shed: stats.batch_shed,
            size_hist: Vec::new(),
        });
    }
    let trace = traced.then(|| {
        let mut captured = captured.into_inner().expect("capture buffer poisoned");
        wall_trace(&mut captured, universe, keys)
    });
    (report, trace)
}

/// Synthesizes a wall-clock trace from captured completions: one
/// `request` root per delivered completion (in stream order) with its
/// measured `queue`/`service` envelope as children. Wall mode has no
/// per-worker attribution, so every span rides track 0; timestamps are
/// monotonic milliseconds since the run started.
fn wall_trace(
    captured: &mut [(usize, f64, Completion)],
    universe: &[ServeRequest],
    keys: &[usize],
) -> Trace {
    captured.sort_by_key(|&(i, _, _)| i);
    let mut sink = SpanSink::new();
    for (i, submit_ms, done) in captured.iter() {
        let root = sink.reserve();
        sink.record("queue", Some(root), 0, *submit_ms, done.queue_ms, vec![]);
        sink.record(
            "service",
            Some(root),
            0,
            submit_ms + done.queue_ms,
            done.service_ms,
            vec![Attr::str("cache", done.cache.name())],
        );
        let mut attrs = vec![
            Attr::str("key", universe[keys[*i]].config.label()),
            Attr::u64("id", done.id),
        ];
        if done.outcome.is_err() {
            attrs.push(Attr::str("outcome", "error"));
        }
        if done.degraded {
            attrs.push(Attr::str("degraded", "true"));
        }
        if done.retries > 0 {
            attrs.push(Attr::u64("retries", u64::from(done.retries)));
        }
        sink.record_with_id(root, "request", None, 0, *submit_ms, done.latency_ms, attrs);
    }
    sink.finish(ClockDomain::Wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let l: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::of(&l);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
        assert_eq!(LatencySummary::of(&[]), LatencySummary::default());
        let one = LatencySummary::of(&[7.0]);
        assert_eq!((one.p50_ms, one.p99_ms, one.max_ms), (7.0, 7.0, 7.0));
    }

    #[test]
    fn nearest_rank_edge_cases_are_exact() {
        // Single sample: every percentile is that sample.
        let one = LatencySummary::of(&[3.5]);
        assert_eq!((one.p50_ms, one.p95_ms, one.p99_ms), (3.5, 3.5, 3.5));

        // Even-length median: nearest-rank picks the lower middle
        // (rank ceil(0.5·4) = 2), never an interpolated value.
        let even = LatencySummary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.p50_ms, 2.0);

        // q·n exactly integral: rank q·n itself, not one past it.
        // (The float form is one ulp away from ranking 20th here.)
        let twenty: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let s = LatencySummary::of(&twenty);
        assert_eq!(s.p50_ms, 10.0);
        assert_eq!(s.p95_ms, 19.0);
        assert_eq!(s.p99_ms, 20.0);

        // The class of float failure nearest_rank guards against:
        // 28% of 25 must rank 7th even though 0.28 * 25.0 > 7.0.
        let quarter: Vec<f64> = (1..=25).map(|i| i as f64).collect();
        assert_eq!(LatencySummary::nearest_rank(&quarter, 28), 7.0);
    }

    proptest::proptest! {
        /// Random samples: every reported percentile equals a brute-force
        /// integer-arithmetic nearest-rank reference.
        #[test]
        fn latency_percentiles_match_integer_reference(
            sample in proptest::collection::vec(0.0f64..1e6, 1..300),
        ) {
            let s = LatencySummary::of(&sample);
            let mut sorted = sample.clone();
            sorted.sort_by(f64::total_cmp);
            let reference = |percent: usize| {
                let rank = ((percent * sorted.len()).div_ceil(100)).max(1);
                sorted[rank - 1]
            };
            proptest::prop_assert_eq!(s.p50_ms, reference(50));
            proptest::prop_assert_eq!(s.p95_ms, reference(95));
            proptest::prop_assert_eq!(s.p99_ms, reference(99));
            proptest::prop_assert_eq!(s.max_ms, *sorted.last().expect("non-empty"));
            proptest::prop_assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        }
    }

    #[test]
    fn sampled_streams_are_seed_deterministic() {
        let spec = LoadSpec::default();
        assert_eq!(spec.sample_keys(18), spec.sample_keys(18));
        let other = LoadSpec {
            seed: 7,
            ..LoadSpec::default()
        };
        assert_ne!(spec.sample_keys(18), other.sample_keys(18));
        let arr = spec.arrivals(500.0);
        assert_eq!(arr.len(), spec.requests);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(arr, spec.arrivals(500.0));
    }

    /// The lazy streams are the single source of truth for the seeded
    /// mix: they must reproduce the historical eager generation bit for
    /// bit (the serve goldens depend on it) while carrying only RNG
    /// state — no buffer that grows with the request count.
    #[test]
    fn streams_match_eager_reference_with_constant_memory() {
        let spec = LoadSpec {
            requests: 257,
            ..LoadSpec::default()
        };
        // Inline replica of the pre-streaming eager generators.
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let eager_keys: Vec<usize> = (0..spec.requests).map(|_| rng.gen_range(0..18)).collect();
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xA5A5_5A5A_1234_5678);
        let mut t = 0.0;
        let eager_arrivals: Vec<f64> = (0..spec.requests)
            .map(|_| {
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / 500.0f64.max(1e-9) * 1e3;
                t
            })
            .collect();
        assert_eq!(spec.key_stream(18).collect::<Vec<_>>(), eager_keys);
        let streamed: Vec<f64> = spec.arrival_stream(500.0).collect();
        assert_eq!(streamed.len(), eager_arrivals.len());
        for (s, e) in streamed.iter().zip(&eager_arrivals) {
            assert_eq!(s.to_bits(), e.to_bits());
        }

        // O(1) memory: the iterator structs are a fixed few machine
        // words regardless of the stream length...
        assert!(std::mem::size_of::<KeyStream>() <= 64);
        assert!(std::mem::size_of::<ArrivalStream>() <= 64);
        // ...and a ten-million-request schedule can be walked partially
        // without materializing anything (laziness, not just size).
        let huge = LoadSpec {
            requests: 10_000_000,
            ..LoadSpec::default()
        };
        let mut stream = huge.arrival_stream(1e4);
        assert_eq!(stream.len(), 10_000_000);
        let head: Vec<f64> = stream.by_ref().take(5).collect();
        assert!(head.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(stream.len(), 10_000_000 - 5);
        assert_eq!(huge.key_stream(18).nth(1_000_000), {
            let mut s = huge.key_stream(18);
            s.nth(1_000_000)
        });
    }

    #[test]
    fn batching_rejects_closed_loop_specs() {
        let spec = LoadSpec {
            batch: Some(BatchPolicy::default()),
            ..LoadSpec::default()
        };
        let err = run_loadgen(&spec).unwrap_err();
        assert!(err.contains("open-loop"), "{err}");
        assert!(run_loadgen_traced(&spec).is_err());
    }

    #[test]
    fn batch_summary_average_handles_empty() {
        let none = BatchSummary {
            batches: 0,
            batched_requests: 0,
            shed: 0,
            size_hist: Vec::new(),
        };
        assert_eq!(none.avg_size(), 0.0);
        let some = BatchSummary {
            batches: 4,
            batched_requests: 10,
            shed: 1,
            size_hist: vec![2, 1, 0, 1],
        };
        assert!((some.avg_size() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_scenarios_are_rejected() {
        let spec = LoadSpec {
            scenario: "no-such-mix".to_string(),
            ..LoadSpec::default()
        };
        let err = spec.universe().unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        // Static table scenarios have no cells to serve.
        let spec = LoadSpec {
            scenario: "table2".to_string(),
            ..LoadSpec::default()
        };
        assert!(spec.universe().unwrap_err().contains("empty grid"));
    }

    #[test]
    fn build_cost_is_monotone_in_bytes() {
        assert!(build_cost_ms(0) > 0.0);
        assert!(build_cost_ms(1 << 20) > build_cost_ms(1 << 10));
    }
}
