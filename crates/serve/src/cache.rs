//! An N-way sharded wrapper over [`ByteLru`] with per-shard locks — the
//! serving layer's answer to cache-lock contention.
//!
//! The historical server kept its pipeline cache inside the one big
//! `Mutex<State>`, so every cache touch serialized against queue
//! bookkeeping. [`ShardedByteLru`] splits the key space by hash across
//! `N` independently-locked [`ByteLru`] shards: workers touching
//! different keys proceed in parallel, and cache traffic never holds the
//! queue lock at all. Each shard applies the exact single-lock `ByteLru`
//! semantics to its slice of the key space (the brute-force oracle test
//! in `tests/serve.rs` locks this), and the total byte capacity is
//! partitioned across shards so the aggregate budget is unchanged.
//!
//! Lock contention is observable: every acquisition that would block
//! bumps a per-shard wait counter, surfaced as the `lock_waits` stats
//! key and the `gsuite_cache_lock_waits_total` metric.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

use gsuite_scenarios::{ByteLru, LruStats};

/// One shard: a single-lock [`ByteLru`] plus its lock-wait counter.
struct Shard<K, V> {
    lru: Mutex<ByteLru<K, V>>,
    waits: AtomicU64,
}

impl<K: PartialEq + Hash, V> Shard<K, V> {
    /// Locks the shard, counting a wait when the lock was contended.
    fn lock(&self) -> MutexGuard<'_, ByteLru<K, V>> {
        match self.lru.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.waits.fetch_add(1, Ordering::Relaxed);
                self.lru.lock().expect("cache shard poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }
}

/// A byte-accounted LRU cache sharded `N` ways by key hash, each shard
/// behind its own lock. Shared by reference across workers — all methods
/// take `&self`.
pub struct ShardedByteLru<K, V> {
    shards: Vec<Shard<K, V>>,
}

impl<K: PartialEq + Hash, V: Clone> ShardedByteLru<K, V> {
    /// A cache of `capacity_bytes` total, split across `shards` locks
    /// (clamped to at least one). The capacity partition is exact: shard
    /// byte budgets sum to `capacity_bytes`.
    pub fn new(capacity_bytes: u64, shards: usize) -> Self {
        let n = shards.max(1) as u64;
        let (each, remainder) = (capacity_bytes / n, capacity_bytes % n);
        ShardedByteLru {
            shards: (0..n)
                .map(|i| Shard {
                    lru: Mutex::new(ByteLru::new(each + u64::from(i < remainder))),
                    waits: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// The shard responsible for `key`.
    fn shard_of(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Looks up `key` in its shard, promoting it to most-recently-used
    /// and cloning the value out so the shard lock is released before
    /// the caller touches it.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_of(key).lock().get(key).cloned()
    }

    /// Inserts `key -> value` accounted at `bytes` into its shard,
    /// evicting from that shard's LRU end until it fits. Returns `false`
    /// when `bytes` exceeds the shard's capacity.
    pub fn insert(&self, key: K, value: V, bytes: u64) -> bool {
        self.shard_of(&key).lock().insert(key, value, bytes)
    }

    /// Drops up to `n` entries total, sweeping the shards round-robin
    /// one LRU victim at a time — the fault injector's eviction-storm
    /// primitive. Returns how many entries were actually dropped.
    pub fn evict_lru(&self, n: usize) -> usize {
        let mut dropped = 0;
        while dropped < n {
            let before = dropped;
            for shard in &self.shards {
                if dropped == n {
                    break;
                }
                dropped += shard.lock().evict_lru(1);
            }
            if dropped == before {
                break; // every shard is empty
            }
        }
        dropped
    }

    /// Aggregated counter snapshot: per-shard [`LruStats`] summed (the
    /// capacity sums back to the configured total).
    pub fn stats(&self) -> LruStats {
        let mut total = LruStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.rejected += s.rejected;
            total.bytes_in_use += s.bytes_in_use;
            total.capacity_bytes += s.capacity_bytes;
            total.entries += s.entries;
        }
        total
    }

    /// Total contended lock acquisitions across all shards.
    pub fn lock_waits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.waits.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of shards (and locks).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_partition_is_exact() {
        let c: ShardedByteLru<u32, u32> = ShardedByteLru::new(1003, 8);
        assert_eq!(c.stats().capacity_bytes, 1003);
        assert_eq!(c.shard_count(), 8);
        let single: ShardedByteLru<u32, u32> = ShardedByteLru::new(100, 0);
        assert_eq!(single.shard_count(), 1, "shard count clamps to one");
    }

    #[test]
    fn get_insert_roundtrip_and_counters_aggregate() {
        let c: ShardedByteLru<u32, u32> = ShardedByteLru::new(1 << 20, 4);
        for k in 0..64u32 {
            assert!(c.insert(k, k * 3, 64));
        }
        for k in 0..64u32 {
            assert_eq!(c.get(&k), Some(k * 3));
        }
        assert_eq!(c.get(&999), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (64, 1, 64));
        assert_eq!(s.entries, 64);
        assert_eq!(s.bytes_in_use, 64 * 64);
        assert_eq!(c.len(), 64);
        assert!(!c.is_empty());
        assert_eq!(c.lock_waits(), 0, "uncontended use never blocks");
    }

    #[test]
    fn eviction_storm_sweeps_across_shards() {
        let c: ShardedByteLru<u32, ()> = ShardedByteLru::new(1 << 20, 4);
        for k in 0..16u32 {
            c.insert(k, (), 1);
        }
        assert_eq!(c.evict_lru(10), 10);
        assert_eq!(c.len(), 6);
        assert_eq!(c.evict_lru(100), 6, "bounded by live entries");
        assert!(c.is_empty());
    }

    #[test]
    fn one_shard_is_exactly_the_single_lock_cache() {
        // With a single shard, every operation must mirror a plain
        // ByteLru byte for byte — the degenerate case of the oracle
        // test in tests/serve.rs.
        let sharded: ShardedByteLru<u32, u32> = ShardedByteLru::new(30, 1);
        let mut plain: ByteLru<u32, u32> = ByteLru::new(30);
        let ops: [(u32, u32); 5] = [(1, 10), (2, 20), (3, 30), (1, 11), (4, 40)];
        for (k, v) in ops {
            assert_eq!(sharded.insert(k, v, 10), plain.insert(k, v, 10));
            assert_eq!(sharded.get(&1), plain.get(&1).copied());
        }
        assert_eq!(sharded.stats(), plain.stats());
    }
}
