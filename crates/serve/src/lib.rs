//! # gsuite-serve
//!
//! The serving layer of gSuite-rs: the benchmark engine under *sustained
//! request traffic* instead of one-shot batch sweeps. A long-running
//! service accepts inference-benchmark requests (model × dataset × format
//! × GPU config), executes them through a worker pool with
//!
//! * a **byte-accounted LRU cache** of built graphs + pipelines, sharded
//!   by key hash with per-shard locks ([`ShardedByteLru`] over
//!   [`ByteLru`]; hit/miss/eviction and lock-wait counters),
//! * a **plan-template fast path** — repeat compile shapes skip
//!   lower/optimize/decorate and only instantiate + re-schedule
//!   ([`gsuite_core::plan::template::TemplateCache`]), bit-identically,
//! * **request coalescing** — identical in-flight configurations share one
//!   profile run,
//! * a **bounded queue with backpressure** (blocking submits for
//!   closed-loop clients, load shedding for open-loop overload) and
//!   per-request queue/service/latency timing,
//!
//! and a deterministic **load generator** that drives the service from a
//! seeded workload mix (drawn from the scenario registry) in closed- or
//! open-loop mode, producing a throughput + p50/p95/p99 latency + SLO
//! report. Request execution reuses the batch runner's exact build/profile
//! path, so a served profile is bit-identical to the same configuration's
//! cell in [`gsuite_scenarios::run_scenario`].
//!
//! Two clocks, one service model:
//!
//! * `--clock sim` replays the stream through a pure discrete-event model
//!   ([`sim`]) over the profiles' *modeled* milliseconds — byte-identical
//!   reports for a `(scenario, seed, parameters)` triple on any host, any
//!   thread count: a reproducible benchmark.
//! * `--clock wall` drives a live threaded [`Server`] and reports measured
//!   wall time; the `net` module exposes the same service over a newline-delimited
//!   `std::net` TCP protocol.
//!
//! ```text
//! gsuite-cli serve --port 4816 --threads 8
//! gsuite-cli loadgen --scenario serve-mix --seed 42
//! gsuite-cli loadgen --connect 127.0.0.1:4816 --clients 8 --requests 256
//! ```
//!
//! # Example
//!
//! ```
//! use gsuite_serve::{run_loadgen, ClockMode, LoadSpec};
//! use gsuite_scenarios::BenchOpts;
//!
//! let spec = LoadSpec {
//!     requests: 32,
//!     opts: BenchOpts::golden(),
//!     ..LoadSpec::default()
//! };
//! let report = run_loadgen(&spec).unwrap();
//! assert_eq!(report.completed, 32);
//! // Repeated configurations in the mix make the pipeline cache pay off.
//! assert!(report.cache.hit_rate() > 0.0);
//! // Same spec, same report — down to every per-request latency.
//! assert_eq!(run_loadgen(&spec).unwrap(), report);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod fault;
mod loadgen;
mod net;
mod request;
mod server;

/// The deterministic discrete-event execution model behind `--clock sim`
/// — re-exported from [`gsuite_scenarios::sim`], where it lives so the
/// scenario registry's `chaos` sweep can drive the same model without a
/// dependency cycle.
pub mod sim {
    pub use gsuite_scenarios::sim::*;
}

pub use cache::ShardedByteLru;
pub use gsuite_scenarios::{ByteLru, LruStats};
pub use loadgen::{
    build_cost_ms, run_loadgen, run_loadgen_traced, ArrivalMode, BatchSummary, ClockMode,
    LatencySummary, LoadReport, LoadSpec, ResilienceSummary, SloReport, PHASE_SPAN_NAMES,
};
pub use net::{loadgen_tcp, serve_blocking, serve_on, ProtocolClient};
pub use request::{CacheDisposition, ServeRequest};
pub use server::{
    entry_bytes, CachedPipeline, Completion, ServeConfig, Server, ServerStats, SubmitError,
};
