//! The `SpGEMM` kernel: CSR × CSR multiply — the normalization chain of the
//! SpMM-model GCN (paper Table II, Fig. 2 right).

use std::sync::Arc;

use gsuite_gpu::{Grid, KernelWorkload, TraceBuf, TraceBuilder};

use super::row_chunks;

/// A-row entries processed per warp before splitting.
pub const SPGEMM_CHUNK: u32 = 256;

/// Workload descriptor for one `SpGEMM` launch (`A[m,p] x B[p,q]`).
///
/// Mapping: one warp per A-row chunk (Gustavson row formulation). For each
/// stored `A[r][c]` the warp streams B's row `c` in 32-entry slabs,
/// performing hash-accumulator index math (integer ops) and multiply-adds,
/// then writes the output row's entries. All loop bounds come from the live
/// CSR structures of both operands.
#[derive(Debug, Clone)]
pub struct SpgemmKernel {
    /// A's CSR row pointer.
    pub a_row_ptr: Arc<Vec<u32>>,
    /// A's CSR column indices.
    pub a_col_idx: Arc<Vec<u32>>,
    /// B's CSR row pointer.
    pub b_row_ptr: Arc<Vec<u32>>,
    /// Output structure row pointer (for the write phase).
    pub out_row_ptr: Arc<Vec<u32>>,
    /// Base address of A's row pointer / column / value arrays.
    pub a_bases: (u64, u64, u64),
    /// Base address of B's row pointer / column / value arrays.
    pub b_bases: (u64, u64, u64),
    /// Base address of the output column / value arrays.
    pub out_bases: (u64, u64),
    /// Pre-split (row, start) chunks of A.
    chunks: Arc<Vec<(u32, u32)>>,
}

impl SpgemmKernel {
    /// Builds the kernel, pre-splitting A's rows.
    pub fn new(
        a_row_ptr: Arc<Vec<u32>>,
        a_col_idx: Arc<Vec<u32>>,
        b_row_ptr: Arc<Vec<u32>>,
        out_row_ptr: Arc<Vec<u32>>,
        a_bases: (u64, u64, u64),
        b_bases: (u64, u64, u64),
        out_bases: (u64, u64),
    ) -> Self {
        let chunks = Arc::new(row_chunks(&a_row_ptr, SPGEMM_CHUNK));
        SpgemmKernel {
            a_row_ptr,
            a_col_idx,
            b_row_ptr,
            out_row_ptr,
            a_bases,
            b_bases,
            out_bases,
            chunks,
        }
    }

    /// Total warps (A-row chunks).
    pub fn total_warps(&self) -> u64 {
        self.chunks.len() as u64
    }
}

impl KernelWorkload for SpgemmKernel {
    fn name(&self) -> String {
        "SpGEMM".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::new(self.total_warps().div_ceil(4).max(1), 4)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let widx = cta * 4 + warp as u64;
        if widx >= self.total_warps() {
            return;
        }
        let (row, start) = self.chunks[widx as usize];
        let row_end = self.a_row_ptr[row as usize + 1];
        let end = row_end.min(start + SPGEMM_CHUNK);
        let (a_rp, a_ci, a_val) = self.a_bases;
        let (b_rp, b_ci, b_val) = self.b_bases;

        let mut tb = TraceBuilder::on(buf, 32);
        let rp = tb.load_strided(a_rp + row as u64 * 4, 0, 4);
        tb.load_strided(a_rp + (row as u64 + 1) * 4, 0, 4);
        tb.int(&[rp]);
        for j in start..end {
            let c = self.a_col_idx[j as usize] as u64;
            // A entry (column + value, broadcast).
            let ac = tb.load_strided(a_ci + j as u64 * 4, 0, 4);
            let av = tb.load_strided(a_val + j as u64 * 4, 0, 4);
            // B row bounds.
            tb.load_strided(b_rp + c * 4, 0, 4);
            tb.load_strided(b_rp + (c + 1) * 4, 0, 4);
            tb.int(&[ac]);
            let b_start = self.b_row_ptr[c as usize];
            let b_end = self.b_row_ptr[c as usize + 1];
            let mut slab = b_start;
            while slab < b_end {
                let lanes = (b_end - slab).clamp(1, 32) as usize;
                tb.set_active(lanes);
                let bc = tb.load_strided(b_ci + slab as u64 * 4, 4, 4);
                let bv = tb.load_strided(b_val + slab as u64 * 4, 4, 4);
                // Hash-accumulator probe (integer) + multiply-add.
                let h = tb.int(&[bc]);
                tb.int(&[h]);
                tb.fp32(&[av, bv]);
                slab += 32;
            }
            tb.set_active(32);
        }
        // Output row write (only the first chunk of a row writes, modeling
        // the separate numeric-phase behaviour of real SpGEMM).
        if start == self.a_row_ptr[row as usize] {
            let (out_ci, out_val) = self.out_bases;
            let o_start = self.out_row_ptr[row as usize];
            let o_end = self.out_row_ptr[row as usize + 1];
            let mut slab = o_start;
            while slab < o_end {
                let lanes = (o_end - slab).clamp(1, 32) as usize;
                tb.set_active(lanes);
                let v = tb.fp32(&[]);
                tb.store_lanes(v, out_ci + slab as u64 * 4, 4);
                tb.store_lanes(v, out_val + slab as u64 * 4, 4);
                slab += 32;
            }
        }
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    fn rp(lens: &[u32]) -> Arc<Vec<u32>> {
        let mut v = vec![0u32];
        for &l in lens {
            v.push(v.last().unwrap() + l);
        }
        Arc::new(v)
    }

    fn kernel(a_lens: &[u32], b_lens: &[u32], out_lens: &[u32]) -> SpgemmKernel {
        let a_nnz = a_lens.iter().sum::<u32>() as usize;
        let b_rows = b_lens.len();
        let a_ci: Vec<u32> = (0..a_nnz).map(|i| (i % b_rows) as u32).collect();
        SpgemmKernel::new(
            rp(a_lens),
            Arc::new(a_ci),
            rp(b_lens),
            rp(out_lens),
            (0x100, 0x1000, 0x2000),
            (0x3000, 0x4000, 0x5000),
            (0x6000, 0x7000),
        )
    }

    #[test]
    fn one_warp_per_a_row() {
        let k = kernel(&[2, 1, 3], &[1, 1, 1], &[1, 1, 1]);
        assert_eq!(k.total_warps(), 3);
    }

    #[test]
    fn work_scales_with_b_row_length() {
        let short = kernel(&[1], &[2], &[2]);
        let long = kernel(&[1], &[200], &[2]);
        assert!(long.trace(0, 0).len() > short.trace(0, 0).len() * 2);
    }

    #[test]
    fn output_written_once_per_row() {
        let k = kernel(&[SPGEMM_CHUNK + 1], &[1; 600], &[64]);
        assert_eq!(k.total_warps(), 2, "A row split into two chunks");
        let first = k.trace(0, 0);
        let second = k.trace(0, 1);
        let stores = |t: &gsuite_gpu::TraceBuf| {
            t.iter()
                .filter(|i| i.class == InstrClass::StoreGlobal)
                .count()
        };
        assert!(stores(&first) > 0, "first chunk writes the output row");
        assert_eq!(stores(&second), 0, "later chunks do not rewrite");
    }

    #[test]
    fn mix_is_int_heavy() {
        // SpGEMM's hash probing makes INT a large share — the Fig. 5 shape.
        let k = kernel(&[8], &[40; 8], &[32]);
        let t = k.trace(0, 0);
        let ints = t.iter().filter(|i| i.class == InstrClass::Int).count();
        let fp = t.iter().filter(|i| i.class == InstrClass::Fp32).count();
        assert!(ints > fp, "int ({ints}) should outnumber fp32 ({fp})");
    }

    #[test]
    fn empty_a_means_no_warps() {
        let k = kernel(&[0, 0], &[1], &[0, 0]);
        assert_eq!(k.total_warps(), 0);
        assert!(k.trace(0, 0).is_empty());
    }
}
