//! The `indexSelect` kernel: gathers node-embedding rows along one endpoint
//! column of the COO edge index (paper Table II, Fig. 2 left).

use std::sync::Arc;

use gsuite_gpu::{Grid, KernelWorkload, Reg, TraceBuf, TraceBuilder};

use super::CTA_THREADS;
#[cfg(test)]
use super::CTA_WARPS;

/// GCN's symmetric-normalization folding: each gathered message is scaled
/// by `rsqrt(deg[src]) * rsqrt(deg[dst])` (Eq. 1 of the paper), which adds
/// two degree gathers, two SFU rsqrts and two multiplies per element.
#[derive(Debug, Clone)]
pub struct GcnEdgeScale {
    /// Destination endpoint per edge (for `deg[dst]`).
    pub dst: Arc<Vec<u32>>,
    /// Base address of the degree vector.
    pub deg_base: u64,
}

/// Workload descriptor for one `indexSelect` launch.
///
/// Output element `t` (row-major over `[E, f]`) is
/// `src[index[t / f]][t % f]`: one thread per output element, 128-thread
/// CTAs. Consecutive lanes share the gathered row whenever `f >= 32`, so
/// wide features coalesce and narrow features scatter — exactly the
/// behaviour that drives the paper's locality observations.
#[derive(Debug, Clone)]
pub struct IndexSelectKernel {
    /// Gathered endpoint per edge (usually the source column).
    pub index: Arc<Vec<u32>>,
    /// Base address of the endpoint array.
    pub index_base: u64,
    /// Base address of the gathered (source) matrix.
    pub src_base: u64,
    /// Feature width `f` of the gathered matrix.
    pub feat: usize,
    /// Base address of the `[E, f]` output.
    pub out_base: u64,
    /// Optional GCN normalization folding.
    pub scale: Option<GcnEdgeScale>,
}

/// Elements processed per thread (grid-stride coarsening, as PyG's gather
/// kernels do); gives each warp four independent gathers in flight.
pub const IS_COARSEN: u64 = 4;

impl IndexSelectKernel {
    /// Total output elements (`E * f`).
    pub fn total_elements(&self) -> u64 {
        self.index.len() as u64 * self.feat as u64
    }

    /// The 32-element windows warp `(cta, warp)` covers (at most
    /// [`IS_COARSEN`] groups, in a fixed array — no allocation).
    fn groups(&self, cta: u64, warp: u32) -> super::CoarsenedGroups<{ IS_COARSEN as usize }> {
        super::coarsened_groups(cta, warp, self.total_elements())
    }
}

impl KernelWorkload for IndexSelectKernel {
    fn name(&self) -> String {
        "indexSelect".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::cover(
            self.total_elements().div_ceil(IS_COARSEN),
            CTA_THREADS as u32,
        )
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let f = self.feat as u64;
        let (groups, ngroups) = self.groups(cta, warp);
        let groups = &groups[..ngroups];
        if groups.is_empty() {
            return;
        }
        let mut tb = TraceBuilder::on(buf, groups[0].1);
        let e_reg = tb.int(&[]);
        tb.int(&[e_reg]);
        // Phase 1: endpoint loads for every group (all in flight at once).
        // Each access carries its SASS-level address arithmetic: an IMAD
        // for the element index and a 64-bit base+offset add.
        let mut idx_regs = [0 as Reg; IS_COARSEN as usize];
        for (g, &(t0, active)) in groups.iter().enumerate() {
            tb.set_active(active);
            let ea = tb.int(&[e_reg]);
            tb.int(&[ea]);
            idx_regs[g] = tb.load_gather_with(4, &[ea], |l| self.index_base + ((t0 + l) / f) * 4);
        }
        // Phase 2: row gathers from the source matrix (row*f IMAD + column
        // add + 64-bit address formation per access).
        let mut values = [0 as Reg; IS_COARSEN as usize];
        for (g, &(t0, active)) in groups.iter().enumerate() {
            tb.set_active(active);
            let ra = tb.int(&[idx_regs[g]]);
            let rb = tb.int(&[ra]);
            tb.int(&[rb]);
            values[g] = tb.load_gather_with(4, &[rb], |l| {
                let t = t0 + l;
                let row = self.index[(t / f) as usize] as u64;
                self.src_base + (row * f + t % f) * 4
            });
        }
        // Optional GCN normalization: degree gathers + rsqrt + scale.
        if let Some(scale) = &self.scale {
            for (g, &(t0, active)) in groups.iter().enumerate() {
                tb.set_active(active);
                let idx_reg = idx_regs[g];
                let dsrc = tb.load_gather_with(4, &[idx_reg], |l| {
                    let e = (t0 + l) / f;
                    scale.deg_base + self.index[e as usize] as u64 * 4
                });
                let ddst = tb.load_gather_with(4, &[idx_reg], |l| {
                    let e = (t0 + l) / f;
                    scale.deg_base + scale.dst[e as usize] as u64 * 4
                });
                let r1 = tb.sfu(&[dsrc]);
                let r2 = tb.sfu(&[ddst]);
                let m1 = tb.fp32(&[values[g], r1]);
                values[g] = tb.fp32(&[m1, r2]);
            }
        }
        // Phase 3: coalesced stores (output address add per group).
        for (g, &(t0, active)) in groups.iter().enumerate() {
            tb.set_active(active);
            tb.int(&[]);
            tb.store_lanes(values[g], self.out_base + t0 * 4, 4);
        }
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    fn kernel(edges: usize, feat: usize) -> IndexSelectKernel {
        let index: Vec<u32> = (0..edges as u32).map(|e| e % 7).collect();
        IndexSelectKernel {
            index: Arc::new(index),
            index_base: 0x1000,
            src_base: 0x10_0000,
            feat,
            out_base: 0x80_0000,
            scale: None,
        }
    }

    #[test]
    fn grid_covers_all_elements() {
        let k = kernel(100, 16);
        let grid = k.grid();
        // Each thread handles IS_COARSEN elements.
        assert!(grid.ctas * CTA_THREADS * IS_COARSEN >= 1600);
        assert_eq!(
            grid.ctas,
            1600u64.div_ceil(IS_COARSEN).div_ceil(CTA_THREADS)
        );
        assert_eq!(grid.warps_per_cta, CTA_WARPS);
    }

    #[test]
    fn trace_counts_scale_with_elements() {
        let k = kernel(4, 8); // 32 elements = exactly one warp
        let t = k.trace(0, 0);
        assert!(!t.is_empty());
        assert!(k.trace(0, 1).is_empty(), "second warp has no work");
        let loads = t
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        assert_eq!(loads, 2, "index load + source gather");
        let stores = t
            .iter()
            .filter(|i| i.class == InstrClass::StoreGlobal)
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn wide_features_coalesce_narrow_features_scatter() {
        let wide = kernel(32, 64);
        let narrow = kernel(2048, 1);
        let sector_count = |k: &IndexSelectKernel| {
            let t = k.trace(0, 0);
            (0..t.len())
                .filter(|&i| t[i].class == InstrClass::LoadGlobal)
                .map(|i| t.mem_at(i).unwrap().sectors().len())
                .max()
                .unwrap()
        };
        // Wide: whole warp reads one row -> few sectors. Narrow: every lane
        // reads a different row -> many sectors.
        assert!(sector_count(&wide) <= 8);
        assert!(sector_count(&narrow) >= 4);
    }

    #[test]
    fn gather_addresses_use_real_indices() {
        let k = IndexSelectKernel {
            index: Arc::new(vec![5, 0]),
            index_base: 0,
            src_base: 1000,
            feat: 32,
            out_base: 0x8000,
            scale: None,
        };
        // Warp 0's first group covers edge 0 entirely (f = 32): all lanes
        // read row 5. Loads are phased: both groups' index loads first,
        // then the source gathers — take the first gather.
        let t = k.trace(0, 0);
        let gather_idx = (0..t.len())
            .filter(|&i| t[i].class == InstrClass::LoadGlobal)
            .nth(2)
            .unwrap();
        let mut addrs = Vec::new();
        t.mem_at(gather_idx).unwrap().lane_addrs(&mut addrs);
        assert_eq!(addrs[0], 1000 + 5 * 32 * 4);
        assert_eq!(addrs[31], 1000 + (5 * 32 + 31) * 4);
    }

    #[test]
    fn gcn_scale_adds_sfu_work() {
        let mut k = kernel(8, 4);
        let plain_len = k.trace(0, 0).len();
        k.scale = Some(GcnEdgeScale {
            dst: Arc::new((0..8).map(|e| (e % 3) as u32).collect()),
            deg_base: 0x5000,
        });
        let t = k.trace(0, 0);
        assert!(t.len() > plain_len);
        let sfus = t.iter().filter(|i| i.class == InstrClass::Sfu).count();
        assert_eq!(sfus, 2, "two rsqrt per element batch");
    }

    #[test]
    fn empty_when_no_edges() {
        let k = kernel(0, 4);
        assert_eq!(k.grid().ctas, 1);
        assert!(k.trace(0, 0).is_empty());
    }
}
