//! The halo-exchange workload of sharded multi-GPU runs.
//!
//! An exchange lands `rows × feat` foreign feature rows in this device's
//! staging buffer before an aggregation layer. On-device it behaves like
//! a copy-engine stream (store-only traffic into the staging region); the
//! *link* cost is not modeled here — the pipeline layer prices every
//! exchange launch with [`gsuite_profile::Interconnect`] (`α + β·bytes`)
//! instead of the kernel profiler, since transfer time is dominated by
//! the interconnect, not by device-side stores.

use gsuite_gpu::{Grid, KernelWorkload, TraceBuf, TraceBuilder};

use super::{warp_window, CTA_THREADS};

/// Workload descriptor of one halo-feature transfer into a device.
#[derive(Debug, Clone)]
pub struct ExchangeKernel {
    /// Elements (f32 feature values) transferred.
    pub elems: u64,
    /// Base address of the staging buffer receiving the rows.
    pub dst_base: u64,
}

impl ExchangeKernel {
    /// A transfer of `elems` feature values into `dst_base`.
    pub fn new(elems: u64, dst_base: u64) -> Self {
        ExchangeKernel { elems, dst_base }
    }

    /// Bytes moved over the link.
    pub fn bytes(&self) -> u64 {
        self.elems * 4
    }
}

impl KernelWorkload for ExchangeKernel {
    fn name(&self) -> String {
        "exchange".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::cover(self.elems, CTA_THREADS as u32)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let Some((t0, active)) = warp_window(cta, warp, self.elems) else {
            return;
        };
        // Store-only stream: the copy engine lands incoming rows.
        let mut tb = TraceBuilder::on(buf, active);
        let incoming = tb.int(&[]);
        tb.store_lanes(incoming, self.dst_base + t0 * 4, 4);
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    #[test]
    fn exchange_is_a_store_only_stream() {
        let k = ExchangeKernel::new(64, 0x9000);
        let t = k.trace(0, 0);
        assert!(t.iter().any(|i| i.class == InstrClass::StoreGlobal));
        assert!(!t.iter().any(|i| i.class == InstrClass::LoadGlobal));
        assert_eq!(k.bytes(), 256);
        assert_eq!(k.name(), "exchange");
    }

    #[test]
    fn grid_covers_the_transfer() {
        let k = ExchangeKernel::new(300, 0);
        assert_eq!(k.grid().ctas, 3);
        assert!(k.trace(2, 3).is_empty(), "tail warp past the end is idle");
    }
}
