//! The `scatter` kernel: reduces edge-message rows into destination nodes
//! with atomic read-modify-writes (paper Table II, Fig. 2 left).

use std::sync::Arc;

use gsuite_gpu::{Grid, Instr, KernelWorkload, TraceBuilder};
use gsuite_tensor::ops::Reduce;

use super::{warp_window, CTA_THREADS};

/// Workload descriptor for one `scatter` launch.
///
/// Input element `t` (row-major over `[E, f]`) is atomically reduced into
/// `out[index[t / f]][t % f]`. The atomic destination pattern follows the
/// *live* edge index, so hot destinations of a power-law graph serialize in
/// the simulator's atomic unit — the contention the paper calls out when it
/// recommends "architectural support for more efficient synchronization".
///
/// A degree-count variant ([`ScatterKernel::degrees`]) omits the input load
/// (it scatters the constant 1, as the GCN pipeline's first stage does in
/// Fig. 2).
#[derive(Debug, Clone)]
pub struct ScatterKernel {
    /// Destination endpoint per edge.
    pub index: Arc<Vec<u32>>,
    /// Base address of the endpoint array.
    pub index_base: u64,
    /// Base address of the `[E, f]` input rows; `None` scatters a constant.
    pub in_base: Option<u64>,
    /// Feature width `f`.
    pub feat: usize,
    /// Base address of the `[out_rows, f]` output.
    pub out_base: u64,
    /// Number of output rows.
    pub out_rows: usize,
    /// Reduction mode (affects only the functional twin; sum/mean/max all
    /// use one atomic RMW per element on the device).
    pub reduce: Reduce,
}

/// Elements processed per thread (grid-stride coarsening), matching the
/// gather side so each warp keeps several independent accesses in flight.
pub const SC_COARSEN: u64 = 4;

impl ScatterKernel {
    /// The degree-count variant: scatters the constant 1 per edge
    /// (`feat = 1`, no input load).
    pub fn degrees(
        index: Arc<Vec<u32>>,
        index_base: u64,
        out_base: u64,
        out_rows: usize,
    ) -> Self {
        ScatterKernel {
            index,
            index_base,
            in_base: None,
            feat: 1,
            out_base,
            out_rows,
            reduce: Reduce::Sum,
        }
    }

    /// Total input elements (`E * f`).
    pub fn total_elements(&self) -> u64 {
        self.index.len() as u64 * self.feat as u64
    }

    fn groups(&self, cta: u64, warp: u32) -> Vec<(u64, usize)> {
        let total = self.total_elements();
        let threads = total.div_ceil(SC_COARSEN);
        let Some((thread0, _)) = warp_window(cta, warp, threads) else {
            return Vec::new();
        };
        let e_base = thread0 * SC_COARSEN;
        (0..SC_COARSEN)
            .map(|g| e_base + g * 32)
            .filter(|&start| start < total)
            .map(|start| (start, ((total - start).min(32)) as usize))
            .collect()
    }
}

impl KernelWorkload for ScatterKernel {
    fn name(&self) -> String {
        "scatter".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::cover(
            self.total_elements().div_ceil(SC_COARSEN),
            CTA_THREADS as u32,
        )
    }

    fn trace(&self, cta: u64, warp: u32) -> Vec<Instr> {
        let f = self.feat as u64;
        let groups = self.groups(cta, warp);
        if groups.is_empty() {
            return Vec::new();
        }
        let mut tb = TraceBuilder::new(groups[0].1);
        let e_reg = tb.int(&[]);
        // Phase 1: destination-index loads for every group, each with its
        // SASS-level address arithmetic (element IMAD + base add).
        let mut idx_regs = Vec::with_capacity(groups.len());
        for &(t0, active) in &groups {
            tb.set_active(active);
            let ea = tb.int(&[e_reg]);
            tb.int(&[ea]);
            let idx_addrs: Vec<u64> = (0..active as u64)
                .map(|l| self.index_base + ((t0 + l) / f) * 4)
                .collect();
            idx_regs.push(tb.load_gather(&idx_addrs, 4, &[ea]));
        }
        // Phase 2: message loads (coalesced), unless scattering a constant.
        let mut values = Vec::with_capacity(groups.len());
        for &(t0, active) in &groups {
            tb.set_active(active);
            values.push(match self.in_base {
                Some(base) => {
                    tb.int(&[]);
                    tb.load_lanes(base + t0 * 4, 4)
                }
                None => tb.int(&[]),
            });
        }
        // Phase 3: atomic reduces with the graph's true collision pattern
        // (row*f IMAD + column add per access).
        for ((&(t0, active), &value), &idx_reg) in
            groups.iter().zip(&values).zip(&idx_regs)
        {
            tb.set_active(active);
            let ra = tb.int(&[idx_reg]);
            tb.int(&[ra]);
            let out_addrs: Vec<u64> = (0..active as u64)
                .map(|l| {
                    let t = t0 + l;
                    let row = self.index[(t / f) as usize] as u64;
                    self.out_base + (row * f + t % f) * 4
                })
                .collect();
            tb.atomic_scatter(value, &out_addrs, 4);
        }
        tb.control();
        tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    fn kernel(edges: usize, feat: usize) -> ScatterKernel {
        ScatterKernel {
            index: Arc::new((0..edges as u32).map(|e| e % 5).collect()),
            index_base: 0x2000,
            in_base: Some(0x20_0000),
            feat,
            out_base: 0x90_0000,
            out_rows: 5,
            reduce: Reduce::Sum,
        }
    }

    #[test]
    fn trace_has_atomic_not_store() {
        let t = kernel(8, 4).trace(0, 0);
        assert!(t.iter().any(|i| i.class == InstrClass::AtomicGlobal));
        assert!(!t.iter().any(|i| i.class == InstrClass::StoreGlobal));
    }

    #[test]
    fn hot_destination_produces_duplicate_sectors() {
        // All edges point at node 0: every lane of the atomic hits the same
        // output row.
        let k = ScatterKernel {
            index: Arc::new(vec![0; 64]),
            index_base: 0,
            in_base: Some(0x1000),
            feat: 1,
            out_base: 0x20_0000,
            out_rows: 4,
            reduce: Reduce::Sum,
        };
        let t = k.trace(0, 0);
        let atomic = t
            .iter()
            .find(|i| i.class == InstrClass::AtomicGlobal)
            .unwrap();
        let mut lanes = Vec::new();
        atomic.mem.as_ref().unwrap().lane_sectors_into(&mut lanes);
        assert_eq!(lanes.len(), 32);
        assert!(lanes.windows(2).all(|w| w[0] == w[1]), "all lanes collide");
    }

    #[test]
    fn degree_variant_has_no_input_load() {
        let k = ScatterKernel::degrees(Arc::new(vec![1, 2, 3]), 0, 0x100, 4);
        let t = k.trace(0, 0);
        let loads = t
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        assert_eq!(loads, 1, "only the index load remains");
        assert_eq!(k.feat, 1);
    }

    #[test]
    fn grid_matches_element_count() {
        let k = kernel(1000, 3);
        assert_eq!(k.total_elements(), 3000);
        assert_eq!(
            k.grid().ctas,
            3000u64.div_ceil(SC_COARSEN).div_ceil(CTA_THREADS)
        );
    }

    #[test]
    fn out_of_range_warp_is_empty() {
        let k = kernel(1, 1);
        assert!(k.trace(0, 1).is_empty());
    }
}
