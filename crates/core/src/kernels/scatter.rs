//! The `scatter` kernel: reduces edge-message rows into destination nodes
//! with atomic read-modify-writes (paper Table II, Fig. 2 left).

use std::sync::Arc;

use gsuite_gpu::{Grid, KernelWorkload, Reg, TraceBuf, TraceBuilder};
use gsuite_tensor::ops::Reduce;

use super::CTA_THREADS;

/// Workload descriptor for one `scatter` launch.
///
/// Input element `t` (row-major over `[E, f]`) is atomically reduced into
/// `out[index[t / f]][t % f]`. The atomic destination pattern follows the
/// *live* edge index, so hot destinations of a power-law graph serialize in
/// the simulator's atomic unit — the contention the paper calls out when it
/// recommends "architectural support for more efficient synchronization".
///
/// A degree-count variant ([`ScatterKernel::degrees`]) omits the input load
/// (it scatters the constant 1, as the GCN pipeline's first stage does in
/// Fig. 2).
#[derive(Debug, Clone)]
pub struct ScatterKernel {
    /// Destination endpoint per edge.
    pub index: Arc<Vec<u32>>,
    /// Base address of the endpoint array.
    pub index_base: u64,
    /// Base address of the `[E, f]` input rows; `None` scatters a constant.
    pub in_base: Option<u64>,
    /// Feature width `f`.
    pub feat: usize,
    /// Base address of the `[out_rows, f]` output.
    pub out_base: u64,
    /// Number of output rows.
    pub out_rows: usize,
    /// Reduction mode (affects only the functional twin; sum/mean/max all
    /// use one atomic RMW per element on the device).
    pub reduce: Reduce,
}

/// Elements processed per thread (grid-stride coarsening), matching the
/// gather side so each warp keeps several independent accesses in flight.
pub const SC_COARSEN: u64 = 4;

impl ScatterKernel {
    /// The degree-count variant: scatters the constant 1 per edge
    /// (`feat = 1`, no input load).
    pub fn degrees(index: Arc<Vec<u32>>, index_base: u64, out_base: u64, out_rows: usize) -> Self {
        ScatterKernel {
            index,
            index_base,
            in_base: None,
            feat: 1,
            out_base,
            out_rows,
            reduce: Reduce::Sum,
        }
    }

    /// Total input elements (`E * f`).
    pub fn total_elements(&self) -> u64 {
        self.index.len() as u64 * self.feat as u64
    }

    fn groups(&self, cta: u64, warp: u32) -> super::CoarsenedGroups<{ SC_COARSEN as usize }> {
        super::coarsened_groups(cta, warp, self.total_elements())
    }
}

impl KernelWorkload for ScatterKernel {
    fn name(&self) -> String {
        "scatter".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::cover(
            self.total_elements().div_ceil(SC_COARSEN),
            CTA_THREADS as u32,
        )
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let f = self.feat as u64;
        let (groups, ngroups) = self.groups(cta, warp);
        let groups = &groups[..ngroups];
        if groups.is_empty() {
            return;
        }
        let mut tb = TraceBuilder::on(buf, groups[0].1);
        let e_reg = tb.int(&[]);
        // Phase 1: destination-index loads for every group, each with its
        // SASS-level address arithmetic (element IMAD + base add).
        let mut idx_regs = [0 as Reg; SC_COARSEN as usize];
        for (g, &(t0, active)) in groups.iter().enumerate() {
            tb.set_active(active);
            let ea = tb.int(&[e_reg]);
            tb.int(&[ea]);
            idx_regs[g] = tb.load_gather_with(4, &[ea], |l| self.index_base + ((t0 + l) / f) * 4);
        }
        // Phase 2: message loads (coalesced), unless scattering a constant.
        let mut values = [0 as Reg; SC_COARSEN as usize];
        for (g, &(t0, active)) in groups.iter().enumerate() {
            tb.set_active(active);
            values[g] = match self.in_base {
                Some(base) => {
                    tb.int(&[]);
                    tb.load_lanes(base + t0 * 4, 4)
                }
                None => tb.int(&[]),
            };
        }
        // Phase 3: atomic reduces with the graph's true collision pattern
        // (row*f IMAD + column add per access).
        for (g, &(t0, active)) in groups.iter().enumerate() {
            tb.set_active(active);
            let ra = tb.int(&[idx_regs[g]]);
            tb.int(&[ra]);
            tb.atomic_scatter_with(values[g], 4, |l| {
                let t = t0 + l;
                let row = self.index[(t / f) as usize] as u64;
                self.out_base + (row * f + t % f) * 4
            });
        }
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    fn kernel(edges: usize, feat: usize) -> ScatterKernel {
        ScatterKernel {
            index: Arc::new((0..edges as u32).map(|e| e % 5).collect()),
            index_base: 0x2000,
            in_base: Some(0x20_0000),
            feat,
            out_base: 0x90_0000,
            out_rows: 5,
            reduce: Reduce::Sum,
        }
    }

    #[test]
    fn trace_has_atomic_not_store() {
        let t = kernel(8, 4).trace(0, 0);
        assert!(t.iter().any(|i| i.class == InstrClass::AtomicGlobal));
        assert!(!t.iter().any(|i| i.class == InstrClass::StoreGlobal));
    }

    #[test]
    fn hot_destination_produces_duplicate_sectors() {
        // All edges point at node 0: every lane of the atomic hits the same
        // output row.
        let k = ScatterKernel {
            index: Arc::new(vec![0; 64]),
            index_base: 0,
            in_base: Some(0x1000),
            feat: 1,
            out_base: 0x20_0000,
            out_rows: 4,
            reduce: Reduce::Sum,
        };
        let t = k.trace(0, 0);
        let atomic_idx = (0..t.len())
            .find(|&i| t[i].class == InstrClass::AtomicGlobal)
            .unwrap();
        let mut lanes = Vec::new();
        t.mem_at(atomic_idx).unwrap().lane_sectors_into(&mut lanes);
        assert_eq!(lanes.len(), 32);
        assert!(lanes.windows(2).all(|w| w[0] == w[1]), "all lanes collide");
    }

    #[test]
    fn degree_variant_has_no_input_load() {
        let k = ScatterKernel::degrees(Arc::new(vec![1, 2, 3]), 0, 0x100, 4);
        let t = k.trace(0, 0);
        let loads = t
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        assert_eq!(loads, 1, "only the index load remains");
        assert_eq!(k.feat, 1);
    }

    #[test]
    fn grid_matches_element_count() {
        let k = kernel(1000, 3);
        assert_eq!(k.total_elements(), 3000);
        assert_eq!(
            k.grid().ctas,
            3000u64.div_ceil(SC_COARSEN).div_ceil(CTA_THREADS)
        );
    }

    #[test]
    fn out_of_range_warp_is_empty() {
        let k = kernel(1, 1);
        assert!(k.trace(0, 1).is_empty());
    }
}
