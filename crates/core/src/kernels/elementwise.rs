//! Elementwise glue kernels: activations, residual combines and the
//! mean-divide of scatter-mean. These are the small wrapper launches GNN
//! frameworks insert between the Table II primitives (reported as "other"
//! in the paper's kernel-time figures).

use gsuite_gpu::{Grid, KernelWorkload, TraceBuf, TraceBuilder};

use super::{warp_window, CTA_THREADS};

/// The elementwise operation variants pipelines need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EwOp {
    /// `out = max(a, 0)` — the Θ activation between layers.
    Relu,
    /// `out = alpha * a + b` — GIN's `(1 + ε)·h + aggregate` combine and
    /// GraphSAGE's `W1·h + W2·mean` merge.
    Axpy,
    /// `out[v][c] = a[v][c] * s[v]` — per-row scaling (mean-divide,
    /// degree normalization).
    RowScale,
    /// `out = a` — a bare copy (framework wrapper kernels: dtype casts,
    /// contiguous-layout fixups).
    Copy,
}

impl EwOp {
    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            EwOp::Relu => "relu",
            EwOp::Axpy => "axpy",
            EwOp::RowScale => "rowscale",
            EwOp::Copy => "copy",
        }
    }
}

/// Workload descriptor for one elementwise launch over `elems` elements of
/// a `[rows, feat]` row-major buffer.
#[derive(Debug, Clone)]
pub struct ElementwiseKernel {
    /// Operation variant.
    pub op: EwOp,
    /// Base address of input `a`.
    pub a_base: u64,
    /// Base address of input `b` (Axpy only).
    pub b_base: Option<u64>,
    /// Base address of the per-row scale vector (RowScale only).
    pub s_base: Option<u64>,
    /// Base address of the output.
    pub out_base: u64,
    /// Total elements.
    pub elems: u64,
    /// Feature width (row length) — used by RowScale's row lookup.
    pub feat: usize,
}

impl ElementwiseKernel {
    /// A ReLU over `elems` elements.
    pub fn relu(a_base: u64, out_base: u64, elems: u64) -> Self {
        ElementwiseKernel {
            op: EwOp::Relu,
            a_base,
            b_base: None,
            s_base: None,
            out_base,
            elems,
            feat: 1,
        }
    }

    /// `out = alpha*a + b` over `elems` elements.
    pub fn axpy(a_base: u64, b_base: u64, out_base: u64, elems: u64) -> Self {
        ElementwiseKernel {
            op: EwOp::Axpy,
            a_base,
            b_base: Some(b_base),
            s_base: None,
            out_base,
            elems,
            feat: 1,
        }
    }

    /// `out[v][c] = a[v][c] * s[v]` over a `[rows, feat]` buffer.
    pub fn row_scale(a_base: u64, s_base: u64, out_base: u64, elems: u64, feat: usize) -> Self {
        ElementwiseKernel {
            op: EwOp::RowScale,
            a_base,
            b_base: None,
            s_base: Some(s_base),
            out_base,
            elems,
            feat: feat.max(1),
        }
    }

    /// A bare copy (framework wrapper).
    pub fn copy(a_base: u64, out_base: u64, elems: u64) -> Self {
        ElementwiseKernel {
            op: EwOp::Copy,
            a_base,
            b_base: None,
            s_base: None,
            out_base,
            elems,
            feat: 1,
        }
    }
}

impl KernelWorkload for ElementwiseKernel {
    fn name(&self) -> String {
        format!("elementwise-{}", self.op.label())
    }

    fn grid(&self) -> Grid {
        Grid::cover(self.elems, CTA_THREADS as u32)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let Some((t0, active)) = warp_window(cta, warp, self.elems) else {
            return;
        };
        let mut tb = TraceBuilder::on(buf, active);
        tb.int(&[]);
        let a = tb.load_lanes(self.a_base + t0 * 4, 4);
        let result = match self.op {
            EwOp::Relu => tb.fp32(&[a]),
            EwOp::Copy => a,
            EwOp::Axpy => {
                let b = tb.load_lanes(self.b_base.expect("axpy has b") + t0 * 4, 4);
                let scaled = tb.fp32(&[a]);
                tb.fp32(&[scaled, b])
            }
            EwOp::RowScale => {
                let f = self.feat as u64;
                let s_base = self.s_base.expect("rowscale has s");
                let s = tb.load_gather_with(4, &[], |l| s_base + ((t0 + l) / f) * 4);
                tb.fp32(&[a, s])
            }
        };
        tb.store_lanes(result, self.out_base + t0 * 4, 4);
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    #[test]
    fn relu_is_load_op_store() {
        let k = ElementwiseKernel::relu(0x100, 0x2000, 64);
        let t = k.trace(0, 0);
        let classes: Vec<InstrClass> = t.iter().map(|i| i.class).collect();
        assert!(classes.contains(&InstrClass::LoadGlobal));
        assert!(classes.contains(&InstrClass::Fp32));
        assert!(classes.contains(&InstrClass::StoreGlobal));
    }

    #[test]
    fn axpy_loads_both_operands() {
        let k = ElementwiseKernel::axpy(0x100, 0x200, 0x300, 32);
        let loads = k
            .trace(0, 0)
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn row_scale_gathers_per_row() {
        let k = ElementwiseKernel::row_scale(0x100, 0x9000, 0x300, 64, 8);
        let t = k.trace(0, 0);
        let gather_idx = (0..t.len())
            .filter(|&i| t[i].class == InstrClass::LoadGlobal)
            .nth(1)
            .unwrap();
        let mut addrs = Vec::new();
        t.mem_at(gather_idx).unwrap().lane_addrs(&mut addrs);
        // 8-wide rows: lanes 0..7 share row 0's scale, lanes 8..15 row 1's.
        assert_eq!(addrs[0], 0x9000);
        assert_eq!(addrs[7], 0x9000);
        assert_eq!(addrs[8], 0x9004);
    }

    #[test]
    fn copy_has_no_arithmetic() {
        let k = ElementwiseKernel::copy(0, 0x1000, 32);
        let fp = k
            .trace(0, 0)
            .iter()
            .filter(|i| i.class == InstrClass::Fp32)
            .count();
        assert_eq!(fp, 0);
    }

    #[test]
    fn grid_and_tail() {
        let k = ElementwiseKernel::relu(0, 0x1000, 130);
        assert_eq!(k.grid().ctas, 2);
        let tail = k.trace(1, 0);
        assert_eq!(tail[0].active, 2, "130 - 128 = 2 tail elements");
        assert!(k.trace(1, 1).is_empty());
    }

    #[test]
    fn names_include_variant() {
        assert_eq!(ElementwiseKernel::relu(0, 0, 1).name(), "elementwise-relu");
        assert_eq!(EwOp::RowScale.label(), "rowscale");
    }
}
