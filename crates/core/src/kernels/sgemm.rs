//! The `sgemm` kernel: dense `C = A · B` — every model's linear/Θ step
//! (paper Table II).

use gsuite_gpu::{Grid, KernelWorkload, TraceBuf, TraceBuilder};

/// Workload descriptor for one `sgemm` launch (`[m,k] x [k,n] -> [m,n]`).
///
/// Mapping mirrors register-blocked library GEMMs: each lane accumulates 4
/// outputs, each warp covers 128 consecutive outputs of `C`, each 4-warp CTA
/// covers 512. Deep reductions are split-K (`k_strip`): separate CTAs cover
/// K strips and accumulate into `C` with atomics, which bounds per-warp
/// trace length and matches what cuBLAS does for tall-skinny shapes.
#[derive(Debug, Clone)]
pub struct SgemmKernel {
    /// Rows of `A`/`C`.
    pub m: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Columns of `B`/`C`.
    pub n: usize,
    /// Base address of `A` (`[m, k]`, row-major).
    pub a_base: u64,
    /// Base address of `B` (`[k, n]`, row-major).
    pub b_base: u64,
    /// Base address of `C` (`[m, n]`, row-major).
    pub c_base: u64,
    /// K-strip length for split-K (set to `k` to disable splitting).
    pub k_strip: usize,
    /// Fuse a ReLU at the store (the paper's Θ activation).
    pub relu: bool,
}

/// Outputs accumulated per lane.
const OUTS_PER_LANE: u64 = 4;
/// Outputs covered by one warp.
const OUTS_PER_WARP: u64 = 32 * OUTS_PER_LANE;
/// Outputs covered by one 4-warp CTA.
const OUTS_PER_CTA: u64 = 4 * OUTS_PER_WARP;

impl SgemmKernel {
    /// A kernel with the default split-K policy (strips of 256 once
    /// `k > 512`).
    pub fn new(m: usize, k: usize, n: usize, a_base: u64, b_base: u64, c_base: u64) -> Self {
        let k_strip = if k > 512 { 256 } else { k.max(1) };
        SgemmKernel {
            m,
            k,
            n,
            a_base,
            b_base,
            c_base,
            k_strip,
            relu: false,
        }
    }

    /// Enables the fused ReLU at the store.
    pub fn with_relu(mut self, relu: bool) -> Self {
        self.relu = relu;
        self
    }

    fn output_tiles(&self) -> u64 {
        ((self.m * self.n) as u64).div_ceil(OUTS_PER_CTA).max(1)
    }

    fn k_strips(&self) -> u64 {
        (self.k as u64).div_ceil(self.k_strip.max(1) as u64).max(1)
    }

    /// Whether split-K accumulation (atomic stores) is active.
    pub fn is_split_k(&self) -> bool {
        self.k_strips() > 1
    }
}

impl KernelWorkload for SgemmKernel {
    fn name(&self) -> String {
        "sgemm".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::new(self.output_tiles() * self.k_strips(), 4)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let total_outs = (self.m * self.n) as u64;
        let tiles = self.output_tiles();
        let tile = cta % tiles;
        let strip = cta / tiles;
        let out0 = tile * OUTS_PER_CTA + warp as u64 * OUTS_PER_WARP;
        if out0 >= total_outs || self.k == 0 {
            return;
        }
        let nouts = (total_outs - out0).min(OUTS_PER_WARP);
        let active = nouts.div_ceil(OUTS_PER_LANE).min(32) as usize;
        let segments = nouts.div_ceil(32) as usize; // 32-wide B/C segments
        let n = self.n as u64;
        let row = out0 / n;
        let col0 = out0 % n;
        let k0 = strip as usize * self.k_strip;
        let k1 = self.k.min(k0 + self.k_strip);

        let mut tb = TraceBuilder::on(buf, active);
        tb.int(&[]);
        tb.int(&[]);
        // Shared-memory tile staging, as library GEMMs do: every TILE_K
        // k-steps the CTA cooperatively stages an A sliver and a B tile
        // through shared memory (this warp's share: 2 + `segments` global
        // loads guarded by a barrier), then runs TILE_K iterations of FMAs
        // against the staged data. Four rotating accumulators break the
        // FMA dependency chain. The stage-register window is a fixed array
        // (at most 2 rows x 4 segments) — no per-tile allocation.
        const TILE_K: usize = 8;
        let mut accs = [tb.fp32(&[]), tb.fp32(&[]), tb.fp32(&[]), tb.fp32(&[])];
        let mut kk = k0;
        let mut step = 0usize;
        while kk < k1 {
            let tile_end = k1.min(kk + TILE_K);
            // Stage the A sliver (row, kk..tile_end).
            let a_addr = self.a_base + (row * self.k as u64 + kk as u64) * 4;
            let a_reg = tb.load_strided(a_addr, 4, 4);
            let a2 = tb.load_strided(a_addr + 16, 4, 4);
            // Stage this warp's share of the B tile: two staged rows per
            // segment (the other rows are loaded by sibling warps).
            let mut stage = [0u8; 8];
            let mut staged = 0usize;
            for krow in [kk, (kk + TILE_K / 2).min(tile_end - 1)] {
                for seg in 0..segments {
                    let seg_cols = (nouts - seg as u64 * 32).min(32) as usize;
                    let base = self.b_base + (krow as u64 * n + col0 + seg as u64 * 32) * 4;
                    tb.set_active(seg_cols.max(1));
                    stage[staged % stage.len()] = tb.load_strided(base, 4, 4);
                    staged += 1;
                    tb.set_active(active);
                }
            }
            tb.sync(); // tile visible to the whole CTA
            let b_reg = if staged > 0 {
                stage[(staged - 1) % stage.len()]
            } else {
                a2
            };
            for _ in kk..tile_end {
                tb.int(&[]); // shared-memory pointer arithmetic
                for seg in 0..segments {
                    let lane = (step + seg) % accs.len();
                    accs[lane] = tb.fp32(&[a_reg, b_reg, accs[lane]]);
                }
                step += 1;
            }
            tb.control(); // tile-loop bookkeeping
            kk = tile_end;
        }
        // Reduce the accumulators.
        let r1 = tb.fp32(&[accs[0], accs[1]]);
        let r2 = tb.fp32(&[accs[2], accs[3]]);
        let mut acc = tb.fp32(&[r1, r2]);
        if self.relu && !self.is_split_k() {
            acc = tb.fp32(&[acc]);
        }
        // Store (or atomically accumulate) the C segment.
        for seg in 0..segments {
            let seg_cols = (nouts - seg as u64 * 32).min(32) as usize;
            let base = self.c_base + (row * n + col0 + seg as u64 * 32) * 4;
            tb.set_active(seg_cols.max(1));
            if self.is_split_k() {
                tb.atomic_scatter_with(acc, 4, |l| base + l * 4);
            } else {
                tb.store_lanes(acc, base, 4);
            }
        }
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::{InstrClass, MemRef};

    fn kernel(m: usize, k: usize, n: usize) -> SgemmKernel {
        SgemmKernel::new(m, k, n, 0x1000, 0x100_000, 0x800_000)
    }

    #[test]
    fn small_gemm_is_single_strip() {
        let g = kernel(16, 64, 8);
        assert!(!g.is_split_k());
        assert_eq!(g.grid().ctas, 1, "128 outputs fit one CTA");
        let t = g.trace(0, 0);
        // Warp 0 owns all 128 outputs (4 segments): per 8-deep k-tile the
        // warp stages 2 A loads + 2x4 B loads, then runs 8x4 FMAs.
        let loads = t
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        assert_eq!(loads, (64 / 8) * (2 + 2 * 4));
        let fmas = t.iter().filter(|i| i.class == InstrClass::Fp32).count();
        assert_eq!(
            fmas,
            64 * 4 + 4 + 3,
            "one FMA per segment-step, 4 accumulator inits, 3 reduce ops"
        );
        let syncs = t.iter().filter(|i| i.class == InstrClass::Sync).count();
        assert_eq!(syncs, 8, "one barrier per staged tile");
        assert!(t.iter().any(|i| i.class == InstrClass::StoreGlobal));
        // The mix must be FP32-dominated (the paper's Fig. 5 shape).
        assert!(
            fmas * 2 > t.len(),
            "sgemm should be >50% FP32: {fmas}/{}",
            t.len()
        );
    }

    #[test]
    fn deep_k_splits_and_accumulates_atomically() {
        let g = kernel(64, 2048, 64);
        assert!(g.is_split_k());
        assert_eq!(g.grid().ctas, g.output_tiles() * 8);
        let t = g.trace(0, 0);
        assert!(
            t.iter().any(|i| i.class == InstrClass::AtomicGlobal),
            "split-K accumulates with atomics"
        );
        // Each strip is bounded, keeping traces small.
        assert!(t.len() < 256 * 12);
    }

    #[test]
    fn relu_adds_one_fp32() {
        let plain = kernel(8, 16, 16);
        let relu = kernel(8, 16, 16).with_relu(true);
        let a = plain.trace(0, 0).len();
        let b = relu.trace(0, 0).len();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn tail_warp_handles_partial_outputs() {
        // 8x8 = 64 outputs: warp 0 covers all 64 (128 capacity), warp 1 none.
        let g = kernel(8, 4, 8);
        assert!(!g.trace(0, 0).is_empty());
        assert!(g.trace(0, 1).is_empty());
    }

    #[test]
    fn b_loads_are_coalesced() {
        let g = kernel(32, 8, 128);
        let t = g.trace(0, 0);
        // Loads per tile: 2 A stages then the B stages; all coalesced.
        let b_load = t
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .nth(2)
            .unwrap();
        match b_load.mem {
            MemRef::Strided { stride, .. } => assert_eq!(stride, 4),
            other => panic!("expected strided B load, got {other:?}"),
        }
    }

    #[test]
    fn zero_k_yields_empty_trace() {
        let g = SgemmKernel::new(4, 0, 4, 0, 0, 0);
        assert!(g.trace(0, 0).is_empty());
    }
}
