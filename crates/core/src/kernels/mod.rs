//! The gSuite core kernels (paper Table II).
//!
//! | kernel | comp. model | short | description |
//! |---|---|---|---|
//! | [`IndexSelectKernel`] | MP   | `is` | gathers node rows along the edge index |
//! | [`ScatterKernel`]     | MP   | `sc` | reduces edge rows into destination nodes (atomics) |
//! | [`SgemmKernel`]       | both | `sg` | dense matrix multiply (the linear/Θ step) |
//! | [`SpmmKernel`]        | SpMM | `sp` | CSR × dense multiply (aggregation) |
//! | [`SpgemmKernel`]      | SpMM | `sp` | CSR × CSR multiply (the normalization chain) |
//! | [`ElementwiseKernel`] | both | `ew` | activation / combine / mean-divide glue |
//!
//! Each kernel struct is a *workload descriptor*: it holds the buffer base
//! addresses and the index/structure arrays of one concrete launch and
//! implements [`gsuite_gpu::KernelWorkload`], generating warp traces whose
//! memory addresses come from the live graph data. The functional twin of
//! every kernel lives in [`gsuite_tensor::ops`] (`gather_rows`,
//! `scatter_rows`, `gemm`, `spmm`, `spgemm`); the model builders in
//! [`crate::models`] call both sides from the same inputs, and the test
//! suite asserts they stay in lock-step (instruction counts vs element
//! counts, trace coverage vs output shapes).
//!
//! Thread mappings follow the standard CUDA implementations the paper
//! imitates (PyG's MP kernels, cuSPARSE-style SpMM): element-parallel
//! 128-thread CTAs for gather/scatter, warp-per-row-chunk with 32-column
//! strips for sparse ops, and a 4-outputs-per-lane register-blocked GEMM
//! with split-K for deep reductions.

mod elementwise;
mod exchange;
mod index_select;
mod scatter;
mod sgemm;
mod spgemm;
mod spmm;

pub use elementwise::{ElementwiseKernel, EwOp};
pub use exchange::ExchangeKernel;
pub use index_select::{GcnEdgeScale, IndexSelectKernel};
pub use scatter::ScatterKernel;
pub use sgemm::SgemmKernel;
pub use spgemm::SpgemmKernel;
pub use spmm::SpmmKernel;

use std::sync::Arc;

use gsuite_gpu::KernelWorkload;
use serde::{Deserialize, Serialize};

/// Threads per CTA for element-parallel kernels.
pub const CTA_THREADS: u64 = 128;
/// Warps per CTA for element-parallel kernels.
pub const CTA_WARPS: u32 = (CTA_THREADS / 32) as u32;

/// Kernel taxonomy used for grouping in figures (paper Table II names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// `indexSelect` (MP gather).
    IndexSelect,
    /// `scatter` (MP reduce).
    Scatter,
    /// `sgemm` (dense linear).
    Sgemm,
    /// `SpMM` (sparse × dense).
    Spmm,
    /// `SpGEMM` (sparse × sparse).
    Spgemm,
    /// Elementwise glue (activations, combines) — the figures' "other".
    Elementwise,
    /// Halo-feature transfer between modeled devices (sharded multi-GPU
    /// runs only; priced by the interconnect model, never emitted on
    /// single-device pipelines).
    Exchange,
}

impl KernelKind {
    /// The paper's kernel name.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::IndexSelect => "indexSelect",
            KernelKind::Scatter => "scatter",
            KernelKind::Sgemm => "sgemm",
            KernelKind::Spmm => "SpMM",
            KernelKind::Spgemm => "SpGEMM",
            KernelKind::Elementwise => "other",
            KernelKind::Exchange => "exchange",
        }
    }

    /// The paper's two-letter short form.
    pub fn short(self) -> &'static str {
        match self {
            KernelKind::IndexSelect => "is",
            KernelKind::Scatter => "sc",
            KernelKind::Sgemm => "sg",
            KernelKind::Spmm => "sp",
            KernelKind::Spgemm => "sp",
            KernelKind::Elementwise => "ew",
            KernelKind::Exchange => "ex",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded kernel launch of a pipeline: its taxonomy plus the workload
/// that regenerates its GPU behaviour on demand.
#[derive(Clone)]
pub struct Launch {
    /// Kernel taxonomy for grouping.
    pub kind: KernelKind,
    /// The trace-generating workload.
    pub workload: Arc<dyn KernelWorkload + Send + Sync>,
}

impl Launch {
    /// Wraps a workload under its kind.
    pub fn new(kind: KernelKind, workload: impl KernelWorkload + Send + Sync + 'static) -> Self {
        Launch {
            kind,
            workload: Arc::new(workload),
        }
    }
}

impl std::fmt::Debug for Launch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Launch")
            .field("kind", &self.kind)
            .field("kernel", &self.workload.name())
            .finish()
    }
}

/// Splits CSR rows into chunks of at most `cap` stored entries, returning
/// `(row, start_offset)` pairs — the row-splitting load balancer used by
/// the sparse kernels (hot power-law rows would otherwise monopolize one
/// warp). Rows with no entries produce no chunks.
pub(crate) fn row_chunks(row_ptr: &[u32], cap: u32) -> Vec<(u32, u32)> {
    let mut chunks = Vec::new();
    for r in 0..row_ptr.len().saturating_sub(1) {
        let start = row_ptr[r];
        let end = row_ptr[r + 1];
        let mut s = start;
        while s < end {
            chunks.push((r as u32, s));
            s += cap;
        }
    }
    chunks
}

/// The `(element0, active)` window of warp `warp` of CTA `cta` over a flat
/// iteration space of `total` elements, or `None` if the warp is past the
/// end.
#[inline]
pub(crate) fn warp_window(cta: u64, warp: u32, total: u64) -> Option<(u64, usize)> {
    let t0 = (cta * CTA_WARPS as u64 + warp as u64) * 32;
    if t0 >= total {
        return None;
    }
    Some((t0, ((total - t0).min(32)) as usize))
}

/// Fixed-size window list of a thread-coarsened warp: up to `COARSEN`
/// `(element0, active_lanes)` batches plus the populated count.
pub(crate) type CoarsenedGroups<const COARSEN: usize> = ([(u64, usize); COARSEN], usize);

/// The 32-element batches warp `(cta, warp)` covers when every thread
/// processes `COARSEN` grid-stride elements of a flat `total`-element
/// iteration space — the shared group builder of the element-parallel
/// gather/scatter kernels. Returns a fixed array (no allocation).
#[inline]
pub(crate) fn coarsened_groups<const COARSEN: usize>(
    cta: u64,
    warp: u32,
    total: u64,
) -> CoarsenedGroups<COARSEN> {
    let mut out = [(0u64, 0usize); COARSEN];
    let mut count = 0usize;
    let threads = total.div_ceil(COARSEN as u64);
    let Some((thread0, _)) = warp_window(cta, warp, threads) else {
        return (out, 0);
    };
    let e_base = thread0 * COARSEN as u64;
    for g in 0..COARSEN as u64 {
        let start = e_base + g * 32;
        if start < total {
            out[count] = (start, ((total - start).min(32)) as usize);
            count += 1;
        }
    }
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(KernelKind::IndexSelect.name(), "indexSelect");
        assert_eq!(KernelKind::Spmm.name(), "SpMM");
        assert_eq!(KernelKind::Sgemm.short(), "sg");
        assert_eq!(KernelKind::Scatter.short(), "sc");
    }

    #[test]
    fn row_chunks_split_hot_rows() {
        // rows: 0 -> 3 entries, 1 -> 0 entries, 2 -> 5 entries, cap 2
        let row_ptr = [0u32, 3, 3, 8];
        let chunks = row_chunks(&row_ptr, 2);
        assert_eq!(chunks, vec![(0, 0), (0, 2), (2, 3), (2, 5), (2, 7)]);
    }

    #[test]
    fn row_chunks_skip_empty_rows() {
        let row_ptr = [0u32, 0, 0, 1];
        assert_eq!(row_chunks(&row_ptr, 8), vec![(2, 0)]);
    }

    #[test]
    fn warp_window_covers_iteration_space() {
        let total = 300u64; // 2 CTAs x 4 warps x 32 = 256 < 300 -> 3 CTAs
        let mut covered = 0u64;
        for cta in 0..3 {
            for warp in 0..CTA_WARPS {
                if let Some((t0, active)) = warp_window(cta, warp, total) {
                    assert_eq!(t0 % 32, 0);
                    covered += active as u64;
                }
            }
        }
        assert_eq!(covered, total);
    }

    #[test]
    fn warp_window_past_end_is_none() {
        assert!(warp_window(10, 0, 32).is_none());
        assert!(warp_window(0, 1, 32).is_none());
        assert_eq!(warp_window(0, 0, 32), Some((0, 32)));
    }
}
