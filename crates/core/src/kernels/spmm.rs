//! The `SpMM` kernel: CSR × dense multiply — the SpMM computational
//! model's aggregation step (paper Table II, Fig. 2 right).

use std::sync::Arc;

use gsuite_gpu::{Grid, KernelWorkload, TraceBuf, TraceBuilder};

use super::row_chunks;

/// Entries processed per warp before a row is split (load balancing for
/// power-law rows).
pub const SPMM_CHUNK: u32 = 1024;

/// Workload descriptor for one `SpMM` launch
/// (`CSR[m,p] x dense[p,f] -> dense[m,f]`).
///
/// Mapping follows cuSPARSE-style row-parallel SpMM: each warp owns one
/// (row-chunk, 32-column strip) pair; lanes are feature columns. Row
/// lengths come from the live CSR structure, so load imbalance, the
/// gather pattern over `X` and the partial-warp divergence for narrow
/// features (`f < 32`, e.g. LiveJournal's `f = 1`) are all genuine.
#[derive(Debug, Clone)]
pub struct SpmmKernel {
    /// CSR row pointer of the sparse operand (`m + 1` entries).
    pub row_ptr: Arc<Vec<u32>>,
    /// CSR column indices.
    pub col_idx: Arc<Vec<u32>>,
    /// Whether stored values are loaded (false for unweighted copy-sum).
    pub has_values: bool,
    /// Base address of the row pointer array.
    pub rp_base: u64,
    /// Base address of the column index array.
    pub ci_base: u64,
    /// Base address of the values array.
    pub val_base: u64,
    /// Base address of the dense operand `X` (`[p, f]`).
    pub x_base: u64,
    /// Base address of the `[m, f]` output.
    pub out_base: u64,
    /// Feature width `f`.
    pub feat: usize,
    /// Pre-split (row, start) chunks.
    chunks: Arc<Vec<(u32, u32)>>,
}

impl SpmmKernel {
    /// Builds the kernel, pre-splitting rows into `SPMM_CHUNK`-entry
    /// chunks.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        row_ptr: Arc<Vec<u32>>,
        col_idx: Arc<Vec<u32>>,
        has_values: bool,
        rp_base: u64,
        ci_base: u64,
        val_base: u64,
        x_base: u64,
        out_base: u64,
        feat: usize,
    ) -> Self {
        let chunks = Arc::new(row_chunks(&row_ptr, SPMM_CHUNK));
        SpmmKernel {
            row_ptr,
            col_idx,
            has_values,
            rp_base,
            ci_base,
            val_base,
            x_base,
            out_base,
            feat,
            chunks,
        }
    }

    fn strips(&self) -> u64 {
        (self.feat as u64).div_ceil(32).max(1)
    }

    /// Total warps (chunks × column strips).
    pub fn total_warps(&self) -> u64 {
        self.chunks.len() as u64 * self.strips()
    }
}

impl KernelWorkload for SpmmKernel {
    fn name(&self) -> String {
        "SpMM".to_string()
    }

    fn grid(&self) -> Grid {
        Grid::new(self.total_warps().div_ceil(4).max(1), 4)
    }

    fn trace_into(&self, buf: &mut TraceBuf, cta: u64, warp: u32) {
        let widx = cta * 4 + warp as u64;
        if widx >= self.total_warps() {
            return;
        }
        let strips = self.strips();
        let chunk = (widx / strips) as usize;
        let strip = widx % strips;
        let (row, start) = self.chunks[chunk];
        let row_end = self.row_ptr[row as usize + 1];
        let end = row_end.min(start + SPMM_CHUNK);
        let f = self.feat as u64;
        let c0 = strip * 32;
        let active = (f - c0).clamp(1, 32) as usize;

        let mut tb = TraceBuilder::on(buf, active);
        // Row bounds.
        let rp = tb.load_strided(self.rp_base + row as u64 * 4, 0, 4);
        tb.load_strided(self.rp_base + (row as u64 + 1) * 4, 0, 4);
        tb.int(&[rp]);
        // Two-deep software pipeline with rotating accumulators: the loads
        // of entry j+2 are in flight while entry j's FMA executes, as real
        // SpMM kernels arrange. The in-flight window is a tiny fixed ring —
        // no heap allocation in the per-nnz loop.
        let mut accs = [tb.fp32(&[]), tb.fp32(&[]), tb.fp32(&[]), tb.fp32(&[])];
        let mut pipeline = [(0u8, None::<u8>); 3];
        let (mut head, mut len) = (0usize, 0usize);
        let mut fma_step = 0usize;
        for (step, j) in (start..end).enumerate() {
            let col = self.col_idx[j as usize] as u64;
            // Broadcast loads of the column index (and value).
            let col_reg = tb.load_strided(self.ci_base + j as u64 * 4, 0, 4);
            let val_reg = if self.has_values {
                Some(tb.load_strided(self.val_base + j as u64 * 4, 0, 4))
            } else {
                None
            };
            // Coalesced strip of X[col][c0 .. c0+active]; the address
            // depends on the loaded column index (row*f IMAD + base add).
            let addr_reg = tb.int(&[col_reg]);
            let x_base = self.x_base + (col * f + c0) * 4;
            let x_reg = tb.load_gather_with(4, &[addr_reg], |l| x_base + l * 4);
            pipeline[(head + len) % pipeline.len()] = (x_reg, val_reg);
            len += 1;
            if len > 2 {
                let (px, pv) = pipeline[head];
                head = (head + 1) % pipeline.len();
                len -= 1;
                let lane = fma_step % accs.len();
                fma_step += 1;
                accs[lane] = match pv {
                    Some(v) => tb.fp32(&[px, v, accs[lane]]),
                    None => tb.fp32(&[px, accs[lane]]),
                };
            }
            if step % 8 == 7 {
                tb.control();
            }
        }
        // Drain the pipeline.
        while len > 0 {
            let (px, pv) = pipeline[head];
            head = (head + 1) % pipeline.len();
            len -= 1;
            let lane = fma_step % accs.len();
            fma_step += 1;
            accs[lane] = match pv {
                Some(v) => tb.fp32(&[px, v, accs[lane]]),
                None => tb.fp32(&[px, accs[lane]]),
            };
        }
        let r1 = tb.fp32(&[accs[0], accs[1]]);
        let r2 = tb.fp32(&[accs[2], accs[3]]);
        let acc = tb.fp32(&[r1, r2]);
        // Output strip; chunked rows accumulate atomically.
        let out = self.out_base + (row as u64 * f + c0) * 4;
        let chunked = start > self.row_ptr[row as usize] || end < row_end;
        if chunked {
            tb.atomic_scatter_with(acc, 4, |l| out + l * 4);
        } else {
            tb.store_lanes(acc, out, 4);
        }
        tb.control();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::InstrClass;

    fn csr(row_lens: &[u32], cols: usize) -> (Arc<Vec<u32>>, Arc<Vec<u32>>) {
        let mut rp = vec![0u32];
        for &l in row_lens {
            rp.push(rp.last().unwrap() + l);
        }
        let nnz = *rp.last().unwrap() as usize;
        let ci: Vec<u32> = (0..nnz).map(|i| (i % cols) as u32).collect();
        (Arc::new(rp), Arc::new(ci))
    }

    fn kernel(row_lens: &[u32], feat: usize) -> SpmmKernel {
        let (rp, ci) = csr(row_lens, 7);
        SpmmKernel::new(
            rp, ci, true, 0x100, 0x1000, 0x2000, 0x10_000, 0x80_000, feat,
        )
    }

    #[test]
    fn warp_per_row_and_strip() {
        let k = kernel(&[2, 3, 1], 64);
        // 3 rows (un-split) x 2 strips of 32 columns = 6 warps.
        assert_eq!(k.total_warps(), 6);
        assert_eq!(k.grid().ctas, 2);
    }

    #[test]
    fn trace_length_follows_row_length() {
        let k = kernel(&[2, 30], 32);
        let short = k.trace(0, 0); // row 0, 2 nnz
        let long = k.trace(0, 1); // row 1, 30 nnz
        assert!(long.len() > short.len() * 5);
    }

    #[test]
    fn narrow_features_shrink_active_lanes() {
        let k = kernel(&[4], 1);
        let t = k.trace(0, 0);
        assert!(t.iter().all(|i| i.active == 1), "f = 1 => 1 active lane");
    }

    #[test]
    fn hot_row_is_split_and_accumulates_atomically() {
        let k = kernel(&[SPMM_CHUNK + 10], 32);
        assert_eq!(k.total_warps(), 2, "row split into two chunks");
        let first = k.trace(0, 0);
        let second = k.trace(0, 1);
        assert!(
            first.iter().any(|i| i.class == InstrClass::AtomicGlobal),
            "chunked rows accumulate atomically"
        );
        assert!(second.iter().any(|i| i.class == InstrClass::AtomicGlobal));
    }

    #[test]
    fn unweighted_skips_value_loads() {
        let (rp, ci) = csr(&[4], 7);
        let w = SpmmKernel::new(rp.clone(), ci.clone(), true, 0, 0, 0, 0, 0, 32);
        let u = SpmmKernel::new(rp, ci, false, 0, 0, 0, 0, 0, 32);
        let wl = w
            .trace(0, 0)
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        let ul = u
            .trace(0, 0)
            .iter()
            .filter(|i| i.class == InstrClass::LoadGlobal)
            .count();
        assert_eq!(wl, ul + 4, "one value load per nnz saved");
    }

    #[test]
    fn x_access_uses_live_column_indices() {
        let rp = Arc::new(vec![0u32, 1]);
        let ci = Arc::new(vec![9u32]);
        let k = SpmmKernel::new(rp, ci, false, 0, 0x50, 0x60, 0x1000, 0x2000, 32);
        let t = k.trace(0, 0);
        let x_load_idx = t
            .iter()
            .enumerate()
            .filter(|(_, i)| i.class == InstrClass::LoadGlobal)
            .map(|(idx, _)| idx)
            .nth(3) // rp, rp+1, ci, then X
            .unwrap();
        let mut addrs = Vec::new();
        t.mem_at(x_load_idx).unwrap().lane_addrs(&mut addrs);
        assert_eq!(addrs[0], 0x1000 + 9 * 32 * 4);
    }

    #[test]
    fn empty_matrix_has_no_work() {
        let k = kernel(&[0, 0], 16);
        assert_eq!(k.total_warps(), 0);
        assert!(k.trace(0, 0).is_empty());
    }
}
