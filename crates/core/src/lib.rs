//! # gsuite-core
//!
//! The core of gSuite-rs: a flexible, framework-independent benchmark suite
//! for GNN *inference*, reproducing the system described in
//! ["gSuite: A Flexible and Framework Independent Benchmark Suite for Graph
//! Neural Network Inference on GPUs"](https://arxiv.org/abs/2210.11601)
//! (IISWC 2022).
//!
//! The suite is built exactly the way the paper describes (§IV):
//!
//! * **Core kernels** ([`kernels`]) — the Table II primitives
//!   (`indexSelect`, `scatter`, `sgemm`, `SpMM`, `SpGEMM`, plus the small
//!   `elementwise` glue kernel frameworks insert). Every kernel is a
//!   *workload descriptor*: it knows both its functional semantics (via
//!   `gsuite-tensor`) and its warp-level GPU instruction/address stream
//!   (via `gsuite-gpu`), so correctness testing and architectural
//!   characterization share one source of truth.
//! * **GNN models** ([`models`]) — GCN, GIN and GraphSAGE assembled from
//!   core kernels under both computational models (message passing and
//!   sparse matrix multiplication; GraphSAGE is MP-only in the gSuite
//!   surface, matching the paper).
//! * **Plan IR** ([`plan`]) — models lower to an optimizable kernel
//!   dataflow ([`Plan`]): typed logical buffers, a pass pipeline
//!   (elementwise fusion, hoist/CSE of layer-invariant subgraphs,
//!   dead-buffer elimination) and a scheduler that assigns device
//!   addresses (byte-identical to the historical layout at
//!   [`OptLevel::O0`]; liveness-planned with range reuse at O2).
//! * **Pipelines** ([`pipeline`]) — lower → optimize → schedule into an
//!   ordered list of kernel launches plus the functional result, with
//!   profiling over any [`gsuite_profile::Profiler`] backend — serially
//!   ([`pipeline::PipelineRun::profile`]) or fanned across CPU cores with
//!   bit-identical results ([`pipeline::PipelineRun::profile_par`]).
//! * **Configuration** ([`config`]) — the paper's User Interface /
//!   Abstraction Module: a pipeline is selected by a handful of parameters
//!   (model, dataset, layers, computational model, framework), with a
//!   `key = value` defaults file.
//! * **Framework adapters** ([`frameworks`]) — PyG-like and DGL-like
//!   baselines that run the same math through modeled dependency-chain
//!   overheads (host initialization, launch gaps, wrapper kernels), used by
//!   the Fig. 3/4 comparisons.
//!
//! # Quickstart
//!
//! ```
//! use gsuite_core::config::{CompModel, GnnModel, RunConfig};
//! use gsuite_core::pipeline::PipelineRun;
//! use gsuite_graph::datasets::Dataset;
//!
//! # fn main() -> Result<(), gsuite_core::CoreError> {
//! let config = RunConfig {
//!     model: GnnModel::Gcn,
//!     comp: CompModel::Mp,
//!     dataset: Dataset::Cora,
//!     scale: 0.02,
//!     layers: 2,
//!     hidden: 8,
//!     ..RunConfig::default()
//! };
//! let graph = config.load_graph();
//! let run = PipelineRun::build(&graph, &config)?;
//! assert!(!run.launches.is_empty());
//! assert_eq!(run.output.rows(), graph.num_nodes());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
mod device;
mod error;
pub mod frameworks;
pub mod kernels;
pub mod models;
pub mod pipeline;
pub mod plan;

pub use device::AddressSpace;
pub use error::CoreError;
pub use plan::{OptLevel, Plan};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
