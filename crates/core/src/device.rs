//! A fake device address space.
//!
//! Kernel workloads describe memory behaviour with *byte addresses*; this
//! allocator hands each logical buffer (feature matrix, edge index,
//! weights, intermediates) a non-overlapping base address, mimicking
//! `cudaMalloc` layout so cache-set interactions between buffers are
//! realistic. No data lives behind these addresses — functional values are
//! computed host-side by `gsuite-tensor`.
//!
//! Two modes exist:
//!
//! * **bump** ([`AddressSpace::new`]) — monotone allocation in call order,
//!   the historical O0 layout; nothing is ever reused, so live bytes only
//!   grow.
//! * **reuse** ([`AddressSpace::with_reuse`]) — [`AddressSpace::release`]
//!   returns ranges to a best-fit free list and subsequent allocations
//!   may reuse them — the liveness-based memory planner's substrate.
//!
//! Both modes account allocation totals: [`AddressSpace::live_bytes`]
//! (currently allocated), [`AddressSpace::peak_bytes`] (high-water mark,
//! surfaced as peak device bytes in pipeline profiles and the serve
//! `stats` response) and [`AddressSpace::total_bytes`] (sum of all
//! allocations ever made).

/// Allocator over a simulated device address range, with live/peak byte
/// accounting and optional free-range reuse.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    base: u64,
    next: u64,
    reuse: bool,
    /// Free ranges `(base, padded size)`, sorted by base, coalesced.
    free: Vec<(u64, u64)>,
    live: u64,
    peak: u64,
    total: u64,
}

/// Alignment of every allocation (matches CUDA's 256-byte guarantee).
pub const ALLOC_ALIGN: u64 = 256;

/// Base address of the device heap.
const HEAP_BASE: u64 = 0x7000_0000;

/// Padded allocator footprint of a request (minimum one alignment unit).
fn pad(bytes: u64) -> u64 {
    (bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN).max(ALLOC_ALIGN)
}

impl AddressSpace {
    /// A fresh bump-mode address space starting at a nonzero device-like
    /// offset; allocations are monotone and never reused.
    pub fn new() -> Self {
        AddressSpace {
            base: HEAP_BASE,
            next: HEAP_BASE,
            reuse: false,
            free: Vec::new(),
            live: 0,
            peak: 0,
            total: 0,
        }
    }

    /// A reuse-mode address space: released ranges go to a best-fit free
    /// list and may back later allocations.
    pub fn with_reuse() -> Self {
        AddressSpace {
            reuse: true,
            ..AddressSpace::new()
        }
    }

    /// Rewinds the allocator to its freshly-constructed state in the
    /// given mode, keeping the free list's backing storage so a reused
    /// space ([`crate::plan::ScheduleScratch`]) allocates nothing on the
    /// steady-state path. A reset space behaves byte-identically to
    /// [`AddressSpace::new`] / [`AddressSpace::with_reuse`].
    pub fn reset(&mut self, reuse: bool) {
        self.next = self.base;
        self.reuse = reuse;
        self.free.clear();
        self.live = 0;
        self.peak = 0;
        self.total = 0;
    }

    /// Allocates `bytes` and returns the base address (256-byte aligned).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        self.alloc_traced(bytes).0
    }

    /// [`AddressSpace::alloc`], additionally reporting whether the range
    /// was reused from the free list.
    pub fn alloc_traced(&mut self, bytes: u64) -> (u64, bool) {
        let padded = pad(bytes);
        self.live += padded;
        self.peak = self.peak.max(self.live);
        self.total += padded;
        if self.reuse {
            // Best fit: smallest free block that holds the request; ties
            // go to the lowest base (the list is base-sorted).
            let mut best: Option<usize> = None;
            for (i, &(_, size)) in self.free.iter().enumerate() {
                if size >= padded && best.is_none_or(|b| size < self.free[b].1) {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                let (block_base, block_size) = self.free[i];
                if block_size > padded {
                    self.free[i] = (block_base + padded, block_size - padded);
                } else {
                    self.free.remove(i);
                }
                return (block_base, true);
            }
        }
        let base = self.next;
        self.next += padded;
        (base, false)
    }

    /// Allocates room for `elems` 4-byte elements.
    pub fn alloc_f32(&mut self, elems: u64) -> u64 {
        self.alloc(elems * 4)
    }

    /// Returns a previously allocated range to the allocator. In reuse
    /// mode the range becomes available for later allocations; in bump
    /// mode only the live-byte accounting changes.
    pub fn release(&mut self, base: u64, bytes: u64) {
        let padded = pad(bytes);
        self.live = self.live.saturating_sub(padded);
        if !self.reuse {
            return;
        }
        // Insert sorted by base, then coalesce with both neighbours.
        let i = self.free.partition_point(|&(b, _)| b < base);
        self.free.insert(i, (base, padded));
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
    }

    /// Arena extent: bytes between the heap base and the high-water bump
    /// pointer (the historical "total allocated" of the bump mode).
    pub fn allocated(&self) -> u64 {
        self.next - self.base
    }

    /// Currently live (allocated, not yet released) bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// High-water mark of [`AddressSpace::live_bytes`] — the peak device
    /// footprint of the allocation schedule.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Sum of every allocation ever made (monotone; unaffected by
    /// releases).
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = AddressSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(100);
        assert!(y >= x + 100);
    }

    #[test]
    fn allocations_are_aligned() {
        let mut a = AddressSpace::new();
        let _ = a.alloc(1);
        let y = a.alloc(1);
        assert_eq!(x_align(y), 0);
        fn x_align(v: u64) -> u64 {
            v % ALLOC_ALIGN
        }
    }

    #[test]
    fn zero_sized_alloc_still_advances() {
        let mut a = AddressSpace::new();
        let x = a.alloc(0);
        let y = a.alloc(0);
        assert_ne!(x, y);
    }

    #[test]
    fn f32_helper_scales() {
        let mut a = AddressSpace::new();
        let x = a.alloc_f32(64); // 256 bytes
        let y = a.alloc_f32(1);
        assert_eq!(y - x, 256);
    }

    #[test]
    fn bump_mode_accounts_peak_and_never_reuses() {
        let mut a = AddressSpace::new();
        let x = a.alloc(256);
        let _ = a.alloc(256);
        assert_eq!(a.peak_bytes(), 512);
        assert_eq!(a.live_bytes(), 512);
        a.release(x, 256);
        assert_eq!(a.live_bytes(), 256);
        assert_eq!(a.peak_bytes(), 512, "peak is a high-water mark");
        let z = a.alloc(256);
        assert!(z >= x + 512, "no reuse in bump mode");
    }

    #[test]
    fn reuse_mode_recycles_released_ranges() {
        let mut a = AddressSpace::with_reuse();
        let x = a.alloc(512);
        let y = a.alloc(256);
        a.release(x, 512);
        let (z, reused) = a.alloc_traced(256);
        assert!(reused);
        assert_eq!(z, x, "best fit lands in the freed block");
        let (w, reused2) = a.alloc_traced(256);
        assert!(reused2);
        assert_eq!(w, x + 256, "remainder of the split block");
        assert_eq!(a.peak_bytes(), 768);
        assert!(y > x);
    }

    #[test]
    fn reuse_mode_coalesces_neighbours() {
        let mut a = AddressSpace::with_reuse();
        let x = a.alloc(256);
        let y = a.alloc(256);
        let z = a.alloc(256);
        a.release(x, 256);
        a.release(z, 256);
        a.release(y, 256); // merges with both neighbours
        let (w, reused) = a.alloc_traced(768);
        assert!(reused, "coalesced block satisfies a large request");
        assert_eq!(w, x);
        assert_eq!(a.live_bytes(), 768);
    }

    #[test]
    fn best_fit_prefers_smallest_block() {
        let mut a = AddressSpace::with_reuse();
        let big = a.alloc(1024);
        let gap = a.alloc(256); // prevents coalescing
        let small = a.alloc(256);
        a.release(big, 1024);
        a.release(small, 256);
        let (z, reused) = a.alloc_traced(256);
        assert!(reused);
        assert_eq!(z, small, "picks the tighter fit, not the first block");
        let _ = gap;
    }
}
