//! A fake device address space.
//!
//! Kernel workloads describe memory behaviour with *byte addresses*; this
//! bump allocator hands each logical buffer (feature matrix, edge index,
//! weights, intermediates) a non-overlapping base address, mimicking
//! `cudaMalloc` layout so cache-set interactions between buffers are
//! realistic. No data lives behind these addresses — functional values are
//! computed host-side by `gsuite-tensor`.

/// Bump allocator over a simulated device address range.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
}

/// Alignment of every allocation (matches CUDA's 256-byte guarantee).
pub const ALLOC_ALIGN: u64 = 256;

impl AddressSpace {
    /// A fresh address space starting at a nonzero device-like offset.
    pub fn new() -> Self {
        AddressSpace { next: 0x7000_0000 }
    }

    /// Allocates `bytes` and returns the base address (256-byte aligned).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let padded = bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.next += padded.max(ALLOC_ALIGN);
        base
    }

    /// Allocates room for `elems` 4-byte elements.
    pub fn alloc_f32(&mut self, elems: u64) -> u64 {
        self.alloc(elems * 4)
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - 0x7000_0000
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = AddressSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(100);
        assert!(y >= x + 100);
    }

    #[test]
    fn allocations_are_aligned() {
        let mut a = AddressSpace::new();
        let _ = a.alloc(1);
        let y = a.alloc(1);
        assert_eq!(x_align(y), 0);
        fn x_align(v: u64) -> u64 {
            v % ALLOC_ALIGN
        }
    }

    #[test]
    fn zero_sized_alloc_still_advances() {
        let mut a = AddressSpace::new();
        let x = a.alloc(0);
        let y = a.alloc(0);
        assert_ne!(x, y);
    }

    #[test]
    fn f32_helper_scales() {
        let mut a = AddressSpace::new();
        let x = a.alloc_f32(64); // 256 bytes
        let y = a.alloc_f32(1);
        assert_eq!(y - x, 256);
    }
}
