//! Pipeline assembly and profiling: the executable form of one configured
//! GNN inference run.
//!
//! Since the kernel-dataflow IR refactor, [`PipelineRun::build`] is a
//! three-stage compile: **lower** the model to a [`Plan`]
//! ([`crate::frameworks::lower`]), **optimize** it at the configured
//! [`crate::plan::OptLevel`] (fusion / hoist-CSE / dead-buffer
//! elimination; a no-op at O0), then **schedule** it — assigning device
//! addresses (bump layout at O0, liveness-planned reuse at O2) and
//! materializing the launch stream.

use gsuite_profile::{
    Interconnect, KernelStats, PipelineProfile, Profiler, ShardStats, ShardingProfile,
};
use gsuite_tensor::DenseMatrix;

use crate::config::RunConfig;
use crate::frameworks;
use crate::kernels::Launch;
use crate::plan::batchmerge::{self, MergedPart};
use crate::plan::shard::{self, ShardedExec};
use crate::plan::template::{Template, TemplateCache, TemplateKey};
use crate::plan::{OpSpec, Plan, ScheduleScratch};
use crate::Result;
use gsuite_graph::Graph;

/// Wall-clock milliseconds spent in each compile phase of one
/// [`PipelineRun::build`] (monotonic host time, the `wall` clock domain
/// of the telemetry layer — never the sim clock, so these numbers are
/// real but not reproducible byte-for-byte). Sharded builds charge the
/// whole per-shard compile to `lower_ms`; the remaining phases run
/// inside [`crate::plan::shard::build_sharded`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompilePhases {
    /// Model → Plan lowering (including mini-batch sampling + per-batch
    /// lowering, and the full sharded build on multi-GPU runs).
    pub lower_ms: f64,
    /// The O-level pass pipeline (fusion / hoist-CSE / dead buffers).
    pub optimize_ms: f64,
    /// Framework wrapper-op decoration.
    pub decorate_ms: f64,
    /// Plan-template rebind on the serve fast path
    /// ([`PipelineRun::build_with_templates`]): nonzero only when a
    /// cached template replaced the lower/optimize/decorate phases.
    pub instantiate_ms: f64,
    /// Address assignment + launch materialization.
    pub schedule_ms: f64,
}

impl CompilePhases {
    /// Sum over all phases.
    pub fn total_ms(&self) -> f64 {
        self.lower_ms + self.optimize_ms + self.decorate_ms + self.instantiate_ms + self.schedule_ms
    }

    /// The phases a plan template skips: lowering, optimization and
    /// decoration. A warmed serving worker drives this to ~0 on
    /// repeat-shape mixes (`scripts/serve_smoke.sh` asserts it).
    pub fn full_compile_ms(&self) -> f64 {
        self.lower_ms + self.optimize_ms + self.decorate_ms
    }
}

/// A fully built pipeline: the optimized plan, the ordered kernel
/// launches it scheduled to, the functional output, and the run
/// description.
///
/// # Example
///
/// ```
/// use gsuite_core::config::RunConfig;
/// use gsuite_core::pipeline::PipelineRun;
/// use gsuite_profile::HwProfiler;
///
/// # fn main() -> Result<(), gsuite_core::CoreError> {
/// let config = RunConfig {
///     scale: 0.02,
///     hidden: 8,
///     ..RunConfig::default()
/// };
/// let graph = config.load_graph();
/// let run = PipelineRun::build(&graph, &config)?;
/// let profile = run.profile(&HwProfiler::v100());
/// assert_eq!(profile.kernels.len(), run.launches.len());
/// assert!(profile.total_time_ms() > 0.0);
/// assert!(profile.peak_device_bytes > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PipelineRun {
    /// Human-readable run label.
    pub label: String,
    /// The configuration that produced this run.
    pub config: RunConfig,
    /// The optimized plan (one op per launch, in order).
    pub plan: Plan,
    /// Kernel launches in execution order.
    pub launches: Vec<Launch>,
    /// Peak simultaneously-live device bytes of the schedule (at O0 this
    /// is the full bump arena; at O2 the memory planner's high-water
    /// mark). For sharded runs: the largest single-device peak.
    pub peak_device_bytes: u64,
    /// Functional inference output (zeros when functional math disabled;
    /// sharded runs are always profile-only and report zeros).
    pub output: DenseMatrix,
    /// The multi-GPU execution — `Some` only when
    /// `config.gpus_per_run > 1`, in which case [`PipelineRun::plan`] is
    /// empty and [`PipelineRun::launches`] concatenates every shard's
    /// stream (see [`crate::plan::shard`]).
    pub sharding: Option<ShardedExec>,
    /// Measured wall-clock cost of each compile phase of this build —
    /// the instrumentation points the telemetry layer's
    /// `compile.{lower,optimize,decorate,schedule}` spans read from on
    /// live (`--clock wall`) runs.
    pub compile_phases: CompilePhases,
}

impl PipelineRun {
    /// Builds the pipeline for `config` over `graph`: lower → optimize
    /// (at `config.opt`) → decorate with the configured framework's
    /// wrapper ops → schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::CoreError::UnsupportedCombination`] for
    /// gSuite + GraphSAGE + SpMM.
    pub fn build(graph: &Graph, config: &RunConfig) -> Result<Self> {
        Self::build_cancellable(graph, config, &mut || false)
    }

    /// [`PipelineRun::build`] with cooperative cancellation: `cancelled`
    /// is polled at a checkpoint between each compile phase (before
    /// lowering, after lowering, after optimization, and after
    /// decoration — and around the sharded build), and a `true` return
    /// aborts the build with [`crate::CoreError::Cancelled`]. This is
    /// how the serving layer propagates a request's deadline budget into
    /// the build stage without preempting a phase mid-flight. A closure
    /// that never fires takes the exact same code path as `build`, so
    /// the fault-free output is identical.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::Cancelled`] when a checkpoint fires;
    /// otherwise everything [`PipelineRun::build`] can return.
    pub fn build_cancellable(
        graph: &Graph,
        config: &RunConfig,
        cancelled: &mut dyn FnMut() -> bool,
    ) -> Result<Self> {
        Self::full_build(graph, config, &mut ScheduleScratch::default(), cancelled)
    }

    /// [`PipelineRun::build`] through a [`TemplateCache`]: repeat-shape
    /// requests skip lower/optimize/decorate and only rebind + schedule
    /// (see [`crate::plan::template`]). The result is bit-identical to
    /// [`PipelineRun::build`] whether the cache hits or misses.
    ///
    /// # Errors
    ///
    /// Everything [`PipelineRun::build`] can return (only full compiles
    /// can fail; instantiation is infallible).
    pub fn build_with_templates(
        graph: &Graph,
        config: &RunConfig,
        templates: &TemplateCache,
    ) -> Result<Self> {
        Self::build_with_templates_in(
            graph,
            config,
            templates,
            &mut WorkerScratch::default(),
            &mut || false,
        )
    }

    /// The serving hot path: [`PipelineRun::build_with_templates`] with a
    /// per-worker [`WorkerScratch`] (so steady-state builds allocate
    /// ~zero) and the same cooperative cancellation contract as
    /// [`PipelineRun::build_cancellable`]. The template fast path polls
    /// `cancelled` before instantiating and before scheduling.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::Cancelled`] when a checkpoint fires;
    /// otherwise everything [`PipelineRun::build`] can return.
    pub fn build_with_templates_in(
        graph: &Graph,
        config: &RunConfig,
        templates: &TemplateCache,
        scratch: &mut WorkerScratch,
        cancelled: &mut dyn FnMut() -> bool,
    ) -> Result<Self> {
        // Sharded multi-GPU builds are not templatable; take the full
        // path (which has its own checkpoints).
        let Some(key) = TemplateKey::of(graph, config) else {
            return Self::full_build(graph, config, &mut scratch.schedule, cancelled);
        };
        let Some(template) = templates.get(&key) else {
            let run = Self::full_build(graph, config, &mut scratch.schedule, cancelled)?;
            templates.insert(key, Template::capture(&run.plan, &run.output));
            return Ok(run);
        };
        if cancelled() {
            return Err(crate::CoreError::Cancelled);
        }
        let mut phases = CompilePhases::default();
        let mut mark = std::time::Instant::now();
        let mut lap = |slot: &mut f64| {
            let now = std::time::Instant::now();
            *slot += now.duration_since(mark).as_secs_f64() * 1e3;
            mark = now;
        };
        let (plan, output) = template.instantiate();
        lap(&mut phases.instantiate_ms);
        if cancelled() {
            return Err(crate::CoreError::Cancelled);
        }
        let schedule = plan.schedule_in(config.opt, &mut scratch.schedule);
        lap(&mut phases.schedule_ms);
        templates.note_instantiated();
        Ok(PipelineRun {
            label: config.label(),
            config: config.clone(),
            plan,
            launches: schedule.launches,
            peak_device_bytes: schedule.peak_device_bytes,
            output,
            sharding: None,
            compile_phases: phases,
        })
    }

    /// Builds one cross-request merged batch (see
    /// [`crate::plan::batchmerge`]): all member requests lowered into a
    /// single block-diagonal plan, one optimize → decorate → schedule
    /// tail, one launch stream. Returns the combined run plus each
    /// member's [`MergedPart`] (solo-bit-identical output + attribution
    /// weights) in request order.
    ///
    /// The returned run's `config`/`label` describe the first member;
    /// its `output` stacks the member outputs row-wise when they share a
    /// width (always true for sampled merges).
    ///
    /// # Errors
    ///
    /// Everything [`crate::plan::batchmerge::lower_merged`] can return:
    /// empty or class-mixed member lists, sampler errors, unsupported
    /// model combinations.
    pub fn build_merged(graph: &Graph, configs: &[RunConfig]) -> Result<(Self, Vec<MergedPart>)> {
        Self::merged_full_build(graph, configs, &mut ScheduleScratch::default())
    }

    /// [`PipelineRun::build_merged`] through a [`TemplateCache`]: a
    /// repeat-shape merged batch (same members, same order — see
    /// [`TemplateKey::of_merged`]) skips lower/optimize/decorate and
    /// only rebinds + schedules. Bit-identical to the full merged build
    /// whether the cache hits or misses; heterogeneous merges
    /// (full-graph mixes) always take the full path.
    ///
    /// # Errors
    ///
    /// Everything [`PipelineRun::build_merged`] can return.
    pub fn build_merged_with_templates(
        graph: &Graph,
        configs: &[RunConfig],
        templates: &TemplateCache,
        scratch: &mut WorkerScratch,
    ) -> Result<(Self, Vec<MergedPart>)> {
        let Some(key) = TemplateKey::of_merged(graph, configs) else {
            return Self::merged_full_build(graph, configs, &mut scratch.schedule);
        };
        let Some(template) = templates.get(&key) else {
            let (run, parts) = Self::merged_full_build(graph, configs, &mut scratch.schedule)?;
            let meta = parts.iter().map(|p| (p.nodes, p.edges)).collect();
            templates.insert(key, Template::capture_merged(&run.plan, &run.output, meta));
            return Ok((run, parts));
        };
        let mut phases = CompilePhases::default();
        let mut mark = std::time::Instant::now();
        let mut lap = |slot: &mut f64| {
            let now = std::time::Instant::now();
            *slot += now.duration_since(mark).as_secs_f64() * 1e3;
            mark = now;
        };
        let (plan, output) = template.instantiate();
        lap(&mut phases.instantiate_ms);
        // Unstack the members: sampled merges (the only templatable
        // kind) contribute one output row each, and the template kept
        // every member's attribution metadata at capture time.
        let first = &configs[0];
        let parts: Vec<MergedPart> = template
            .merged_parts()
            .iter()
            .enumerate()
            .map(|(i, &(nodes, edges))| {
                let mut member = DenseMatrix::zeros(1, first.hidden);
                for c in 0..first.hidden {
                    member.set(0, c, output.get(i, c));
                }
                MergedPart {
                    output: member,
                    nodes,
                    edges,
                }
            })
            .collect();
        let schedule = plan.schedule_in(first.opt, &mut scratch.schedule);
        lap(&mut phases.schedule_ms);
        templates.note_instantiated();
        Ok((
            PipelineRun {
                label: format!("batch[{}] {}", configs.len(), first.label()),
                config: first.clone(),
                plan,
                launches: schedule.launches,
                peak_device_bytes: schedule.peak_device_bytes,
                output,
                sharding: None,
                compile_phases: phases,
            },
            parts,
        ))
    }

    /// The full merged-batch compile: `lower_merged` plus the ordinary
    /// optimize → decorate → schedule tail of [`PipelineRun::full_build`].
    fn merged_full_build(
        graph: &Graph,
        configs: &[RunConfig],
        scratch: &mut ScheduleScratch,
    ) -> Result<(Self, Vec<MergedPart>)> {
        let mut phases = CompilePhases::default();
        let mut mark = std::time::Instant::now();
        let mut lap = |slot: &mut f64| {
            let now = std::time::Instant::now();
            *slot += now.duration_since(mark).as_secs_f64() * 1e3;
            mark = now;
        };
        let (mut plan, parts) = batchmerge::lower_merged(graph, configs)?;
        lap(&mut phases.lower_ms);
        let first = &configs[0];
        plan.optimize(first.opt);
        lap(&mut phases.optimize_ms);
        frameworks::decorate(&mut plan, first.framework);
        lap(&mut phases.decorate_ms);
        let schedule = plan.schedule_in(first.opt, scratch);
        lap(&mut phases.schedule_ms);
        let output = stack_member_outputs(&parts);
        Ok((
            PipelineRun {
                label: format!("batch[{}] {}", configs.len(), first.label()),
                config: first.clone(),
                plan,
                launches: schedule.launches,
                peak_device_bytes: schedule.peak_device_bytes,
                output,
                sharding: None,
                compile_phases: phases,
            },
            parts,
        ))
    }

    /// The shared full-compile path behind every build entry: lower →
    /// optimize → decorate → schedule, with the schedule drawing on
    /// `scratch`.
    fn full_build(
        graph: &Graph,
        config: &RunConfig,
        scratch: &mut ScheduleScratch,
        cancelled: &mut dyn FnMut() -> bool,
    ) -> Result<Self> {
        let checkpoint = |cancelled: &mut dyn FnMut() -> bool| {
            if cancelled() {
                Err(crate::CoreError::Cancelled)
            } else {
                Ok(())
            }
        };
        checkpoint(cancelled)?;
        if config.gpus_per_run > 1 && config.is_minibatch() {
            return Err(crate::CoreError::InvalidConfig {
                key: "batch_size/seed_node".to_string(),
                value: format!(
                    "batch_size={} seed_node={:?} with gpus_per_run={}",
                    config.batch_size, config.seed_node, config.gpus_per_run
                ),
                expected: "mini-batch sampling runs single-device (shards=1)".to_string(),
            });
        }
        let mut phases = CompilePhases::default();
        let mut mark = std::time::Instant::now();
        // Charges the wall time since the previous `lap` call to one
        // phase; ~an Instant::now() per compile phase, so the sim-clock
        // benchmarks stay byte-identical and measurably free.
        let mut lap = |slot: &mut f64| {
            let now = std::time::Instant::now();
            *slot += now.duration_since(mark).as_secs_f64() * 1e3;
            mark = now;
        };
        if config.gpus_per_run > 1 {
            // Sharded multi-GPU path: one plan per shard plus halo
            // exchanges; profile-only by design (output reports zeros,
            // exactly like `functional_math: false`).
            let sharded = shard::build_sharded(graph, config)?;
            lap(&mut phases.lower_ms);
            checkpoint(cancelled)?;
            return Ok(PipelineRun {
                label: config.label(),
                config: config.clone(),
                plan: Plan::new(),
                launches: sharded.flat_launches(),
                peak_device_bytes: sharded.max_shard_peak_bytes(),
                output: DenseMatrix::zeros(graph.num_nodes(), config.hidden),
                sharding: Some(sharded),
                compile_phases: phases,
            });
        }
        let (mut plan, output) = if config.is_minibatch() {
            // Neighbor-sampled path: every batch's ego-net lowered into
            // one combined plan (see `plan::minibatch`); the optimize →
            // decorate → schedule tail below is shared with full-graph
            // runs, so serve requests and batch cells compile alike.
            crate::plan::minibatch::lower_batched(graph, config)?
        } else {
            frameworks::lower(graph, config)?
        };
        lap(&mut phases.lower_ms);
        checkpoint(cancelled)?;
        plan.optimize(config.opt);
        lap(&mut phases.optimize_ms);
        checkpoint(cancelled)?;
        frameworks::decorate(&mut plan, config.framework);
        lap(&mut phases.decorate_ms);
        checkpoint(cancelled)?;
        let schedule = plan.schedule_in(config.opt, scratch);
        lap(&mut phases.schedule_ms);
        Ok(PipelineRun {
            label: config.label(),
            config: config.clone(),
            plan,
            launches: schedule.launches,
            peak_device_bytes: schedule.peak_device_bytes,
            output,
            sharding: None,
            compile_phases: phases,
        })
    }

    /// Profiles every launch with `profiler` and attaches the framework's
    /// modeled host overheads (init + per-launch dispatch) plus the
    /// schedule's peak device bytes. On sharded runs, exchange launches
    /// are priced by the [`Interconnect`] model (`α + β·bytes`) instead of
    /// the kernel profiler, and the per-shard split lands in
    /// [`PipelineProfile::sharding`].
    pub fn profile(&self, profiler: &dyn Profiler) -> PipelineProfile {
        self.profile_with_link(profiler, Interconnect::nvlink())
    }

    /// [`PipelineRun::profile`] with an explicit [`Interconnect`] pricing
    /// the halo exchanges of sharded runs — the hook the fault injector
    /// uses to model a degraded fabric
    /// ([`Interconnect::degraded`]). Single-device runs ignore the link.
    pub fn profile_with_link(
        &self,
        profiler: &dyn Profiler,
        link: Interconnect,
    ) -> PipelineProfile {
        let kernels = self
            .launches
            .iter()
            .map(|launch| profile_launch(profiler, launch))
            .collect();
        self.finish_profile(kernels, link)
    }

    /// [`PipelineRun::profile`] with the independent kernel launches fanned
    /// across CPU cores.
    ///
    /// Each launch owns an independent simulation/model state (caches start
    /// cold per kernel, as the paper's per-kernel profiling does), so
    /// launches are embarrassingly parallel; results are merged back in
    /// launch order, making the output **bit-identical** to the serial
    /// [`PipelineRun::profile`] — a property the `determinism` test suite
    /// locks in.
    pub fn profile_par(&self, profiler: &(dyn Profiler + Sync)) -> PipelineProfile {
        let kernels =
            gsuite_par::par_map(&self.launches, |_, launch| profile_launch(profiler, launch));
        self.finish_profile(kernels, Interconnect::nvlink())
    }

    /// Shared tail of the serial and parallel profile paths: attaches
    /// host overheads and, on sharded runs, replaces exchange records
    /// with `link`-priced transfers and builds the [`ShardingProfile`].
    fn finish_profile(&self, kernels: Vec<KernelStats>, link: Interconnect) -> PipelineProfile {
        let costs = self.config.framework.costs();
        let mut profile = PipelineProfile::new(self.label.clone());
        profile.host_overhead_ms = costs.init_ms + costs.per_launch_ms * self.launches.len() as f64;
        profile.peak_device_bytes = self.peak_device_bytes;
        profile.kernels = kernels;

        if let Some(sharded) = &self.sharding {
            let mut shard_stats = Vec::with_capacity(sharded.shards.len());
            let mut cursor = 0usize;
            for shard in &sharded.shards {
                let slice = &mut profile.kernels[cursor..cursor + shard.launches.len()];
                let (mut kernel_ms, mut exchange_ms) = (0.0f64, 0.0f64);
                for (op, stats) in shard.plan.ops().iter().zip(slice.iter_mut()) {
                    if let OpSpec::Exchange { rows, feat, .. } = &op.spec {
                        let bytes = rows * *feat as u64 * 4;
                        let time_ms = link.transfer_ms(bytes);
                        // The transfer is link-bound: overwrite the
                        // device-side record with the interconnect cost
                        // (keeping the backend tag for report grouping).
                        *stats = KernelStats {
                            kernel: "exchange".to_string(),
                            backend: stats.backend,
                            time_ms,
                            instr_mix: Default::default(),
                            stalls: None,
                            occupancy: None,
                            l1: Default::default(),
                            l2: Default::default(),
                            dram_bytes: bytes,
                            compute_utilization: 0.0,
                            memory_utilization: (time_ms - link.latency_ms) / time_ms,
                        };
                        exchange_ms += time_ms;
                    } else {
                        kernel_ms += stats.time_ms;
                    }
                }
                cursor += shard.launches.len();
                shard_stats.push(ShardStats {
                    device: shard.device,
                    owned_nodes: shard.owned_nodes,
                    halo_nodes: shard.halo_nodes,
                    kernel_ms,
                    exchange_ms,
                    halo_in_bytes: shard.halo_in_bytes,
                    peak_device_bytes: shard.peak_device_bytes,
                });
            }
            profile.sharding = Some(ShardingProfile {
                strategy: sharded.strategy.name().to_string(),
                cut_edges: sharded.cut_edges,
                total_edges: sharded.total_edges,
                shards: shard_stats,
            });
        }
        profile
    }

    /// Total kernel launches.
    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }
}

/// Stacks merged-member outputs row-wise into the combined run's output
/// matrix. Members of differing widths (full-graph merges mixing hidden
/// sizes) cannot stack; the combined output degrades to a `1×1` zero
/// placeholder and callers read the per-member [`MergedPart`]s instead.
fn stack_member_outputs(parts: &[MergedPart]) -> DenseMatrix {
    let cols = parts.first().map_or(0, |p| p.output.cols());
    if cols == 0 || parts.iter().any(|p| p.output.cols() != cols) {
        return DenseMatrix::zeros(1, 1);
    }
    let rows = parts.iter().map(|p| p.output.rows()).sum();
    let mut out = DenseMatrix::zeros(rows, cols);
    let mut r = 0;
    for part in parts {
        for i in 0..part.output.rows() {
            for c in 0..cols {
                out.set(r, c, part.output.get(i, c));
            }
            r += 1;
        }
    }
    out
}

/// Per-worker reusable compile arenas: everything a build can recycle
/// between requests so steady-state serving allocates ~zero on the
/// compile side. Today that is the schedule scratch (allocator free
/// lists + liveness bucket vectors; see
/// [`crate::plan::ScheduleScratch`]) — simulator-side `TraceBuf`s are
/// already pooled inside the GPU model. Not `Sync` by design: each
/// serving worker owns one.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Schedule-time arenas, reset (not reallocated) on every build.
    pub schedule: ScheduleScratch,
}

impl WorkerScratch {
    /// A fresh scratch; arenas grow to steady-state size over the first
    /// few builds and are retained afterwards.
    pub fn new() -> WorkerScratch {
        WorkerScratch::default()
    }
}

/// Measures one launch, grouping it under the Table II taxonomy name
/// (e.g. all elementwise variants report as "other"). Exchange launches
/// skip the kernel profiler entirely — `finish_profile` replaces their
/// records with interconnect-priced transfers, so cycle-simulating the
/// staging stores would be pure waste; only the backend tag survives into
/// the final record.
fn profile_launch(profiler: &dyn Profiler, launch: &Launch) -> KernelStats {
    if launch.kind == crate::kernels::KernelKind::Exchange {
        return KernelStats {
            kernel: launch.kind.name().to_string(),
            backend: profiler.backend(),
            time_ms: 0.0,
            instr_mix: Default::default(),
            stalls: None,
            occupancy: None,
            l1: Default::default(),
            l2: Default::default(),
            dram_bytes: 0,
            compute_utilization: 0.0,
            memory_utilization: 0.0,
        };
    }
    let mut stats = profiler.profile(launch.workload.as_ref());
    stats.kernel = launch.kind.name().to_string();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompModel, FrameworkKind, GnnModel};
    use crate::plan::OptLevel;
    use gsuite_graph::datasets::Dataset;
    use gsuite_profile::HwProfiler;

    fn config() -> RunConfig {
        RunConfig {
            model: GnnModel::Gcn,
            comp: CompModel::Mp,
            dataset: Dataset::Cora,
            scale: 0.02,
            layers: 2,
            hidden: 8,
            ..RunConfig::default()
        }
    }

    /// The merged template fast path is bit-identical to the full merged
    /// build: same launch stream size, peak bytes, stacked output and
    /// per-member parts — and the second identical batch hits the cache.
    #[test]
    fn merged_template_instantiate_is_bit_identical() {
        let member = |v: u32| RunConfig {
            seed_node: Some(v),
            fanout: vec![3, 3],
            opt: OptLevel::O2,
            ..config()
        };
        let configs: Vec<RunConfig> = [2u32, 5, 11].iter().map(|&v| member(v)).collect();
        let graph = configs[0].load_graph();
        let (full, full_parts) = PipelineRun::build_merged(&graph, &configs).unwrap();

        let templates = TemplateCache::new();
        let mut scratch = WorkerScratch::default();
        let (first, _) =
            PipelineRun::build_merged_with_templates(&graph, &configs, &templates, &mut scratch)
                .unwrap();
        assert_eq!(templates.stats().instantiates, 0, "first build compiles");
        let (hit, hit_parts) =
            PipelineRun::build_merged_with_templates(&graph, &configs, &templates, &mut scratch)
                .unwrap();
        assert_eq!(templates.stats().instantiates, 1, "second build rebinds");

        for run in [&first, &hit] {
            assert_eq!(run.launches.len(), full.launches.len());
            assert_eq!(run.peak_device_bytes, full.peak_device_bytes);
            assert_eq!(run.output, full.output);
        }
        assert_eq!(hit_parts.len(), full_parts.len());
        for (a, b) in hit_parts.iter().zip(&full_parts) {
            assert_eq!(a.output, b.output);
            assert_eq!((a.nodes, a.edges), (b.nodes, b.edges));
        }
        // The stacked output carries one row per member.
        assert_eq!(full.output.rows(), configs.len());
    }

    #[test]
    fn build_and_profile() {
        let cfg = config();
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        // GCN-MP: 4 kernels/layer x 2 layers + 1 inter-layer ReLU.
        assert_eq!(run.launch_count(), 9);
        let profile = run.profile(&HwProfiler::v100());
        assert_eq!(profile.kernels.len(), 9);
        assert!(profile.device_time_ms() > 0.0);
        assert!(profile.host_overhead_ms > 0.0);
        assert_eq!(profile.peak_device_bytes, run.peak_device_bytes);
        // Kernel records grouped under Table II names.
        assert!(profile.kernels.iter().any(|k| k.kernel == "indexSelect"));
        assert!(profile.kernels.iter().any(|k| k.kernel == "sgemm"));
    }

    #[test]
    fn framework_overheads_rank_pipelines() {
        let graph = config().load_graph();
        let mut times = Vec::new();
        for fw in FrameworkKind::ALL {
            let cfg = RunConfig {
                framework: fw,
                ..config()
            };
            let run = PipelineRun::build(&graph, &cfg).unwrap();
            let p = run.profile(&HwProfiler::v100());
            times.push((fw, p.total_time_ms()));
        }
        let pyg = times
            .iter()
            .find(|(f, _)| *f == FrameworkKind::PygLike)
            .unwrap()
            .1;
        let dgl = times
            .iter()
            .find(|(f, _)| *f == FrameworkKind::DglLike)
            .unwrap()
            .1;
        let gsuite = times
            .iter()
            .find(|(f, _)| *f == FrameworkKind::GSuite)
            .unwrap()
            .1;
        assert!(pyg > dgl, "PyG {pyg} should exceed DGL {dgl}");
        assert!(dgl > gsuite, "DGL {dgl} should exceed gSuite {gsuite}");
    }

    #[test]
    fn profile_par_is_bit_identical_to_serial() {
        let cfg = config();
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let hw = HwProfiler::v100();
        assert_eq!(run.profile(&hw), run.profile_par(&hw));
    }

    #[test]
    fn profile_only_mode_builds_without_math() {
        let cfg = RunConfig {
            functional_math: false,
            ..config()
        };
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        assert_eq!(run.output.sum(), 0.0, "profile-only output is zeros");
        assert_eq!(run.launch_count(), 9);
    }

    #[test]
    fn sharded_runs_profile_per_shard_with_interconnect_pricing() {
        let cfg = RunConfig {
            gpus_per_run: 2,
            functional_math: false,
            ..config()
        };
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        assert!(run.sharding.is_some());
        let profile = run.profile(&HwProfiler::v100());
        let sharding = profile.sharding.as_ref().expect("sharded profile");
        assert_eq!(sharding.shards.len(), 2);
        assert_eq!(
            sharding.shards.iter().map(|s| s.owned_nodes).sum::<u64>(),
            graph.num_nodes() as u64
        );
        assert!(sharding.cut_edges > 0);
        assert!(sharding.halo_bytes() > 0);
        // Exchange records are link-priced, never profiler output.
        let exchanges: Vec<_> = profile
            .kernels
            .iter()
            .filter(|k| k.kernel == "exchange")
            .collect();
        assert!(!exchanges.is_empty());
        for x in &exchanges {
            assert!(x.time_ms >= 0.005, "latency floor applies: {}", x.time_ms);
            assert!(x.dram_bytes > 0);
        }
        // The makespan (slowest shard) is bounded by the summed work.
        assert!(profile.parallel_time_ms() <= profile.device_time_ms());
        assert!(profile.parallel_time_ms() >= sharding.shards[0].exchange_ms);
        // Single-device memory is the max shard peak.
        assert_eq!(profile.peak_device_bytes, sharding.max_shard_peak_bytes());
        // Parallel profiling is bit-identical on sharded runs too.
        assert_eq!(profile, run.profile_par(&HwProfiler::v100()));
    }

    #[test]
    fn compile_phases_are_measured_and_finite() {
        let cfg = config();
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let p = run.compile_phases;
        for ms in [p.lower_ms, p.optimize_ms, p.decorate_ms, p.schedule_ms] {
            assert!(ms.is_finite() && ms >= 0.0, "{p:?}");
        }
        assert!(p.total_ms() > 0.0, "some phase took wall time: {p:?}");
        // Sharded builds charge everything to the lowering slot.
        let sharded_cfg = RunConfig {
            gpus_per_run: 2,
            functional_math: false,
            ..config()
        };
        let sharded = PipelineRun::build(&graph, &sharded_cfg).unwrap();
        assert!(sharded.compile_phases.lower_ms > 0.0);
        assert_eq!(sharded.compile_phases.optimize_ms, 0.0);
    }

    #[test]
    fn cancellable_build_matches_build_and_cancels_at_checkpoints() {
        let cfg = config();
        let graph = cfg.load_graph();
        let plain = PipelineRun::build(&graph, &cfg).unwrap();
        let free = PipelineRun::build_cancellable(&graph, &cfg, &mut || false).unwrap();
        assert_eq!(plain.launch_count(), free.launch_count());
        assert_eq!(plain.peak_device_bytes, free.peak_device_bytes);
        assert_eq!(
            plain.profile(&HwProfiler::v100()),
            free.profile(&HwProfiler::v100()),
            "never-firing cancellation is the plain build path"
        );
        assert_eq!(plain.output, free.output);
        // A budget that expires after N polls aborts with Cancelled at
        // every checkpoint depth (four on the single-device path) —
        // never a panic, never a partial run.
        for expire_after in 0..4usize {
            let mut polls = 0usize;
            let result = PipelineRun::build_cancellable(&graph, &cfg, &mut || {
                polls += 1;
                polls > expire_after
            });
            assert!(
                matches!(result, Err(crate::CoreError::Cancelled)),
                "expire_after={expire_after}"
            );
        }
        // Sharded builds hit their own checkpoints too.
        let sharded_cfg = RunConfig {
            gpus_per_run: 2,
            functional_math: false,
            ..config()
        };
        let result = PipelineRun::build_cancellable(&graph, &sharded_cfg, &mut || true);
        assert!(matches!(result, Err(crate::CoreError::Cancelled)));
    }

    #[test]
    fn degraded_links_inflate_only_the_exchange_share() {
        let cfg = RunConfig {
            gpus_per_run: 2,
            functional_math: false,
            ..config()
        };
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let hw = HwProfiler::v100();
        let clean = run.profile(&hw);
        assert_eq!(
            clean,
            run.profile_with_link(&hw, Interconnect::nvlink()),
            "profile() is profile_with_link(nvlink)"
        );
        let slow = run.profile_with_link(&hw, Interconnect::nvlink().degraded(8.0));
        let (c, s) = (
            clean.sharding.as_ref().unwrap(),
            slow.sharding.as_ref().unwrap(),
        );
        for (cs, ss) in c.shards.iter().zip(&s.shards) {
            assert!(ss.exchange_ms > cs.exchange_ms, "exchange inflates");
            assert_eq!(ss.kernel_ms, cs.kernel_ms, "kernel time untouched");
        }
    }

    #[test]
    fn template_builds_are_bit_identical_and_attributed_to_instantiate() {
        let cfg = config();
        let graph = cfg.load_graph();
        let templates = TemplateCache::new();
        let plain = PipelineRun::build(&graph, &cfg).unwrap();
        let cold = PipelineRun::build_with_templates(&graph, &cfg, &templates).unwrap();
        let warm = PipelineRun::build_with_templates(&graph, &cfg, &templates).unwrap();
        for run in [&cold, &warm] {
            assert_eq!(run.launch_count(), plain.launch_count());
            assert_eq!(run.peak_device_bytes, plain.peak_device_bytes);
            assert_eq!(run.output, plain.output);
            assert_eq!(
                run.profile(&HwProfiler::v100()),
                plain.profile(&HwProfiler::v100())
            );
        }
        // Phase attribution: the cold build paid the full compile, the
        // warm one only instantiate + schedule.
        assert_eq!(cold.compile_phases.instantiate_ms, 0.0);
        assert!(cold.compile_phases.full_compile_ms() > 0.0);
        assert_eq!(warm.compile_phases.full_compile_ms(), 0.0);
        assert!(warm.compile_phases.instantiate_ms >= 0.0);
        assert!(warm.compile_phases.total_ms() > 0.0);
        let s = templates.stats();
        assert_eq!((s.hits, s.misses, s.instantiates, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn template_fast_path_honors_cancellation_and_sharded_bypass() {
        let cfg = config();
        let graph = cfg.load_graph();
        let templates = TemplateCache::new();
        let mut scratch = WorkerScratch::new();
        PipelineRun::build_with_templates_in(&graph, &cfg, &templates, &mut scratch, &mut || false)
            .unwrap();
        // Warm path: cancellation still aborts cleanly.
        let result = PipelineRun::build_with_templates_in(
            &graph,
            &cfg,
            &templates,
            &mut scratch,
            &mut || true,
        );
        assert!(matches!(result, Err(crate::CoreError::Cancelled)));
        // Sharded configs bypass the cache entirely (and never insert).
        let sharded_cfg = RunConfig {
            gpus_per_run: 2,
            functional_math: false,
            ..config()
        };
        let before = templates.stats();
        let sharded = PipelineRun::build_with_templates(&graph, &sharded_cfg, &templates).unwrap();
        assert!(sharded.sharding.is_some());
        let after = templates.stats();
        assert_eq!(after.entries, before.entries);
        assert_eq!((after.hits, after.misses), (before.hits, before.misses));
    }

    #[test]
    fn worker_scratch_reuse_is_byte_identical_across_builds() {
        // One scratch serving many different shapes must never leak
        // state between schedules — O0 and O2, interleaved.
        let graph = config().load_graph();
        let mut scratch = WorkerScratch::new();
        let templates = TemplateCache::with_capacity(0); // force full builds
        for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O0, OptLevel::O2] {
            for model in [GnnModel::Gcn, GnnModel::Gin] {
                let cfg = RunConfig {
                    opt,
                    model,
                    ..config()
                };
                let fresh = PipelineRun::build(&graph, &cfg).unwrap();
                let reused = PipelineRun::build_with_templates_in(
                    &graph,
                    &cfg,
                    &templates,
                    &mut scratch,
                    &mut || false,
                )
                .unwrap();
                assert_eq!(
                    fresh.profile(&HwProfiler::v100()),
                    reused.profile(&HwProfiler::v100()),
                    "{model:?} at {opt:?}"
                );
                assert_eq!(fresh.peak_device_bytes, reused.peak_device_bytes);
                assert_eq!(fresh.output, reused.output);
            }
        }
    }

    #[test]
    fn o2_shrinks_launches_and_peak_without_changing_output() {
        let cfg_o0 = config();
        let cfg_o2 = RunConfig {
            opt: OptLevel::O2,
            ..config()
        };
        let graph = cfg_o0.load_graph();
        let o0 = PipelineRun::build(&graph, &cfg_o0).unwrap();
        let o2 = PipelineRun::build(&graph, &cfg_o2).unwrap();
        // GCN-MP at O2: the layer-2 degree scatter is hoisted.
        assert!(o2.launch_count() < o0.launch_count());
        assert!(o2.peak_device_bytes < o0.peak_device_bytes);
        assert_eq!(o2.output, o0.output, "functional output is bit-identical");
        assert!(!o2.plan.decisions().is_empty());
    }
}
