//! Pipeline assembly and profiling: the executable form of one configured
//! GNN inference run.

use gsuite_profile::{PipelineProfile, Profiler};
use gsuite_tensor::DenseMatrix;

use crate::config::RunConfig;
use crate::frameworks;
use crate::kernels::Launch;
use crate::Result;
use gsuite_graph::Graph;

/// A fully built pipeline: the ordered kernel launches, the functional
/// output, and the run description.
///
/// # Example
///
/// ```
/// use gsuite_core::config::RunConfig;
/// use gsuite_core::pipeline::PipelineRun;
/// use gsuite_profile::HwProfiler;
///
/// # fn main() -> Result<(), gsuite_core::CoreError> {
/// let config = RunConfig {
///     scale: 0.02,
///     hidden: 8,
///     ..RunConfig::default()
/// };
/// let graph = config.load_graph();
/// let run = PipelineRun::build(&graph, &config)?;
/// let profile = run.profile(&HwProfiler::v100());
/// assert_eq!(profile.kernels.len(), run.launches.len());
/// assert!(profile.total_time_ms() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PipelineRun {
    /// Human-readable run label.
    pub label: String,
    /// The configuration that produced this run.
    pub config: RunConfig,
    /// Kernel launches in execution order.
    pub launches: Vec<Launch>,
    /// Functional inference output (zeros when functional math disabled).
    pub output: DenseMatrix,
}

impl PipelineRun {
    /// Builds the pipeline for `config` over `graph`, honoring the
    /// configured framework (gSuite or a baseline adapter).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::CoreError::UnsupportedCombination`] for
    /// gSuite + GraphSAGE + SpMM.
    pub fn build(graph: &Graph, config: &RunConfig) -> Result<Self> {
        let (launches, output) = frameworks::build_pipeline(graph, config)?;
        Ok(PipelineRun {
            label: config.label(),
            config: config.clone(),
            launches,
            output,
        })
    }

    /// Profiles every launch with `profiler` and attaches the framework's
    /// modeled host overheads (init + per-launch dispatch).
    pub fn profile(&self, profiler: &dyn Profiler) -> PipelineProfile {
        let costs = self.config.framework.costs();
        let mut profile = PipelineProfile::new(self.label.clone());
        profile.host_overhead_ms = costs.init_ms + costs.per_launch_ms * self.launches.len() as f64;
        for launch in &self.launches {
            let mut stats = profiler.profile(launch.workload.as_ref());
            // Group under the Table II taxonomy name (e.g. all elementwise
            // variants report as "other").
            stats.kernel = launch.kind.name().to_string();
            profile.kernels.push(stats);
        }
        profile
    }

    /// [`PipelineRun::profile`] with the independent kernel launches fanned
    /// across CPU cores.
    ///
    /// Each launch owns an independent simulation/model state (caches start
    /// cold per kernel, as the paper's per-kernel profiling does), so
    /// launches are embarrassingly parallel; results are merged back in
    /// launch order, making the output **bit-identical** to the serial
    /// [`PipelineRun::profile`] — a property the `determinism` test suite
    /// locks in.
    pub fn profile_par(&self, profiler: &(dyn Profiler + Sync)) -> PipelineProfile {
        let costs = self.config.framework.costs();
        let mut profile = PipelineProfile::new(self.label.clone());
        profile.host_overhead_ms = costs.init_ms + costs.per_launch_ms * self.launches.len() as f64;
        profile.kernels = gsuite_par::par_map(&self.launches, |_, launch| {
            let mut stats = profiler.profile(launch.workload.as_ref());
            stats.kernel = launch.kind.name().to_string();
            stats
        });
        profile
    }

    /// Total kernel launches.
    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompModel, FrameworkKind, GnnModel};
    use gsuite_graph::datasets::Dataset;
    use gsuite_profile::HwProfiler;

    fn config() -> RunConfig {
        RunConfig {
            model: GnnModel::Gcn,
            comp: CompModel::Mp,
            dataset: Dataset::Cora,
            scale: 0.02,
            layers: 2,
            hidden: 8,
            ..RunConfig::default()
        }
    }

    #[test]
    fn build_and_profile() {
        let cfg = config();
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        // GCN-MP: 4 kernels/layer x 2 layers + 1 inter-layer ReLU.
        assert_eq!(run.launch_count(), 9);
        let profile = run.profile(&HwProfiler::v100());
        assert_eq!(profile.kernels.len(), 9);
        assert!(profile.device_time_ms() > 0.0);
        assert!(profile.host_overhead_ms > 0.0);
        // Kernel records grouped under Table II names.
        assert!(profile.kernels.iter().any(|k| k.kernel == "indexSelect"));
        assert!(profile.kernels.iter().any(|k| k.kernel == "sgemm"));
    }

    #[test]
    fn framework_overheads_rank_pipelines() {
        let graph = config().load_graph();
        let mut times = Vec::new();
        for fw in FrameworkKind::ALL {
            let cfg = RunConfig {
                framework: fw,
                ..config()
            };
            let run = PipelineRun::build(&graph, &cfg).unwrap();
            let p = run.profile(&HwProfiler::v100());
            times.push((fw, p.total_time_ms()));
        }
        let pyg = times
            .iter()
            .find(|(f, _)| *f == FrameworkKind::PygLike)
            .unwrap()
            .1;
        let dgl = times
            .iter()
            .find(|(f, _)| *f == FrameworkKind::DglLike)
            .unwrap()
            .1;
        let gsuite = times
            .iter()
            .find(|(f, _)| *f == FrameworkKind::GSuite)
            .unwrap()
            .1;
        assert!(pyg > dgl, "PyG {pyg} should exceed DGL {dgl}");
        assert!(dgl > gsuite, "DGL {dgl} should exceed gSuite {gsuite}");
    }

    #[test]
    fn profile_par_is_bit_identical_to_serial() {
        let cfg = config();
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let hw = HwProfiler::v100();
        assert_eq!(run.profile(&hw), run.profile_par(&hw));
    }

    #[test]
    fn profile_only_mode_builds_without_math() {
        let cfg = RunConfig {
            functional_math: false,
            ..config()
        };
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        assert_eq!(run.output.sum(), 0.0, "profile-only output is zeros");
        assert_eq!(run.launch_count(), 9);
    }
}
