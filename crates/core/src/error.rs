use std::error::Error;
use std::fmt;

use gsuite_graph::GraphError;
use gsuite_tensor::TensorError;

/// Error type for pipeline construction and configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The requested (model, computational model) pair is not available —
    /// e.g. GraphSAGE has no SpMM implementation in gSuite (paper §V-A).
    UnsupportedCombination {
        /// Model name.
        model: String,
        /// Computational model name.
        comp: String,
    },
    /// A configuration value failed to parse.
    InvalidConfig {
        /// The configuration key.
        key: String,
        /// The rejected value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// An unknown CLI flag or configuration key.
    UnknownKey {
        /// The offending key.
        key: String,
    },
    /// A cooperative cancellation checkpoint fired mid-build — the
    /// caller's deadline expired between compile phases
    /// (see `PipelineRun::build_cancellable` in the pipeline module).
    Cancelled,
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedCombination { model, comp } => {
                write!(f, "model {model} has no {comp} implementation")
            }
            CoreError::InvalidConfig {
                key,
                value,
                expected,
            } => write!(f, "invalid value {value:?} for {key}: expected {expected}"),
            CoreError::UnknownKey { key } => write!(f, "unknown configuration key {key:?}"),
            CoreError::Cancelled => write!(f, "build cancelled: deadline exceeded"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_combination() {
        let e = CoreError::UnsupportedCombination {
            model: "SAG".into(),
            comp: "SpMM".into(),
        };
        assert!(e.to_string().contains("SAG"));
        assert!(e.to_string().contains("SpMM"));
    }

    #[test]
    fn conversions_work() {
        let te = TensorError::Empty { op: "x" };
        let ce: CoreError = te.into();
        assert!(matches!(ce, CoreError::Tensor(_)));
    }
}
