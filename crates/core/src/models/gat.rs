//! Graph Attention Network (Veličković et al.) — an *extension* model
//! demonstrating the suite's plug-and-play extendability (paper §IV):
//! everything below is composed from the same Table II core kernels plus
//! the elementwise glue, with no new device machinery.
//!
//! Single attention head, the standard formulation:
//!
//! ```text
//! H        = X · W                       (sgemm)
//! s_src    = H · a_src,  s_dst = H · a_dst  (two skinny sgemms)
//! e_uv     = LeakyReLU(s_src[u] + s_dst[v])  per edge  (indexSelect + axpy)
//! α_uv     = exp(e_uv) / Σ_{u'∈N(v)} exp(e_u'v)        (scatter + rowscale)
//! h'_v     = Σ α_uv · H[u]               (indexSelect + scatter)
//! ```
//!
//! The per-edge softmax uses the max-free exponential (inputs are bounded
//! by LeakyReLU over unit-scale weights, so this is numerically safe at
//! benchmark scale and keeps the kernel sequence faithful to the fused
//! implementations frameworks ship).

use std::sync::Arc;

use gsuite_tensor::ops::Reduce;
use gsuite_tensor::DenseMatrix;

use super::builder::{Builder, DTensor};
use super::ModelWeights;
use crate::Result;

/// LeakyReLU slope used for attention logits (the GAT paper's 0.2).
pub const GAT_LEAKY_SLOPE: f32 = 0.2;

/// Builds the MP GAT pipeline.
pub fn build_mp(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let n = b.graph().num_nodes();
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let (src, dst) = b.edges_with_loops();
        // H = X W, and the two attention projections.
        let h = b.linear(&x, &lw.w1, false)?;
        let a = lw.w2.as_ref().expect("GAT carries attention vectors");
        let (a_src, a_dst) = split_attention(a);
        let s_src = b.linear(&h, &a_src, false)?;
        let s_dst = b.linear(&h, &a_dst, false)?;
        // Per-edge logits: gather both endpoint scores, add, LeakyReLU+exp.
        let e_src = b.index_select(&s_src, &src, None)?;
        let e_dst = b.index_select(&s_dst, &dst, None)?;
        let logits = b.axpy(1.0, &e_src, &e_dst)?;
        let weights_e = exp_leaky(b, &logits);
        // Softmax denominator per destination, then α-scaled messages.
        let denom = b.scatter(&weights_e, &dst, n, Reduce::Sum)?;
        let msgs = b.index_select(&h, &src, None)?;
        let scaled = scale_messages(b, &msgs, &weights_e)?;
        let summed = b.scatter(&scaled, &dst, n, Reduce::Sum)?;
        let inv_denom = invert_column(b, &denom);
        let mut out = b.row_scale(&summed, &inv_denom.1, inv_denom.0);
        if b.functional() {
            // row_scale's host math uses the freshly computed denominators.
            out.data = summed.data.as_ref().map(|s| {
                DenseMatrix::from_fn(s.rows(), s.cols(), |r, c| s.get(r, c) * inv_denom.1[r])
            });
        }
        if l + 1 < layers {
            out = b.relu(&out);
        }
        x = out;
    }
    b.set_output(x);
    Ok(())
}

/// Splits the packed `[h, 2]` attention matrix into its two `[h, 1]`
/// projection vectors.
fn split_attention(a: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let h = a.rows();
    let a_src = DenseMatrix::from_fn(h, 1, |r, _| a.get(r, 0));
    let a_dst = DenseMatrix::from_fn(h, 1, |r, _| a.get(r, 1.min(a.cols() - 1)));
    (a_src, a_dst)
}

/// `exp(LeakyReLU(x))` as one elementwise launch (frameworks fuse this).
fn exp_leaky(b: &mut Builder<'_>, logits: &DTensor) -> DTensor {
    let mut out = b.relu(logits); // occupies the elementwise launch slot
    if b.functional() {
        out.data = logits.data.as_ref().map(|m| {
            m.map(|v| {
                let leaky = if v > 0.0 { v } else { GAT_LEAKY_SLOPE * v };
                leaky.exp()
            })
        });
    }
    out
}

/// Per-edge message scaling `msgs[e][:] * α_e` (one rowscale launch whose
/// scale vector is the per-edge weight column).
fn scale_messages(b: &mut Builder<'_>, msgs: &DTensor, alpha: &DTensor) -> Result<DTensor> {
    let scales: Arc<Vec<f32>> = Arc::new(match &alpha.data {
        Some(a) => (0..a.rows()).map(|e| a.get(e, 0)).collect(),
        None => vec![1.0; msgs.rows],
    });
    let mut out = b.row_scale(msgs, &scales, alpha.buf);
    if !b.functional() {
        out.data = None;
    }
    Ok(out)
}

/// Host-side reciprocal of a `[n, 1]` column (the softmax divide), with the
/// device-side buffer reused from the denominator.
fn invert_column(b: &Builder<'_>, denom: &DTensor) -> (crate::plan::BufId, Arc<Vec<f32>>) {
    let inv: Vec<f32> = match &denom.data {
        Some(d) => (0..d.rows())
            .map(|r| {
                let v = d.get(r, 0);
                if v.abs() < 1e-20 {
                    0.0
                } else {
                    1.0 / v
                }
            })
            .collect(),
        None => vec![1.0; denom.rows],
    };
    let _ = b;
    (denom.buf, Arc::new(inv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GnnModel;
    use crate::kernels::KernelKind;
    use gsuite_graph::GraphGenerator;
    use gsuite_tensor::ops;

    fn weights(in_dim: usize, hidden: usize, layers: usize) -> ModelWeights {
        ModelWeights::init(GnnModel::Gat, in_dim, hidden, layers, 5)
    }

    #[test]
    fn pipeline_uses_only_core_kernels() {
        let g = GraphGenerator::new(20, 60).seed(2).build_graph(6).unwrap();
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &weights(6, 4, 1)).unwrap();
        let (plan, out) = b.finish();
        assert_eq!(out.shape(), (20, 4));
        // Extendability claim: no kernel outside the Table II set + glue.
        let kinds = plan.kinds();
        for k in &kinds {
            assert!(matches!(
                k,
                KernelKind::Sgemm
                    | KernelKind::IndexSelect
                    | KernelKind::Scatter
                    | KernelKind::Elementwise
            ));
        }
        // Attention needs both gathers and the softmax scatters.
        let scatters = kinds.iter().filter(|&&k| k == KernelKind::Scatter).count();
        assert!(scatters >= 2, "softmax denominator + aggregation");
    }

    #[test]
    fn attention_weights_are_a_convex_combination() {
        // With α summing to 1 per destination, attending over identical
        // neighbour embeddings must reproduce that embedding.
        let g = GraphGenerator::new(12, 40).seed(3).build_graph(5).unwrap();
        // Constant features -> H rows identical -> output rows must equal
        // H's row (softmax-weighted average of identical vectors).
        let constant = gsuite_tensor::DenseMatrix::filled(12, 5, 0.7);
        let g = gsuite_graph::Graph::new(g.edges().clone(), constant).unwrap();
        let w = weights(5, 3, 1);
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &w).unwrap();
        let (_, out) = b.finish();
        let h = ops::gemm(g.features(), &w.layers[0].w1).unwrap();
        assert!(
            out.approx_eq(&h, 1e-3),
            "max diff {}",
            out.max_abs_diff(&h).unwrap()
        );
    }

    #[test]
    fn deterministic() {
        let g = GraphGenerator::new(15, 45).seed(9).build_graph(4).unwrap();
        let w = weights(4, 4, 2);
        let run = |g: &gsuite_graph::Graph| {
            let mut b = Builder::new(g, true);
            build_mp(&mut b, &w).unwrap();
            b.finish().1
        };
        assert_eq!(run(&g), run(&g));
    }
}
