//! The GNN models of the paper (§II-C): GCN, GIN and GraphSAGE, each
//! assembled from core kernels under the MP and/or SpMM computational
//! models.
//!
//! Model builders work in two coupled domains at once:
//!
//! * **functionally** — computing the real inference result with
//!   [`gsuite_tensor::ops`] (skippable for profile-only runs on huge
//!   inputs), and
//! * **architecturally** — lowering one [`crate::plan::PlanOp`] per
//!   kernel the corresponding CUDA pipeline would launch, over logical
//!   buffers whose device addresses the plan scheduler
//!   ([`crate::plan::Plan::schedule`]) assigns after optimization, with
//!   index/structure arrays taken from the live graph.
//!
//! The central correctness property (tested in `tests/`): for GCN and GIN,
//! the MP pipeline and the SpMM pipeline produce the same output up to
//! floating-point reassociation — the paper's claim that both computational
//! models implement the same mathematics (Eqs. 1–4).

mod builder;
mod gat;
mod gcn;
mod gin;
mod rgcn;
mod sage;
mod sgc;

pub use builder::{Builder, DSparse, DTensor};

use gsuite_tensor::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use crate::plan::Plan;
use crate::{CoreError, Result};
use gsuite_graph::Graph;

/// Per-layer dense weights.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Primary linear weight (`[in, hidden]`).
    pub w1: DenseMatrix,
    /// Secondary weight: GIN's second MLP layer (`[hidden, hidden]`) or
    /// GraphSAGE's neighbour weight (`[in, hidden]`).
    pub w2: Option<DenseMatrix>,
}

/// All layer weights of a model instance, seeded deterministically.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// One entry per GNN layer.
    pub layers: Vec<LayerWeights>,
}

impl ModelWeights {
    /// Initializes weights for `model` with `layers` layers mapping
    /// `in_dim -> hidden -> ... -> hidden`.
    pub fn init(model: GnnModel, in_dim: usize, hidden: usize, layers: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x57ED_5EED);
        let mut mk = |rows: usize, cols: usize| {
            let scale = 1.0 / (rows.max(1) as f32).sqrt();
            DenseMatrix::from_fn(rows, cols, |_, _| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
        };
        let mut out = Vec::with_capacity(layers);
        for layer in 0..layers {
            // SGC propagates at input width before its single linear layer.
            let d_in = if layer == 0 || model == GnnModel::Sgc {
                in_dim
            } else {
                hidden
            };
            let w1 = mk(d_in, hidden);
            let w2 = match model {
                GnnModel::Gin => Some(mk(hidden, hidden)),
                GnnModel::Sage => Some(mk(d_in, hidden)),
                // Packed [hidden, 2] attention projection vectors.
                GnnModel::Gat => Some(mk(hidden, 2)),
                // RGCN's per-relation weights live beside these layer
                // weights (see `rgcn::relation_weights`); w1 is its
                // self-loop projection.
                GnnModel::Gcn | GnnModel::Sgc | GnnModel::Rgcn => None,
            };
            out.push(LayerWeights { w1, w2 });
        }
        ModelWeights { layers: out }
    }
}

/// Lowers the kernel pipeline (and, in functional mode, the inference
/// result) for `config` over `graph`.
///
/// This is the entry point [`crate::pipeline::PipelineRun`] uses; it
/// dispatches on `(model, comp)` and returns the lowered [`Plan`] plus
/// the output feature matrix (zeros when functional math is disabled).
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedCombination`] for GraphSAGE under SpMM —
/// the combination the paper's gSuite surface does not provide (§V-A). The
/// DGL-like baseline adapter reaches SAGE-SpMM through
/// [`builder::Builder::sage_spmm_layer`] directly instead.
pub fn build_model(graph: &Graph, config: &RunConfig) -> Result<(Plan, DenseMatrix)> {
    // Upload content identities feed only the O2 hoist pass; skip the
    // O(E)/O(nnz) hashing on the O0 hot path.
    let mut builder = Builder::new(graph, config.functional_math)
        .track_uploads(config.opt == crate::plan::OptLevel::O2);
    lower_into(&mut builder, config)?;
    Ok(builder.finish())
}

/// Lowers `config`'s model into an existing builder — the shared
/// dispatcher behind [`build_model`] and the mini-batch path (which
/// appends every sampled batch to one combined plan). `config.comp` must
/// already be the *effective* computational model (the framework's forced
/// model applied); the DGL-only SAGE-SpMM variant dispatches here too.
pub(crate) fn lower_into(builder: &mut Builder, config: &RunConfig) -> Result<()> {
    let weights = ModelWeights::init(
        config.model,
        builder.graph().feature_dim(),
        config.hidden,
        config.layers,
        config.seed,
    );
    if config.framework == FrameworkKind::DglLike
        && config.model == GnnModel::Sage
        && config.comp == CompModel::Spmm
    {
        // DGL's SAGE: mean-aggregation SpMM variant (not part of the
        // gSuite surface).
        return sage::build_spmm(builder, &weights);
    }
    match (config.model, config.comp) {
        (GnnModel::Gcn, CompModel::Mp) => gcn::build_mp(builder, &weights)?,
        (GnnModel::Gcn, CompModel::Spmm) => gcn::build_spmm(builder, &weights)?,
        (GnnModel::Gin, CompModel::Mp) => gin::build_mp(builder, &weights)?,
        (GnnModel::Gin, CompModel::Spmm) => gin::build_spmm(builder, &weights)?,
        (GnnModel::Sage, CompModel::Mp) => sage::build_mp(builder, &weights)?,
        (GnnModel::Gat, CompModel::Mp) => gat::build_mp(builder, &weights)?,
        (GnnModel::Sgc, CompModel::Mp) => sgc::build_mp(builder, &weights)?,
        (GnnModel::Sgc, CompModel::Spmm) => sgc::build_spmm(builder, &weights)?,
        (GnnModel::Rgcn, CompModel::Mp) => rgcn::build_mp(builder, config)?,
        (GnnModel::Sage, CompModel::Spmm)
        | (GnnModel::Gat, CompModel::Spmm)
        | (GnnModel::Rgcn, CompModel::Spmm) => {
            return Err(CoreError::UnsupportedCombination {
                model: config.model.name().to_string(),
                comp: "SpMM".to_string(),
            })
        }
    }
    Ok(())
}

/// Lowers the DGL-style SAGE-SpMM pipeline (mean aggregation as a
/// row-normalized SpMM). Not part of the gSuite surface — used by the
/// DGL-like baseline adapter.
pub fn build_sage_spmm(graph: &Graph, config: &RunConfig) -> Result<(Plan, DenseMatrix)> {
    let weights = ModelWeights::init(
        GnnModel::Sage,
        graph.feature_dim(),
        config.hidden,
        config.layers,
        config.seed,
    );
    let mut builder = Builder::new(graph, config.functional_math)
        .track_uploads(config.opt == crate::plan::OptLevel::O2);
    sage::build_spmm(&mut builder, &weights)?;
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_graph::datasets::Dataset;

    #[test]
    fn weights_are_seeded() {
        let a = ModelWeights::init(GnnModel::Gcn, 8, 4, 2, 7);
        let b = ModelWeights::init(GnnModel::Gcn, 8, 4, 2, 7);
        let c = ModelWeights::init(GnnModel::Gcn, 8, 4, 2, 8);
        assert_eq!(a.layers[0].w1, b.layers[0].w1);
        assert_ne!(a.layers[0].w1, c.layers[0].w1);
    }

    #[test]
    fn weight_shapes_follow_model() {
        let gcn = ModelWeights::init(GnnModel::Gcn, 10, 4, 2, 0);
        assert_eq!(gcn.layers[0].w1.shape(), (10, 4));
        assert_eq!(gcn.layers[1].w1.shape(), (4, 4));
        assert!(gcn.layers[0].w2.is_none());

        let gin = ModelWeights::init(GnnModel::Gin, 10, 4, 1, 0);
        assert_eq!(gin.layers[0].w2.as_ref().unwrap().shape(), (4, 4));

        let sage = ModelWeights::init(GnnModel::Sage, 10, 4, 1, 0);
        assert_eq!(sage.layers[0].w2.as_ref().unwrap().shape(), (10, 4));
    }

    #[test]
    fn sage_spmm_is_rejected() {
        let config = RunConfig {
            model: GnnModel::Sage,
            comp: CompModel::Spmm,
            dataset: Dataset::Cora,
            scale: 0.01,
            ..RunConfig::default()
        };
        let graph = config.load_graph();
        let err = build_model(&graph, &config).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedCombination { .. }));
    }
}
