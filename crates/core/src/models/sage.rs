//! GraphSAGE (Hamilton et al.) — paper §II-C3, Eq. 5. MP-only in the
//! gSuite surface; the SpMM variant exists solely for the DGL-like
//! baseline adapter.

use gsuite_tensor::ops::Reduce;

use super::builder::Builder;
use super::ModelWeights;
use crate::Result;

/// The message-passing GraphSAGE pipeline (Eq. 5), per layer:
/// degree scatter → `indexSelect` (raw features over `N(v) ∪ {v}`) →
/// `scatter`-sum → elementwise mean-divide → two `sgemm`s (`W1·h`,
/// `W2·mean`) → elementwise add → ReLU between layers.
pub fn build_mp(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let n = b.graph().num_nodes();
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let (src, dst) = b.edges_with_loops();
        let (deg_base, deg) = b.degree_vector();
        let msgs = b.index_select(&x, &src, None)?;
        let sum = b.scatter(&msgs, &dst, n, Reduce::Sum)?;
        let inv_deg = std::sync::Arc::new(deg.iter().map(|&d| 1.0 / d).collect::<Vec<f32>>());
        let mean = b.row_scale(&sum, &inv_deg, deg_base);
        let a = b.linear(&x, &lw.w1, false)?;
        let w2 = lw.w2.as_ref().expect("SAGE has a neighbour weight");
        let bb = b.linear(&mean, w2, false)?;
        let mut out = b.axpy(1.0, &a, &bb)?;
        if l + 1 < layers {
            out = b.relu(&out);
        }
        x = out;
    }
    b.set_output(x);
    Ok(())
}

/// The DGL-style SpMM GraphSAGE: mean aggregation as a row-normalized
/// `SpMM`, then the same linear tail. Not exposed through the gSuite
/// configuration surface (the paper found no SpMM SAGE to imitate); the
/// DGL-like adapter calls it directly.
pub fn build_spmm(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let w2 = lw.w2.as_ref().expect("SAGE has a neighbour weight");
        let out = b.sage_spmm_layer(&x, &lw.w1, w2, l + 1 == layers)?;
        x = out;
    }
    b.set_output(x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GnnModel;
    use crate::kernels::KernelKind;
    use gsuite_graph::GraphGenerator;
    use gsuite_tensor::ops;

    fn weights(in_dim: usize, hidden: usize, layers: usize) -> ModelWeights {
        ModelWeights::init(GnnModel::Sage, in_dim, hidden, layers, 21)
    }

    #[test]
    fn mp_sequence() {
        let g = GraphGenerator::new(14, 30).seed(6).build_graph(5).unwrap();
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &weights(5, 3, 1)).unwrap();
        let (plan, out) = b.finish();
        let kinds = plan.kinds();
        assert_eq!(
            kinds,
            vec![
                KernelKind::Scatter, // degrees
                KernelKind::IndexSelect,
                KernelKind::Scatter,
                KernelKind::Elementwise, // mean divide
                KernelKind::Sgemm,
                KernelKind::Sgemm,
                KernelKind::Elementwise, // add
            ]
        );
        assert_eq!(out.shape(), (14, 3));
    }

    #[test]
    fn functional_matches_direct_formula() {
        // out = X·W1 + mean_{N(v) ∪ {v}}(X)·W2
        let g = GraphGenerator::new(10, 24).seed(8).build_graph(4).unwrap();
        let w = weights(4, 3, 1);
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &w).unwrap();
        let (_, out) = b.finish();

        // Direct computation.
        let at = gsuite_graph::add_self_loops(&g.adjacency_csr_transposed());
        let deg: Vec<f32> = at.row_sums();
        let summed = ops::spmm(&at, g.features()).unwrap();
        let mean = gsuite_tensor::DenseMatrix::from_fn(10, 4, |r, c| summed.get(r, c) / deg[r]);
        let expected = ops::gemm(g.features(), &w.layers[0].w1)
            .unwrap()
            .add(&ops::gemm(&mean, w.layers[0].w2.as_ref().unwrap()).unwrap())
            .unwrap();
        assert!(
            out.approx_eq(&expected, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expected).unwrap()
        );
    }

    #[test]
    fn mp_equals_dgl_spmm_variant() {
        let g = GraphGenerator::new(18, 50).seed(12).build_graph(6).unwrap();
        let w = weights(6, 4, 2);
        let mut mp = Builder::new(&g, true);
        build_mp(&mut mp, &w).unwrap();
        let (_, mp_out) = mp.finish();
        let mut sp = Builder::new(&g, true);
        build_spmm(&mut sp, &w).unwrap();
        let (_, sp_out) = sp.finish();
        assert!(
            mp_out.approx_eq(&sp_out, 1e-3),
            "max diff {}",
            mp_out.max_abs_diff(&sp_out).unwrap()
        );
    }
}
