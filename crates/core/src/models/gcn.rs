//! Graph Convolutional Network (Kipf & Welling) — paper §II-C1, Eqs. 1–2,
//! pipelines per Fig. 2.

use gsuite_tensor::ops::Reduce;

use super::builder::Builder;
use super::ModelWeights;
use crate::Result;

/// The message-passing GCN pipeline (Fig. 2 left), per layer:
/// degree scatter → `sgemm` (X·W) → `indexSelect` with the folded
/// `1/√(d_u d_v)` normalization → `scatter`-sum over `Â`'s edges (self-loops
/// included) → ReLU between layers.
///
/// Note the paper's structural point: GCN applies the linear step *first*,
/// so its gather/scatter kernels run at hidden width — far less parallelism
/// than GIN/SAGE, which aggregate at input width (this is what drives GCN's
/// idle-heavy Fig. 7 profile).
pub fn build_mp(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let n = b.graph().num_nodes();
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let (src, dst) = b.edges_with_loops();
        let (deg_base, deg) = b.degree_vector();
        let h = b.linear(&x, &lw.w1, false)?;
        let msgs = b.index_select(&h, &src, Some((&dst, deg_base, &deg)))?;
        let mut out = b.scatter(&msgs, &dst, n, Reduce::Sum)?;
        if l + 1 < layers {
            out = b.relu(&out);
        }
        x = out;
    }
    b.set_output(x);
    Ok(())
}

/// The SpMM GCN pipeline (Fig. 2 right), per layer:
/// `SpGEMM` (D^-1/2 · Â^T) → `SpGEMM` (· D^-1/2) → `SpMM` (· X) →
/// `sgemm` (· W) → ReLU between layers.
pub fn build_spmm(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let at = b.adj_t_sparse(true);
        let d = b.inv_sqrt_deg_diag();
        let t1 = b.spgemm(&d, &at, &at)?;
        let t2 = b.spgemm(&t1, &d, &at)?;
        let agg = b.spmm(&t2, &x)?;
        let mut out = b.linear(&agg, &lw.w1, false)?;
        if l + 1 < layers {
            out = b.relu(&out);
        }
        x = out;
    }
    b.set_output(x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelKind;
    use gsuite_graph::GraphGenerator;

    fn weights(in_dim: usize, hidden: usize, layers: usize) -> ModelWeights {
        ModelWeights::init(crate::config::GnnModel::Gcn, in_dim, hidden, layers, 3)
    }

    #[test]
    fn mp_kernel_sequence_matches_fig2() {
        let g = GraphGenerator::new(20, 60).seed(1).build_graph(8).unwrap();
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &weights(8, 4, 1)).unwrap();
        let (plan, out) = b.finish();
        let kinds = plan.kinds();
        assert_eq!(
            kinds,
            vec![
                KernelKind::Scatter, // degrees
                KernelKind::Sgemm,
                KernelKind::IndexSelect,
                KernelKind::Scatter,
            ]
        );
        assert_eq!(out.shape(), (20, 4));
    }

    #[test]
    fn spmm_kernel_sequence_matches_fig2() {
        let g = GraphGenerator::new(20, 60).seed(1).build_graph(8).unwrap();
        let mut b = Builder::new(&g, true);
        build_spmm(&mut b, &weights(8, 4, 1)).unwrap();
        let (plan, out) = b.finish();
        let kinds = plan.kinds();
        assert_eq!(
            kinds,
            vec![
                KernelKind::Spgemm,
                KernelKind::Spgemm,
                KernelKind::Spmm,
                KernelKind::Sgemm,
            ]
        );
        assert_eq!(out.shape(), (20, 4));
    }

    #[test]
    fn mp_equals_spmm() {
        // The paper's central equivalence: both computational models
        // implement Eq. 1 == Eq. 2.
        let g = GraphGenerator::new(30, 120).seed(5).build_graph(6).unwrap();
        let w = weights(6, 5, 2);
        let mut mp = Builder::new(&g, true);
        build_mp(&mut mp, &w).unwrap();
        let (_, mp_out) = mp.finish();
        let mut sp = Builder::new(&g, true);
        build_spmm(&mut sp, &w).unwrap();
        let (_, sp_out) = sp.finish();
        assert!(
            mp_out.approx_eq(&sp_out, 1e-3),
            "max diff {}",
            mp_out.max_abs_diff(&sp_out).unwrap()
        );
    }

    #[test]
    fn layers_stack() {
        let g = GraphGenerator::new(12, 30).seed(2).build_graph(4).unwrap();
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &weights(4, 4, 3)).unwrap();
        let (plan, _) = b.finish();
        // 4 kernels per layer + relu between layers (2 of them).
        assert_eq!(plan.launch_count(), 3 * 4 + 2);
    }
}
