//! Relational GCN (Schlichtkrull et al.) — the heterogeneous extension
//! model: one aggregation chain per typed edge relation, plus a
//! self-loop projection, summed per layer.
//!
//! RGCN is *not* part of the paper's evaluated trio; it exercises the
//! typed-graph substrate ([`gsuite_graph::HeteroGraph`]) the `hetero`
//! scenario runs on, built from the exact same Table II core kernels as
//! every other model (`sgemm` / `indexSelect` / `scatter` / elementwise).
//!
//! Relation structure resolution: when the lowered graph *is* the
//! flattened ogbn-mag union graph, the lowering rebuilds the identical
//! [`gsuite_graph::HeteroGraph`] from `(dataset, scale)` (both are pure
//! functions of the seed) and emits one chain per typed relation. Any
//! other graph — a homogeneous dataset, or a sampled ego-net whose local
//! ids no longer match the union id space — degrades to a single
//! relation holding every edge, so RGCN stays total over the whole
//! configuration space.

use std::sync::Arc;

use gsuite_graph::datasets::Dataset;
use gsuite_graph::HeteroGraph;
use gsuite_tensor::ops::Reduce;
use gsuite_tensor::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::builder::Builder;
use crate::config::RunConfig;
use crate::Result;

/// Fixed relation-weight count: the ogbn-mag shape's four relations.
/// Always generated in full (weight draws stay identical whatever graph
/// the model lands on); single-relation fallbacks use only the first.
pub(crate) const NUM_RELATIONS: usize = 4;

/// Per-layer RGCN weights: the self-loop projection plus one matrix per
/// relation, drawn with the same seeded generator idiom as
/// [`super::ModelWeights::init`] (a distinct salt keeps the streams
/// independent).
pub(crate) fn relation_weights(
    in_dim: usize,
    hidden: usize,
    layers: usize,
    seed: u64,
) -> Vec<(DenseMatrix, Vec<DenseMatrix>)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57ED_5EED ^ 0x4e1a_7104);
    let mut mk = |rows: usize, cols: usize| {
        let scale = 1.0 / (rows.max(1) as f32).sqrt();
        DenseMatrix::from_fn(rows, cols, |_, _| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
    };
    let mut out = Vec::with_capacity(layers);
    for layer in 0..layers {
        let d_in = if layer == 0 { in_dim } else { hidden };
        let w_self = mk(d_in, hidden);
        let w_rel = (0..NUM_RELATIONS).map(|_| mk(d_in, hidden)).collect();
        out.push((w_self, w_rel));
    }
    out
}

/// One typed relation's `(src, dst)` endpoint arrays, shared with the
/// plan's content-tagged upload buffers.
type RelationEndpoints = (Arc<Vec<u32>>, Arc<Vec<u32>>);

/// The typed relation endpoint arrays this lowering aggregates over, or
/// the all-edges fallback (`None`) when the graph carries no recoverable
/// relation structure.
fn typed_relations(b: &Builder<'_>, config: &RunConfig) -> Option<Vec<RelationEndpoints>> {
    if config.dataset != Dataset::OgbnMag {
        return None;
    }
    let h = HeteroGraph::mag_like(config.scale);
    // A sampled ego-net keeps the dataset but re-indexes nodes; only the
    // untouched union graph can consume the typed endpoint arrays.
    if h.num_nodes() != b.graph().num_nodes() || h.name() != b.graph().name() {
        return None;
    }
    Some(
        (0..h.num_relations())
            .map(|r| {
                let (src, dst) = h.relation_edges(r);
                (Arc::new(src.to_vec()), Arc::new(dst.to_vec()))
            })
            .collect(),
    )
}

/// The message-passing RGCN pipeline, per layer:
/// `sgemm` (self projection) → per relation: `sgemm` (X·W_r) →
/// `indexSelect` over the relation's sources → `scatter`-sum into the
/// destinations → `axpy` accumulate → ReLU between layers.
pub fn build_mp(b: &mut Builder<'_>, config: &RunConfig) -> Result<()> {
    let n = b.graph().num_nodes();
    let weights = relation_weights(
        b.graph().feature_dim(),
        config.hidden,
        config.layers,
        config.seed,
    );
    // Upload the relation index arrays once; every layer reuses them.
    let rel_indexes: Vec<_> = match typed_relations(b, config) {
        Some(rels) => rels
            .into_iter()
            .enumerate()
            .map(|(r, (src, dst))| b.custom_edges(&format!("rel{r}"), src, dst))
            .collect(),
        None => vec![b.edges()],
    };
    let mut x = b.input_features();
    let layers = weights.len();
    for (l, (w_self, w_rel)) in weights.iter().enumerate() {
        let mut acc = b.linear(&x, w_self, false)?;
        for (r, (src, dst)) in rel_indexes.iter().enumerate() {
            let h = b.linear(&x, &w_rel[r], false)?;
            let msgs = b.index_select(&h, src, None)?;
            let agg = b.scatter(&msgs, dst, n, Reduce::Sum)?;
            acc = b.axpy(1.0, &acc, &agg)?;
        }
        if l + 1 < layers {
            acc = b.relu(&acc);
        }
        x = acc;
    }
    b.set_output(x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GnnModel;
    use crate::kernels::KernelKind;
    use gsuite_graph::GraphGenerator;

    #[test]
    fn fallback_single_relation_kernel_sequence() {
        let g = GraphGenerator::new(20, 60).seed(1).build_graph(8).unwrap();
        let config = RunConfig {
            model: GnnModel::Rgcn,
            hidden: 4,
            layers: 1,
            ..RunConfig::default()
        };
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &config).unwrap();
        let (plan, out) = b.finish();
        // self sgemm, then one relation chain: sgemm/gather/scatter/axpy.
        assert_eq!(
            plan.kinds(),
            vec![
                KernelKind::Sgemm,
                KernelKind::Sgemm,
                KernelKind::IndexSelect,
                KernelKind::Scatter,
                KernelKind::Elementwise,
            ]
        );
        assert_eq!(out.shape(), (20, 4));
    }

    #[test]
    fn mag_union_graph_lowers_one_chain_per_relation() {
        let config = RunConfig {
            model: GnnModel::Rgcn,
            dataset: Dataset::OgbnMag,
            scale: 0.0005,
            hidden: 4,
            layers: 2,
            ..RunConfig::default()
        };
        let g = config.load_graph();
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &config).unwrap();
        let (plan, out) = b.finish();
        let gathers = plan
            .kinds()
            .iter()
            .filter(|k| **k == KernelKind::IndexSelect)
            .count();
        assert_eq!(
            gathers,
            2 * NUM_RELATIONS,
            "one gather per relation per layer"
        );
        assert_eq!(out.shape(), (g.num_nodes(), 4));
    }

    #[test]
    fn lowering_is_deterministic() {
        let config = RunConfig {
            model: GnnModel::Rgcn,
            dataset: Dataset::OgbnMag,
            scale: 0.0005,
            hidden: 8,
            ..RunConfig::default()
        };
        let g = config.load_graph();
        let mut a = Builder::new(&g, true);
        build_mp(&mut a, &config).unwrap();
        let (_, out_a) = a.finish();
        let mut c = Builder::new(&g, true);
        build_mp(&mut c, &config).unwrap();
        let (_, out_c) = c.finish();
        assert_eq!(out_a, out_c);
    }
}
