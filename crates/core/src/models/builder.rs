//! The pipeline builder: couples functional math with **plan lowering**.
//!
//! Every method records the kernel op(s) a CUDA implementation of the
//! same step would launch — as [`crate::plan::PlanOp`]s over logical
//! [`crate::plan::BufId`] buffers — and, when functional math is enabled,
//! computes the true result with [`gsuite_tensor::ops`]. Device addresses
//! are *not* assigned here: the plan's scheduler
//! ([`crate::plan::Plan::schedule`]) does that after the optimization
//! passes have run, which is what makes fusion, hoisting and memory
//! planning possible. Buffers are registered in the exact order the
//! historical direct-emission builder allocated them, so an O0 schedule
//! reproduces the pre-IR address layout byte for byte.

use std::sync::Arc;

use gsuite_graph::Graph;
use gsuite_tensor::ops::{self, Reduce};
use gsuite_tensor::{CsrMatrix, DenseMatrix};

use crate::kernels::{EwOp, KernelKind, SgemmKernel};
use crate::plan::{AddrClass, BufClass, BufId, Fnv, OpSpec, Plan, ScaleSpec};
use crate::Result;

/// A dense device tensor: a logical buffer plus shape, with the host-side
/// value present only in functional mode.
#[derive(Debug, Clone)]
pub struct DTensor {
    /// Logical plan buffer.
    pub buf: BufId,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Host value (functional mode only).
    pub data: Option<DenseMatrix>,
}

impl DTensor {
    /// Total elements.
    pub fn elems(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

/// An index (endpoint) array on the device.
#[derive(Debug, Clone)]
pub struct DIndex {
    /// Logical plan buffer.
    pub buf: BufId,
    /// The endpoint values.
    pub data: Arc<Vec<u32>>,
}

/// A sparse CSR device matrix: structure always present (workloads need
/// it), numeric values only in functional mode.
#[derive(Debug, Clone)]
pub struct DSparse {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// CSR row pointer.
    pub row_ptr: Arc<Vec<u32>>,
    /// CSR column indices.
    pub col_idx: Arc<Vec<u32>>,
    /// Stored values (functional mode; `None` means implicit ones).
    pub values: Option<Arc<Vec<f32>>>,
    /// Whether device kernels load the value array.
    pub has_values: bool,
    /// Logical buffers: row pointer, column indices, values.
    pub bufs: (BufId, BufId, BufId),
}

impl DSparse {
    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Reconstructs a host [`CsrMatrix`] (functional mode helper).
    fn to_csr(&self) -> CsrMatrix {
        let values = match &self.values {
            Some(v) => v.as_ref().clone(),
            None => vec![1.0; self.nnz()],
        };
        CsrMatrix::from_parts(
            self.rows,
            self.cols,
            self.row_ptr.as_ref().clone(),
            self.col_idx.as_ref().clone(),
            values,
        )
        .expect("DSparse maintains CSR invariants")
    }
}

/// Pipeline builder over one graph: lowers model steps into a
/// [`Plan`] while (optionally) computing functional results.
pub struct Builder<'g> {
    graph: &'g Graph,
    functional: bool,
    /// Whether uploads get content identities/fingerprints. Only the O2
    /// hoist pass consumes them, and computing them is O(E)/O(nnz) per
    /// upload — pure waste on the default O0 hot path, so lowering for
    /// O0 turns it off ([`Builder::track_uploads`]).
    track_content: bool,
    /// Whether weight buffers get payload content identities too
    /// (default off — the historical single-pipeline plans never tagged
    /// weights, and the O2 planopt golden depends on that). The
    /// mini-batch path turns it on so the hoist pass can recognize each
    /// batch's re-upload of the same layer weights and keep one copy.
    tag_weights: bool,
    plan: Plan,
    output: Option<DTensor>,
    /// Transposed, deduplicated adjacency (rows = destinations) — the
    /// canonical aggregation structure both computational models share.
    adj_t: CsrMatrix,
    /// Cached edge endpoint arrays (without and with self-loops).
    edges_raw: Option<(DIndex, DIndex)>,
    edges_loop: Option<(DIndex, DIndex)>,
    /// Cached degree vector (`in-degree + 1`) and its device buffer.
    deg: Option<(BufId, Arc<Vec<f32>>)>,
}

impl<'g> Builder<'g> {
    /// A builder over `graph`; `functional` enables host-side math.
    pub fn new(graph: &'g Graph, functional: bool) -> Self {
        Self::with_plan(graph, functional, Plan::new())
    }

    /// A builder over `graph` that appends to an existing `plan` — the
    /// mini-batch path lowers every sampled batch into one combined plan
    /// so cross-batch CSE can share weight uploads. Buffer and op ids
    /// continue from where the previous batch left off.
    pub fn with_plan(graph: &'g Graph, functional: bool, plan: Plan) -> Self {
        Builder {
            graph,
            functional,
            track_content: true,
            tag_weights: false,
            plan,
            output: None,
            adj_t: graph.adjacency_csr_transposed(),
            edges_raw: None,
            edges_loop: None,
            deg: None,
        }
    }

    /// Enables/disables upload content identities (default on). The
    /// identities feed only the O2 hoist/CSE pass; lowering destined for
    /// O0 disables them to keep the hot path free of O(E) hashing.
    pub fn track_uploads(mut self, track: bool) -> Self {
        self.track_content = track;
        self
    }

    /// Enables payload content identities on weight buffers (default
    /// off). Only meaningful with [`Builder::track_uploads`] on; the
    /// single-pipeline lowering keeps weights untagged to preserve the
    /// historical O2 plan byte for byte, while the mini-batch path tags
    /// them so identical layer weights re-lowered per batch collapse to
    /// one upload in the hoist pass.
    pub fn tag_weights(mut self, tag: bool) -> Self {
        self.tag_weights = tag;
        self
    }

    /// Whether functional math is enabled.
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// The graph under construction.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Number of ops lowered so far (one kernel launch each).
    pub fn launch_count(&self) -> usize {
        self.plan.launch_count()
    }

    /// Registers a device buffer.
    fn buf(&mut self, name: impl Into<String>, elems: u64, class: BufClass) -> BufId {
        self.plan
            .add_buf(name, elems, class, AddrClass::Device, None)
    }

    /// The input feature tensor `X` (registered on first call).
    pub fn input_features(&mut self) -> DTensor {
        let g = self.graph;
        let buf = self.buf(
            "X",
            g.num_nodes() as u64 * g.feature_dim() as u64,
            BufClass::Dense,
        );
        DTensor {
            buf,
            rows: g.num_nodes(),
            cols: g.feature_dim(),
            data: self.functional.then(|| g.features().clone()),
        }
    }

    /// Marks `out` as the pipeline's final output.
    pub fn set_output(&mut self, out: DTensor) {
        self.plan.output = Some(out.buf);
        self.output = Some(out);
    }

    /// Consumes the builder, returning the lowered plan and the output
    /// matrix (zeros of the right shape when functional math was off).
    pub fn finish(self) -> (Plan, DenseMatrix) {
        let output = match self.output {
            Some(DTensor { data: Some(m), .. }) => m,
            Some(DTensor { rows, cols, .. }) => DenseMatrix::zeros(rows, cols),
            None => DenseMatrix::zeros(0, 0),
        };
        (self.plan, output)
    }

    // ----- graph-derived operands -------------------------------------

    fn endpoint_pair(&mut self, with_loops: bool) -> (DIndex, DIndex) {
        let tag = if with_loops { "edgesL" } else { "edges" };
        let (src, dst) = endpoints_of(&self.adj_t, with_loops);
        let sig = self.track_content.then(|| {
            let mut h = Fnv::new();
            h.str(tag).u32s(&src).u32s(&dst);
            h.finish()
        });
        let src_buf = self.plan.add_buf(
            format!("{tag}.src"),
            src.len() as u64,
            BufClass::Index,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 1)),
        );
        let dst_buf = self.plan.add_buf(
            format!("{tag}.dst"),
            dst.len() as u64,
            BufClass::Index,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 2)),
        );
        (
            DIndex {
                buf: src_buf,
                data: Arc::new(src),
            },
            DIndex {
                buf: dst_buf,
                data: Arc::new(dst),
            },
        )
    }

    /// Deduplicated `(src, dst)` endpoint arrays, sorted by destination —
    /// the canonical MP edge index.
    pub fn edges(&mut self) -> (DIndex, DIndex) {
        if self.edges_raw.is_none() {
            self.edges_raw = Some(self.endpoint_pair(false));
        }
        self.edges_raw.clone().expect("just cached")
    }

    /// Endpoint arrays with self-loops appended (`Â`'s edge set).
    pub fn edges_with_loops(&mut self) -> (DIndex, DIndex) {
        if self.edges_loop.is_none() {
            self.edges_loop = Some(self.endpoint_pair(true));
        }
        self.edges_loop.clone().expect("just cached")
    }

    /// Uploads an arbitrary `(src, dst)` endpoint pair (e.g. one typed
    /// relation of a heterogeneous graph) as content-tagged index
    /// buffers, so per-layer re-uploads of the same relation hoist
    /// cleanly at O2.
    pub fn custom_edges(
        &mut self,
        tag: &str,
        src: Arc<Vec<u32>>,
        dst: Arc<Vec<u32>>,
    ) -> (DIndex, DIndex) {
        let sig = self.track_content.then(|| {
            let mut h = Fnv::new();
            h.str(tag).u32s(&src).u32s(&dst);
            h.finish()
        });
        let src_buf = self.plan.add_buf(
            format!("{tag}.src"),
            src.len() as u64,
            BufClass::Index,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 1)),
        );
        let dst_buf = self.plan.add_buf(
            format!("{tag}.dst"),
            dst.len() as u64,
            BufClass::Index,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 2)),
        );
        (
            DIndex {
                buf: src_buf,
                data: src,
            },
            DIndex {
                buf: dst_buf,
                data: dst,
            },
        )
    }

    /// The `deg = in-degree + 1` vector (`Â`'s row sums), emitting the
    /// degree-count scatter op the GCN pipeline starts with (Fig. 2).
    ///
    /// The op is lowered on *every* call: like PyG's `cached=False`
    /// default, frameworks recompute the normalization each layer, and the
    /// paper's kernel-share figures include that recurring scatter (the O2
    /// hoist pass recognizes the repeats as layer-invariant and keeps only
    /// the first). The host-side vector itself is cached.
    pub fn degree_vector(&mut self) -> (BufId, Arc<Vec<f32>>) {
        let n = self.graph.num_nodes();
        let (_, dst_loop) = self.edges_with_loops();
        let entry = match &self.deg {
            Some(cached) => cached.clone(),
            None => {
                let deg_buf = self.buf("deg", n as u64, BufClass::Dense);
                let mut deg = vec![1.0f32; n];
                for (r, d) in deg.iter_mut().enumerate() {
                    *d += self.adj_t.row_nnz(r) as f32;
                }
                let entry = (deg_buf, Arc::new(deg));
                self.deg = Some(entry.clone());
                entry
            }
        };
        self.plan.push(
            KernelKind::Scatter,
            OpSpec::Scatter {
                index: dst_loop.data.clone(),
                feat: 1,
                index_buf: dst_loop.buf,
                input: None,
                out: entry.0,
                out_rows: n,
                reduce: Reduce::Sum,
            },
        );
        entry
    }

    /// The unit-valued transposed adjacency `Â^T` (optionally with
    /// self-loops) as a device CSR.
    pub fn adj_t_sparse(&mut self, with_loops: bool) -> DSparse {
        let (csr, tag) = if with_loops {
            (add_diag(&self.adj_t, 1.0), "adjT+I")
        } else {
            (self.adj_t.clone(), "adjT")
        };
        self.upload_sparse(&csr, false, tag)
    }

    /// GIN's aggregation matrix `Â^T + (1 + eps)·I` with numeric values.
    pub fn gin_matrix(&mut self, eps: f32) -> DSparse {
        let csr = add_diag(&self.adj_t, 1.0 + eps);
        self.upload_sparse(&csr, true, &format!("gin[{:08x}]", eps.to_bits()))
    }

    /// GraphSAGE's mean matrix: row-normalized `Â^T` with self-loops.
    pub fn sage_mean_matrix(&mut self) -> DSparse {
        let with_loops = add_diag(&self.adj_t, 1.0);
        let sums = with_loops.row_sums();
        let mut csr = with_loops;
        // Divide every row by its sum.
        let mut scaled: Vec<f32> = Vec::with_capacity(csr.nnz());
        for (r, row_sum) in sums.iter().enumerate() {
            let s = row_sum.max(1.0);
            let (_, vals) = csr.row(r);
            scaled.extend(vals.iter().map(|v| v / s));
        }
        csr = CsrMatrix::from_parts(
            csr.rows(),
            csr.cols(),
            csr.row_ptr().to_vec(),
            csr.col_indices().to_vec(),
            scaled,
        )
        .expect("same structure");
        self.upload_sparse(&csr, true, "sageMean")
    }

    /// The diagonal `D^-1/2` of `Â` as a device CSR (GCN's normalizer).
    pub fn inv_sqrt_deg_diag(&mut self) -> DSparse {
        let n = self.graph.num_nodes();
        let mut diag = vec![0.0f32; n];
        for (r, d) in diag.iter_mut().enumerate() {
            *d = 1.0 / ((self.adj_t.row_nnz(r) as f32 + 1.0).sqrt());
        }
        let csr = CsrMatrix::from_diagonal(&diag);
        self.upload_sparse(&csr, true, "Dinv2")
    }

    /// Uploads a CSR: three buffers (row pointer, column indices, values)
    /// with a shared semantic identity derived from `tag` and the
    /// structure, so re-uploads of the same matrix are recognizable as
    /// layer-invariant by the hoist pass.
    fn upload_sparse(&mut self, csr: &CsrMatrix, has_values: bool, tag: &str) -> DSparse {
        let sig = self.track_content.then(|| {
            let mut h = Fnv::new();
            h.str(tag)
                .u64(csr.rows() as u64)
                .u64(csr.cols() as u64)
                .u64(has_values as u64)
                .u32s(csr.row_ptr())
                .u32s(csr.col_indices());
            h.finish()
        });
        let rp = self.plan.add_buf(
            format!("{tag}.rp"),
            csr.row_ptr().len() as u64,
            BufClass::Sparse,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 1)),
        );
        let ci = self.plan.add_buf(
            format!("{tag}.ci"),
            csr.nnz() as u64,
            BufClass::Sparse,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 2)),
        );
        let val = self.plan.add_buf(
            format!("{tag}.val"),
            csr.nnz() as u64,
            BufClass::Sparse,
            AddrClass::Device,
            sig.map(|s| crate::plan::mix(s, 3)),
        );
        // The content identity above is tag+structure; fingerprint the
        // actual stored values too (available in both modes), so the
        // hoist pass can verify — not just assume — that content-equal
        // value buffers hold the same bytes.
        if self.track_content {
            let mut vh = Fnv::new();
            vh.f32s(csr.values());
            self.plan.set_content_check(val, vh.finish());
        }
        DSparse {
            rows: csr.rows(),
            cols: csr.cols(),
            row_ptr: Arc::new(csr.row_ptr().to_vec()),
            col_idx: Arc::new(csr.col_indices().to_vec()),
            values: self.functional.then(|| Arc::new(csr.values().to_vec())),
            has_values,
            bufs: (rp, ci, val),
        }
    }

    // ----- core-kernel emitters ---------------------------------------

    /// `sgemm`: `out = x · w` with optional fused ReLU.
    pub fn linear(&mut self, x: &DTensor, w: &DenseMatrix, relu: bool) -> Result<DTensor> {
        let (k, n) = w.shape();
        let w_sig = (self.tag_weights && self.track_content).then(|| {
            let mut h = Fnv::new();
            h.str("W").u64(k as u64).u64(n as u64).f32s(w.as_slice());
            h.finish()
        });
        let w_buf = self.plan.add_buf(
            "W",
            (k * n) as u64,
            BufClass::Weight,
            AddrClass::Device,
            w_sig,
        );
        if w_sig.is_some() {
            // Identity already covers the payload; the explicit check
            // lets the hoist pass verify merged weights byte for byte.
            let mut vh = Fnv::new();
            vh.f32s(w.as_slice());
            self.plan.set_content_check(w_buf, vh.finish());
        }
        let out_buf = self.buf("sgemm.out", x.rows as u64 * n as u64, BufClass::Dense);
        // Mirror the kernel's split-K policy: a split-K sgemm accumulates
        // with atomics and cannot fuse the activation, so the historical
        // emission keeps `relu` on the kernel and adds a separate launch.
        let needs_separate_relu = relu && SgemmKernel::new(x.rows, k, n, 0, 0, 0).is_split_k();
        self.plan.push(
            KernelKind::Sgemm,
            OpSpec::Sgemm {
                m: x.rows,
                k,
                n,
                relu,
                a: x.buf,
                b: w_buf,
                c: out_buf,
            },
        );
        let mut out = DTensor {
            buf: out_buf,
            rows: x.rows,
            cols: n,
            data: match &x.data {
                Some(xd) => {
                    let mut c = ops::gemm(xd, w)?;
                    if relu {
                        c = c.relu();
                    }
                    Some(c)
                }
                None => None,
            },
        };
        if needs_separate_relu {
            out = self.relu_inner(out);
        }
        Ok(out)
    }

    /// `indexSelect`: gathers `x` rows along `index`, optionally folding
    /// GCN's symmetric normalization (`deg` + destination endpoints).
    pub fn index_select(
        &mut self,
        x: &DTensor,
        index: &DIndex,
        gcn_scale: Option<(&DIndex, BufId, &Arc<Vec<f32>>)>,
    ) -> Result<DTensor> {
        let e = index.data.len();
        let out_buf = self.buf("gather.out", e as u64 * x.cols as u64, BufClass::Dense);
        let scale = gcn_scale.map(|(dst, deg_buf, _)| ScaleSpec {
            dst: dst.data.clone(),
            deg: deg_buf,
        });
        self.plan.push(
            KernelKind::IndexSelect,
            OpSpec::IndexSelect {
                index: index.data.clone(),
                feat: x.cols,
                index_buf: index.buf,
                src: x.buf,
                out: out_buf,
                scale,
            },
        );
        let data = match &x.data {
            Some(xd) => {
                let mut msgs = ops::gather_rows(xd, &index.data)?;
                if let Some((dst, _, deg)) = gcn_scale {
                    for i in 0..e {
                        let s =
                            1.0 / (deg[index.data[i] as usize] * deg[dst.data[i] as usize]).sqrt();
                        for v in msgs.row_mut(i) {
                            *v *= s;
                        }
                    }
                }
                Some(msgs)
            }
            None => None,
        };
        Ok(DTensor {
            buf: out_buf,
            rows: e,
            cols: x.cols,
            data,
        })
    }

    /// `scatter`: reduces `msgs` rows into `out_rows` destinations.
    pub fn scatter(
        &mut self,
        msgs: &DTensor,
        index: &DIndex,
        out_rows: usize,
        reduce: Reduce,
    ) -> Result<DTensor> {
        let out_buf = self.buf(
            "scatter.out",
            out_rows as u64 * msgs.cols as u64,
            BufClass::Dense,
        );
        self.plan.push(
            KernelKind::Scatter,
            OpSpec::Scatter {
                index: index.data.clone(),
                feat: msgs.cols,
                index_buf: index.buf,
                input: Some(msgs.buf),
                out: out_buf,
                out_rows,
                reduce,
            },
        );
        let data = match &msgs.data {
            Some(md) => Some(ops::scatter_rows(md, &index.data, out_rows, reduce)?),
            None => None,
        };
        Ok(DTensor {
            buf: out_buf,
            rows: out_rows,
            cols: msgs.cols,
            data,
        })
    }

    /// `SpMM`: `out = a · x`.
    pub fn spmm(&mut self, a: &DSparse, x: &DTensor) -> Result<DTensor> {
        let out_buf = self.buf("spmm.out", a.rows as u64 * x.cols as u64, BufClass::Dense);
        self.plan.push(
            KernelKind::Spmm,
            OpSpec::Spmm {
                row_ptr: a.row_ptr.clone(),
                col_idx: a.col_idx.clone(),
                has_values: a.has_values,
                rp: a.bufs.0,
                ci: a.bufs.1,
                val: a.bufs.2,
                x: x.buf,
                out: out_buf,
                feat: x.cols,
            },
        );
        let data = match &x.data {
            Some(xd) => Some(ops::spmm(&a.to_csr(), xd)?),
            None => None,
        };
        Ok(DTensor {
            buf: out_buf,
            rows: a.rows,
            cols: x.cols,
            data,
        })
    }

    /// `SpGEMM`: `out = a · b`, whose sparsity pattern equals
    /// `pattern_like`'s (true for every chain gSuite executes: diagonal ×
    /// general and general × diagonal products preserve the general
    /// operand's pattern).
    pub fn spgemm(&mut self, a: &DSparse, b: &DSparse, pattern_like: &DSparse) -> Result<DSparse> {
        let out_ci = self.buf("spgemm.ci", pattern_like.nnz() as u64, BufClass::Sparse);
        let out_val = self.buf("spgemm.val", pattern_like.nnz() as u64, BufClass::Sparse);
        self.plan.push(
            KernelKind::Spgemm,
            OpSpec::Spgemm {
                a_row_ptr: a.row_ptr.clone(),
                a_col_idx: a.col_idx.clone(),
                b_row_ptr: b.row_ptr.clone(),
                out_row_ptr: pattern_like.row_ptr.clone(),
                a: a.bufs,
                b: b.bufs,
                out_ci,
                out_val,
            },
        );
        let values = if self.functional {
            let product = ops::spgemm(&a.to_csr(), &b.to_csr())?;
            debug_assert_eq!(product.col_indices(), pattern_like.col_idx.as_slice());
            Some(Arc::new(product.values().to_vec()))
        } else {
            None
        };
        // The output row pointer is the pattern's, copied host-side — a
        // content-tagged upload so re-built chains hoist cleanly.
        let rp_sig = self.track_content.then(|| {
            let mut h = Fnv::new();
            h.str("spgemm.rp").u32s(&pattern_like.row_ptr);
            h.finish()
        });
        let rp = self.plan.add_buf(
            "spgemm.rp",
            pattern_like.row_ptr.len() as u64,
            BufClass::Sparse,
            AddrClass::Device,
            rp_sig,
        );
        Ok(DSparse {
            rows: a.rows,
            cols: b.cols,
            row_ptr: pattern_like.row_ptr.clone(),
            col_idx: pattern_like.col_idx.clone(),
            values,
            has_values: true,
            bufs: (rp, out_ci, out_val),
        })
    }

    // ----- elementwise glue --------------------------------------------

    /// ReLU over a tensor (a separate elementwise op; the O2 fusion pass
    /// folds it into a producing `sgemm` where possible).
    pub fn relu(&mut self, x: &DTensor) -> DTensor {
        self.relu_inner(x.clone())
    }

    fn relu_inner(&mut self, x: DTensor) -> DTensor {
        let out_buf = self.buf("relu.out", x.elems(), BufClass::Dense);
        self.plan.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Relu,
                elems: x.elems(),
                feat: 1,
                a: x.buf,
                b: None,
                s: None,
                out: out_buf,
            },
        );
        DTensor {
            buf: out_buf,
            rows: x.rows,
            cols: x.cols,
            data: x.data.map(|d| d.relu()),
        }
    }

    /// `out = alpha·a + b` (GIN combine, SAGE merge).
    pub fn axpy(&mut self, alpha: f32, a: &DTensor, b: &DTensor) -> Result<DTensor> {
        let out_buf = self.buf("axpy.out", a.elems(), BufClass::Dense);
        self.plan.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Axpy,
                elems: a.elems(),
                feat: 1,
                a: a.buf,
                b: Some(b.buf),
                s: None,
                out: out_buf,
            },
        );
        let data = match (&a.data, &b.data) {
            (Some(ad), Some(bd)) => Some(ad.scale(alpha).add(bd)?),
            _ => None,
        };
        Ok(DTensor {
            buf: out_buf,
            rows: a.rows,
            cols: a.cols,
            data,
        })
    }

    /// `out[v][:] = x[v][:] * s[v]` (mean-divide).
    pub fn row_scale(&mut self, x: &DTensor, s: &Arc<Vec<f32>>, s_buf: BufId) -> DTensor {
        let out_buf = self.buf("rowscale.out", x.elems(), BufClass::Dense);
        self.plan.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::RowScale,
                elems: x.elems(),
                feat: x.cols,
                a: x.buf,
                b: None,
                s: Some(s_buf),
                out: out_buf,
            },
        );
        let data = x
            .data
            .as_ref()
            .map(|d| DenseMatrix::from_fn(x.rows, x.cols, |r, c| d.get(r, c) * s[r]));
        DTensor {
            buf: out_buf,
            rows: x.rows,
            cols: x.cols,
            data,
        }
    }

    /// A bare copy op (framework wrapper overhead).
    pub fn wrapper_copy(&mut self, x: &DTensor) -> DTensor {
        let out_buf = self.buf("copy.out", x.elems(), BufClass::Dense);
        self.plan.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Copy,
                elems: x.elems(),
                feat: 1,
                a: x.buf,
                b: None,
                s: None,
                out: out_buf,
            },
        );
        DTensor {
            buf: out_buf,
            rows: x.rows,
            cols: x.cols,
            data: x.data.clone(),
        }
    }

    // ----- model-specific composite layers ------------------------------

    /// One DGL-style SAGE-SpMM layer (mean aggregation via row-normalized
    /// SpMM). Exposed for the DGL baseline adapter.
    pub fn sage_spmm_layer(
        &mut self,
        x: &DTensor,
        w1: &DenseMatrix,
        w2: &DenseMatrix,
        last: bool,
    ) -> Result<DTensor> {
        let mean_mat = self.sage_mean_matrix();
        let mean = self.spmm(&mean_mat, x)?;
        let a = self.linear(x, w1, false)?;
        let b = self.linear(&mean, w2, false)?;
        let mut out = self.axpy(1.0, &a, &b)?;
        if !last {
            out = self.relu(&out);
        }
        Ok(out)
    }
}

/// Extracts `(src, dst)` endpoint arrays from a transposed adjacency
/// (rows are destinations), optionally appending self-loops.
fn endpoints_of(adj_t: &CsrMatrix, with_loops: bool) -> (Vec<u32>, Vec<u32>) {
    let nnz = adj_t.nnz() + if with_loops { adj_t.rows() } else { 0 };
    let mut src = Vec::with_capacity(nnz);
    let mut dst = Vec::with_capacity(nnz);
    for d in 0..adj_t.rows() {
        let (cols, _) = adj_t.row(d);
        for &s in cols {
            src.push(s);
            dst.push(d as u32);
        }
        if with_loops {
            src.push(d as u32);
            dst.push(d as u32);
        }
    }
    (src, dst)
}

/// `m + value·I` with unit off-diagonal entries preserved.
fn add_diag(m: &CsrMatrix, value: f32) -> CsrMatrix {
    let n = m.rows();
    let mut triplets: Vec<(usize, usize, f32)> = m.iter().filter(|&(r, c, _)| r != c).collect();
    for i in 0..n {
        triplets.push((i, i, value));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::OptLevel;
    use gsuite_graph::{EdgeList, Graph};

    fn tiny_graph() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 2, plus a duplicate edge to exercise dedup.
        let edges = EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2), (0, 2)]).unwrap();
        let features = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        Graph::new(edges, features).unwrap()
    }

    #[test]
    fn edges_are_deduplicated_and_sorted_by_dst() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let (src, dst) = b.edges();
        assert_eq!(dst.data.as_slice(), &[1u32, 2, 2]);
        assert_eq!(src.data.as_slice(), &[0u32, 0, 1]);
        assert_eq!(src.data.len(), 3, "duplicate (0,2) collapsed");
    }

    #[test]
    fn degree_vector_counts_self_loop() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let (_, deg) = b.degree_vector();
        // in-degrees: 0, 1, 2 (after dedup); +1 self loop each.
        assert_eq!(deg.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.launch_count(), 1, "degree scatter lowered");
    }

    #[test]
    fn linear_matches_gemm() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features();
        let w = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let out = b.linear(&x, &w, false).unwrap();
        let expected = ops::gemm(g.features(), &w).unwrap();
        assert!(out.data.unwrap().approx_eq(&expected, 1e-5));
        assert_eq!(b.launch_count(), 1);
    }

    #[test]
    fn profile_mode_lowers_ops_without_data() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, false);
        let x = b.input_features();
        assert!(x.data.is_none());
        let w = DenseMatrix::zeros(4, 2);
        let out = b.linear(&x, &w, true).unwrap();
        assert!(out.data.is_none());
        assert_eq!(out.cols, 2);
        assert_eq!(b.launch_count(), 1);
    }

    #[test]
    fn scatter_gather_roundtrip_matches_spmm() {
        // gather(X, src) scatter-sum by dst == A^T X — the MP/SpMM bridge.
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features();
        let (src, dst) = b.edges();
        let msgs = b.index_select(&x, &src, None).unwrap();
        let agg = b.scatter(&msgs, &dst, 3, Reduce::Sum).unwrap();
        let at = g.adjacency_csr_transposed();
        let expected = ops::spmm(&at, g.features()).unwrap();
        assert!(agg.data.unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn spgemm_diag_chain_preserves_pattern() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let at = b.adj_t_sparse(true);
        let d = b.inv_sqrt_deg_diag();
        let t1 = b.spgemm(&d, &at, &at).unwrap();
        let t2 = b.spgemm(&t1, &d, &at).unwrap();
        assert_eq!(t2.nnz(), at.nnz());
        // Values match gcn_norm on the transposed adjacency.
        let expected = gsuite_graph::gcn_norm_csr(&g.adjacency_csr_transposed());
        let got = t2.to_csr();
        assert!(got.to_dense().approx_eq(&expected.to_dense(), 1e-5));
    }

    #[test]
    fn sage_mean_matrix_rows_sum_to_one() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let m = b.sage_mean_matrix();
        for s in m.to_csr().row_sums() {
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn axpy_and_row_scale_functional() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features();
        let doubled = b.axpy(1.0, &x, &x).unwrap();
        let expected = g.features().scale(2.0);
        assert!(doubled.data.as_ref().unwrap().approx_eq(&expected, 1e-6));

        let halves = Arc::new(vec![0.5f32; 3]);
        let halved = b.row_scale(&doubled, &halves, x.buf);
        assert!(halved.data.unwrap().approx_eq(g.features(), 1e-6));
    }

    #[test]
    fn o0_schedule_reproduces_the_historical_address_layout() {
        // The historical direct-emission builder bump-allocated in method
        // call order from 0x7000_0000 with 256-byte padding: X first,
        // then the sgemm's weight and output. The plan's O0 schedule must
        // reproduce exactly that layout.
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features(); // 3x4 f32 = 48 B -> 256-padded
        let w = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let out = b.linear(&x, &w, false).unwrap();
        b.set_output(out);
        let (plan, _) = b.finish();
        let sched = plan.schedule(OptLevel::O0);
        assert_eq!(sched.addrs[x.buf.index()], Some(0x7000_0000));
        assert_eq!(sched.addrs[x.buf.index() + 1], Some(0x7000_0100), "W");
        assert_eq!(sched.addrs[x.buf.index() + 2], Some(0x7000_0200), "out");
        assert_eq!(sched.peak_device_bytes, 768);
    }

    #[test]
    fn repeated_uploads_share_content_identity() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, false);
        let a1 = b.adj_t_sparse(true);
        let a2 = b.adj_t_sparse(true);
        let (plan, _) = b.finish();
        let bufs = plan.bufs();
        for (x, y) in [
            (a1.bufs.0, a2.bufs.0),
            (a1.bufs.1, a2.bufs.1),
            (a1.bufs.2, a2.bufs.2),
        ] {
            assert_ne!(x, y, "distinct logical buffers");
            assert_eq!(
                bufs[x.index()].content,
                bufs[y.index()].content,
                "same semantic content"
            );
        }
        let gin = Builder::new(&g, false).gin_matrix(0.0);
        let _ = gin;
    }
}
