//! The pipeline builder: couples functional math with launch emission.
//!
//! Every method emits the kernel launch(es) a CUDA implementation of the
//! same step would make and — when functional math is enabled — computes
//! the true result with [`gsuite_tensor::ops`]. Device buffers are fake
//! addresses from an [`AddressSpace`]; index and sparse-structure arrays
//! are shared `Arc`s so launches stay cheap to clone.

use std::sync::Arc;

use gsuite_graph::Graph;
use gsuite_tensor::ops::{self, Reduce};
use gsuite_tensor::{CsrMatrix, DenseMatrix};

use crate::device::AddressSpace;
use crate::kernels::{
    ElementwiseKernel, GcnEdgeScale, IndexSelectKernel, KernelKind, Launch, ScatterKernel,
    SgemmKernel, SpgemmKernel, SpmmKernel,
};
use crate::Result;

/// A dense device tensor: an address plus shape, with the host-side value
/// present only in functional mode.
#[derive(Debug, Clone)]
pub struct DTensor {
    /// Device base address.
    pub base: u64,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Host value (functional mode only).
    pub data: Option<DenseMatrix>,
}

impl DTensor {
    /// Total elements.
    pub fn elems(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

/// An index (endpoint) array on the device.
#[derive(Debug, Clone)]
pub struct DIndex {
    /// Device base address.
    pub base: u64,
    /// The endpoint values.
    pub data: Arc<Vec<u32>>,
}

/// A sparse CSR device matrix: structure always present (workloads need
/// it), numeric values only in functional mode.
#[derive(Debug, Clone)]
pub struct DSparse {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// CSR row pointer.
    pub row_ptr: Arc<Vec<u32>>,
    /// CSR column indices.
    pub col_idx: Arc<Vec<u32>>,
    /// Stored values (functional mode; `None` means implicit ones).
    pub values: Option<Arc<Vec<f32>>>,
    /// Whether device kernels load the value array.
    pub has_values: bool,
    /// Base addresses: row pointer, column indices, values.
    pub bases: (u64, u64, u64),
}

impl DSparse {
    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Reconstructs a host [`CsrMatrix`] (functional mode helper).
    fn to_csr(&self) -> CsrMatrix {
        let values = match &self.values {
            Some(v) => v.as_ref().clone(),
            None => vec![1.0; self.nnz()],
        };
        CsrMatrix::from_parts(
            self.rows,
            self.cols,
            self.row_ptr.as_ref().clone(),
            self.col_idx.as_ref().clone(),
            values,
        )
        .expect("DSparse maintains CSR invariants")
    }
}

/// Pipeline builder over one graph.
pub struct Builder<'g> {
    graph: &'g Graph,
    functional: bool,
    space: AddressSpace,
    launches: Vec<Launch>,
    output: Option<DTensor>,
    /// Transposed, deduplicated adjacency (rows = destinations) — the
    /// canonical aggregation structure both computational models share.
    adj_t: CsrMatrix,
    /// Cached edge endpoint arrays (without and with self-loops).
    edges_raw: Option<(DIndex, DIndex)>,
    edges_loop: Option<(DIndex, DIndex)>,
    /// Cached degree vector (`in-degree + 1`) and its device address.
    deg: Option<(u64, Arc<Vec<f32>>)>,
}

impl<'g> Builder<'g> {
    /// A builder over `graph`; `functional` enables host-side math.
    pub fn new(graph: &'g Graph, functional: bool) -> Self {
        Builder {
            graph,
            functional,
            space: AddressSpace::new(),
            launches: Vec::new(),
            output: None,
            adj_t: graph.adjacency_csr_transposed(),
            edges_raw: None,
            edges_loop: None,
            deg: None,
        }
    }

    /// Whether functional math is enabled.
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// The graph under construction.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Number of launches emitted so far.
    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// The input feature tensor `X` (allocated on first call).
    pub fn input_features(&mut self) -> DTensor {
        let g = self.graph;
        let base = self
            .space
            .alloc_f32(g.num_nodes() as u64 * g.feature_dim() as u64);
        DTensor {
            base,
            rows: g.num_nodes(),
            cols: g.feature_dim(),
            data: self.functional.then(|| g.features().clone()),
        }
    }

    /// Marks `out` as the pipeline's final output.
    pub fn set_output(&mut self, out: DTensor) {
        self.output = Some(out);
    }

    /// Consumes the builder, returning launches and the output matrix
    /// (zeros of the right shape when functional math was off).
    pub fn finish(self) -> (Vec<Launch>, DenseMatrix) {
        let output = match self.output {
            Some(DTensor { data: Some(m), .. }) => m,
            Some(DTensor { rows, cols, .. }) => DenseMatrix::zeros(rows, cols),
            None => DenseMatrix::zeros(0, 0),
        };
        (self.launches, output)
    }

    // ----- graph-derived operands -------------------------------------

    /// Deduplicated `(src, dst)` endpoint arrays, sorted by destination —
    /// the canonical MP edge index.
    pub fn edges(&mut self) -> (DIndex, DIndex) {
        if self.edges_raw.is_none() {
            let (src, dst) = endpoints_of(&self.adj_t, false);
            let src_base = self.space.alloc_f32(src.len() as u64);
            let dst_base = self.space.alloc_f32(dst.len() as u64);
            self.edges_raw = Some((
                DIndex {
                    base: src_base,
                    data: Arc::new(src),
                },
                DIndex {
                    base: dst_base,
                    data: Arc::new(dst),
                },
            ));
        }
        self.edges_raw.clone().expect("just cached")
    }

    /// Endpoint arrays with self-loops appended (`Â`'s edge set).
    pub fn edges_with_loops(&mut self) -> (DIndex, DIndex) {
        if self.edges_loop.is_none() {
            let (src, dst) = endpoints_of(&self.adj_t, true);
            let src_base = self.space.alloc_f32(src.len() as u64);
            let dst_base = self.space.alloc_f32(dst.len() as u64);
            self.edges_loop = Some((
                DIndex {
                    base: src_base,
                    data: Arc::new(src),
                },
                DIndex {
                    base: dst_base,
                    data: Arc::new(dst),
                },
            ));
        }
        self.edges_loop.clone().expect("just cached")
    }

    /// The `deg = in-degree + 1` vector (`Â`'s row sums), emitting the
    /// degree-count scatter launch the GCN pipeline starts with (Fig. 2).
    ///
    /// The launch is emitted on *every* call: like PyG's `cached=False`
    /// default, frameworks recompute the normalization each layer, and the
    /// paper's kernel-share figures include that recurring scatter. The
    /// host-side vector itself is cached.
    pub fn degree_vector(&mut self) -> (u64, Arc<Vec<f32>>) {
        let n = self.graph.num_nodes();
        let (_, dst_loop) = self.edges_with_loops();
        let entry = match &self.deg {
            Some(cached) => cached.clone(),
            None => {
                let deg_base = self.space.alloc_f32(n as u64);
                let mut deg = vec![1.0f32; n];
                for (r, d) in deg.iter_mut().enumerate() {
                    *d += self.adj_t.row_nnz(r) as f32;
                }
                let entry = (deg_base, Arc::new(deg));
                self.deg = Some(entry.clone());
                entry
            }
        };
        self.launches.push(Launch::new(
            KernelKind::Scatter,
            ScatterKernel::degrees(dst_loop.data.clone(), dst_loop.base, entry.0, n),
        ));
        entry
    }

    /// The unit-valued transposed adjacency `Â^T` (optionally with
    /// self-loops) as a device CSR.
    pub fn adj_t_sparse(&mut self, with_loops: bool) -> DSparse {
        let csr = if with_loops {
            add_diag(&self.adj_t, 1.0)
        } else {
            self.adj_t.clone()
        };
        self.upload_sparse(&csr, false)
    }

    /// GIN's aggregation matrix `Â^T + (1 + eps)·I` with numeric values.
    pub fn gin_matrix(&mut self, eps: f32) -> DSparse {
        let csr = add_diag(&self.adj_t, 1.0 + eps);
        self.upload_sparse(&csr, true)
    }

    /// GraphSAGE's mean matrix: row-normalized `Â^T` with self-loops.
    pub fn sage_mean_matrix(&mut self) -> DSparse {
        let with_loops = add_diag(&self.adj_t, 1.0);
        let sums = with_loops.row_sums();
        let mut csr = with_loops;
        // Divide every row by its sum.
        let mut scaled: Vec<f32> = Vec::with_capacity(csr.nnz());
        for (r, row_sum) in sums.iter().enumerate() {
            let s = row_sum.max(1.0);
            let (_, vals) = csr.row(r);
            scaled.extend(vals.iter().map(|v| v / s));
        }
        csr = CsrMatrix::from_parts(
            csr.rows(),
            csr.cols(),
            csr.row_ptr().to_vec(),
            csr.col_indices().to_vec(),
            scaled,
        )
        .expect("same structure");
        self.upload_sparse(&csr, true)
    }

    /// The diagonal `D^-1/2` of `Â` as a device CSR (GCN's normalizer).
    pub fn inv_sqrt_deg_diag(&mut self) -> DSparse {
        let n = self.graph.num_nodes();
        let mut diag = vec![0.0f32; n];
        for (r, d) in diag.iter_mut().enumerate() {
            *d = 1.0 / ((self.adj_t.row_nnz(r) as f32 + 1.0).sqrt());
        }
        let csr = CsrMatrix::from_diagonal(&diag);
        self.upload_sparse(&csr, true)
    }

    fn upload_sparse(&mut self, csr: &CsrMatrix, has_values: bool) -> DSparse {
        let rp_base = self.space.alloc_f32(csr.row_ptr().len() as u64);
        let ci_base = self.space.alloc_f32(csr.nnz() as u64);
        let val_base = self.space.alloc_f32(csr.nnz() as u64);
        DSparse {
            rows: csr.rows(),
            cols: csr.cols(),
            row_ptr: Arc::new(csr.row_ptr().to_vec()),
            col_idx: Arc::new(csr.col_indices().to_vec()),
            values: self.functional.then(|| Arc::new(csr.values().to_vec())),
            has_values,
            bases: (rp_base, ci_base, val_base),
        }
    }

    // ----- core-kernel emitters ---------------------------------------

    /// `sgemm`: `out = x · w` with optional fused ReLU.
    pub fn linear(&mut self, x: &DTensor, w: &DenseMatrix, relu: bool) -> Result<DTensor> {
        let (k, n) = w.shape();
        let w_base = self.space.alloc_f32((k * n) as u64);
        let out_base = self.space.alloc_f32(x.rows as u64 * n as u64);
        let kernel = SgemmKernel::new(x.rows, k, n, x.base, w_base, out_base).with_relu(relu);
        let needs_separate_relu = relu && kernel.is_split_k();
        self.launches.push(Launch::new(KernelKind::Sgemm, kernel));
        let mut out = DTensor {
            base: out_base,
            rows: x.rows,
            cols: n,
            data: match &x.data {
                Some(xd) => {
                    let mut c = ops::gemm(xd, w)?;
                    if relu {
                        c = c.relu();
                    }
                    Some(c)
                }
                None => None,
            },
        };
        if needs_separate_relu {
            out = self.relu_inner(out);
        }
        Ok(out)
    }

    /// `indexSelect`: gathers `x` rows along `index`, optionally folding
    /// GCN's symmetric normalization (`deg` + destination endpoints).
    pub fn index_select(
        &mut self,
        x: &DTensor,
        index: &DIndex,
        gcn_scale: Option<(&DIndex, u64, &Arc<Vec<f32>>)>,
    ) -> Result<DTensor> {
        let e = index.data.len();
        let out_base = self.space.alloc_f32(e as u64 * x.cols as u64);
        let scale = gcn_scale.map(|(dst, deg_base, _)| GcnEdgeScale {
            dst: dst.data.clone(),
            deg_base,
        });
        self.launches.push(Launch::new(
            KernelKind::IndexSelect,
            IndexSelectKernel {
                index: index.data.clone(),
                index_base: index.base,
                src_base: x.base,
                feat: x.cols,
                out_base,
                scale,
            },
        ));
        let data = match &x.data {
            Some(xd) => {
                let mut msgs = ops::gather_rows(xd, &index.data)?;
                if let Some((dst, _, deg)) = gcn_scale {
                    for i in 0..e {
                        let s =
                            1.0 / (deg[index.data[i] as usize] * deg[dst.data[i] as usize]).sqrt();
                        for v in msgs.row_mut(i) {
                            *v *= s;
                        }
                    }
                }
                Some(msgs)
            }
            None => None,
        };
        Ok(DTensor {
            base: out_base,
            rows: e,
            cols: x.cols,
            data,
        })
    }

    /// `scatter`: reduces `msgs` rows into `out_rows` destinations.
    pub fn scatter(
        &mut self,
        msgs: &DTensor,
        index: &DIndex,
        out_rows: usize,
        reduce: Reduce,
    ) -> Result<DTensor> {
        let out_base = self.space.alloc_f32(out_rows as u64 * msgs.cols as u64);
        self.launches.push(Launch::new(
            KernelKind::Scatter,
            ScatterKernel {
                index: index.data.clone(),
                index_base: index.base,
                in_base: Some(msgs.base),
                feat: msgs.cols,
                out_base,
                out_rows,
                reduce,
            },
        ));
        let data = match &msgs.data {
            Some(md) => Some(ops::scatter_rows(md, &index.data, out_rows, reduce)?),
            None => None,
        };
        Ok(DTensor {
            base: out_base,
            rows: out_rows,
            cols: msgs.cols,
            data,
        })
    }

    /// `SpMM`: `out = a · x`.
    pub fn spmm(&mut self, a: &DSparse, x: &DTensor) -> Result<DTensor> {
        let out_base = self.space.alloc_f32(a.rows as u64 * x.cols as u64);
        self.launches.push(Launch::new(
            KernelKind::Spmm,
            SpmmKernel::new(
                a.row_ptr.clone(),
                a.col_idx.clone(),
                a.has_values,
                a.bases.0,
                a.bases.1,
                a.bases.2,
                x.base,
                out_base,
                x.cols,
            ),
        ));
        let data = match &x.data {
            Some(xd) => Some(ops::spmm(&a.to_csr(), xd)?),
            None => None,
        };
        Ok(DTensor {
            base: out_base,
            rows: a.rows,
            cols: x.cols,
            data,
        })
    }

    /// `SpGEMM`: `out = a · b`, whose sparsity pattern equals
    /// `pattern_like`'s (true for every chain gSuite executes: diagonal ×
    /// general and general × diagonal products preserve the general
    /// operand's pattern).
    pub fn spgemm(&mut self, a: &DSparse, b: &DSparse, pattern_like: &DSparse) -> Result<DSparse> {
        let out_ci = self.space.alloc_f32(pattern_like.nnz() as u64);
        let out_val = self.space.alloc_f32(pattern_like.nnz() as u64);
        self.launches.push(Launch::new(
            KernelKind::Spgemm,
            SpgemmKernel::new(
                a.row_ptr.clone(),
                a.col_idx.clone(),
                b.row_ptr.clone(),
                pattern_like.row_ptr.clone(),
                a.bases,
                b.bases,
                (out_ci, out_val),
            ),
        ));
        let values = if self.functional {
            let product = ops::spgemm(&a.to_csr(), &b.to_csr())?;
            debug_assert_eq!(product.col_indices(), pattern_like.col_idx.as_slice());
            Some(Arc::new(product.values().to_vec()))
        } else {
            None
        };
        let rp_base = self.space.alloc_f32(pattern_like.row_ptr.len() as u64);
        Ok(DSparse {
            rows: a.rows,
            cols: b.cols,
            row_ptr: pattern_like.row_ptr.clone(),
            col_idx: pattern_like.col_idx.clone(),
            values,
            has_values: true,
            bases: (rp_base, out_ci, out_val),
        })
    }

    // ----- elementwise glue --------------------------------------------

    /// ReLU over a tensor (a separate elementwise launch).
    pub fn relu(&mut self, x: &DTensor) -> DTensor {
        self.relu_inner(x.clone())
    }

    fn relu_inner(&mut self, x: DTensor) -> DTensor {
        let out_base = self.space.alloc_f32(x.elems());
        self.launches.push(Launch::new(
            KernelKind::Elementwise,
            ElementwiseKernel::relu(x.base, out_base, x.elems()),
        ));
        DTensor {
            base: out_base,
            rows: x.rows,
            cols: x.cols,
            data: x.data.map(|d| d.relu()),
        }
    }

    /// `out = alpha·a + b` (GIN combine, SAGE merge).
    pub fn axpy(&mut self, alpha: f32, a: &DTensor, b: &DTensor) -> Result<DTensor> {
        let out_base = self.space.alloc_f32(a.elems());
        self.launches.push(Launch::new(
            KernelKind::Elementwise,
            ElementwiseKernel::axpy(a.base, b.base, out_base, a.elems()),
        ));
        let data = match (&a.data, &b.data) {
            (Some(ad), Some(bd)) => Some(ad.scale(alpha).add(bd)?),
            _ => None,
        };
        Ok(DTensor {
            base: out_base,
            rows: a.rows,
            cols: a.cols,
            data,
        })
    }

    /// `out[v][:] = x[v][:] * s[v]` (mean-divide).
    pub fn row_scale(&mut self, x: &DTensor, s: &Arc<Vec<f32>>, s_base: u64) -> DTensor {
        let out_base = self.space.alloc_f32(x.elems());
        self.launches.push(Launch::new(
            KernelKind::Elementwise,
            ElementwiseKernel::row_scale(x.base, s_base, out_base, x.elems(), x.cols),
        ));
        let data = x
            .data
            .as_ref()
            .map(|d| DenseMatrix::from_fn(x.rows, x.cols, |r, c| d.get(r, c) * s[r]));
        DTensor {
            base: out_base,
            rows: x.rows,
            cols: x.cols,
            data,
        }
    }

    /// A bare copy launch (framework wrapper overhead; used by the
    /// PyG-/DGL-like adapters).
    pub fn wrapper_copy(&mut self, x: &DTensor) -> DTensor {
        let out_base = self.space.alloc_f32(x.elems());
        self.launches.push(Launch::new(
            KernelKind::Elementwise,
            ElementwiseKernel::copy(x.base, out_base, x.elems()),
        ));
        DTensor {
            base: out_base,
            rows: x.rows,
            cols: x.cols,
            data: x.data.clone(),
        }
    }

    // ----- model-specific composite layers ------------------------------

    /// One DGL-style SAGE-SpMM layer (mean aggregation via row-normalized
    /// SpMM). Exposed for the DGL baseline adapter.
    pub fn sage_spmm_layer(
        &mut self,
        x: &DTensor,
        w1: &DenseMatrix,
        w2: &DenseMatrix,
        last: bool,
    ) -> Result<DTensor> {
        let mean_mat = self.sage_mean_matrix();
        let mean = self.spmm(&mean_mat, x)?;
        let a = self.linear(x, w1, false)?;
        let b = self.linear(&mean, w2, false)?;
        let mut out = self.axpy(1.0, &a, &b)?;
        if !last {
            out = self.relu(&out);
        }
        Ok(out)
    }
}

/// Extracts `(src, dst)` endpoint arrays from a transposed adjacency
/// (rows are destinations), optionally appending self-loops.
fn endpoints_of(adj_t: &CsrMatrix, with_loops: bool) -> (Vec<u32>, Vec<u32>) {
    let nnz = adj_t.nnz() + if with_loops { adj_t.rows() } else { 0 };
    let mut src = Vec::with_capacity(nnz);
    let mut dst = Vec::with_capacity(nnz);
    for d in 0..adj_t.rows() {
        let (cols, _) = adj_t.row(d);
        for &s in cols {
            src.push(s);
            dst.push(d as u32);
        }
        if with_loops {
            src.push(d as u32);
            dst.push(d as u32);
        }
    }
    (src, dst)
}

/// `m + value·I` with unit off-diagonal entries preserved.
fn add_diag(m: &CsrMatrix, value: f32) -> CsrMatrix {
    let n = m.rows();
    let mut triplets: Vec<(usize, usize, f32)> = m.iter().filter(|&(r, c, _)| r != c).collect();
    for i in 0..n {
        triplets.push((i, i, value));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_graph::{EdgeList, Graph};

    fn tiny_graph() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 2, plus a duplicate edge to exercise dedup.
        let edges = EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2), (0, 2)]).unwrap();
        let features = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        Graph::new(edges, features).unwrap()
    }

    #[test]
    fn edges_are_deduplicated_and_sorted_by_dst() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let (src, dst) = b.edges();
        assert_eq!(dst.data.as_slice(), &[1u32, 2, 2]);
        assert_eq!(src.data.as_slice(), &[0u32, 0, 1]);
        assert_eq!(src.data.len(), 3, "duplicate (0,2) collapsed");
    }

    #[test]
    fn degree_vector_counts_self_loop() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let (_, deg) = b.degree_vector();
        // in-degrees: 0, 1, 2 (after dedup); +1 self loop each.
        assert_eq!(deg.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.launch_count(), 1, "degree scatter emitted");
    }

    #[test]
    fn linear_matches_gemm() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features();
        let w = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let out = b.linear(&x, &w, false).unwrap();
        let expected = ops::gemm(g.features(), &w).unwrap();
        assert!(out.data.unwrap().approx_eq(&expected, 1e-5));
        assert_eq!(b.launch_count(), 1);
    }

    #[test]
    fn profile_mode_emits_launches_without_data() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, false);
        let x = b.input_features();
        assert!(x.data.is_none());
        let w = DenseMatrix::zeros(4, 2);
        let out = b.linear(&x, &w, true).unwrap();
        assert!(out.data.is_none());
        assert_eq!(out.cols, 2);
        assert_eq!(b.launch_count(), 1);
    }

    #[test]
    fn scatter_gather_roundtrip_matches_spmm() {
        // gather(X, src) scatter-sum by dst == A^T X — the MP/SpMM bridge.
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features();
        let (src, dst) = b.edges();
        let msgs = b.index_select(&x, &src, None).unwrap();
        let agg = b.scatter(&msgs, &dst, 3, Reduce::Sum).unwrap();
        let at = g.adjacency_csr_transposed();
        let expected = ops::spmm(&at, g.features()).unwrap();
        assert!(agg.data.unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn spgemm_diag_chain_preserves_pattern() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let at = b.adj_t_sparse(true);
        let d = b.inv_sqrt_deg_diag();
        let t1 = b.spgemm(&d, &at, &at).unwrap();
        let t2 = b.spgemm(&t1, &d, &at).unwrap();
        assert_eq!(t2.nnz(), at.nnz());
        // Values match gcn_norm on the transposed adjacency.
        let expected = gsuite_graph::gcn_norm_csr(&g.adjacency_csr_transposed());
        let got = t2.to_csr();
        assert!(got.to_dense().approx_eq(&expected.to_dense(), 1e-5));
    }

    #[test]
    fn sage_mean_matrix_rows_sum_to_one() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let m = b.sage_mean_matrix();
        for s in m.to_csr().row_sums() {
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn axpy_and_row_scale_functional() {
        let g = tiny_graph();
        let mut b = Builder::new(&g, true);
        let x = b.input_features();
        let doubled = b.axpy(1.0, &x, &x).unwrap();
        let expected = g.features().scale(2.0);
        assert!(doubled.data.as_ref().unwrap().approx_eq(&expected, 1e-6));

        let halves = Arc::new(vec![0.5f32; 3]);
        let halved = b.row_scale(&doubled, &halves, 0x9999);
        assert!(halved.data.unwrap().approx_eq(g.features(), 1e-6));
    }
}
