//! Simple Graph Convolution (Wu et al.) — an *extension* model: K hops of
//! GCN-normalized propagation followed by a single linear layer,
//! `X' = (D^-1/2 Â D^-1/2)^K · X · W`.
//!
//! SGC showcases the configuration surface: `layers` selects the number of
//! propagation hops K (the model always has exactly one weight matrix).

use gsuite_tensor::ops::Reduce;

use super::builder::Builder;
use super::ModelWeights;
use crate::Result;

/// MP formulation: K rounds of (degree scatter → normalized indexSelect →
/// scatter-sum), then one `sgemm`.
pub fn build_mp(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let n = b.graph().num_nodes();
    let mut x = b.input_features();
    let hops = weights.layers.len();
    for _ in 0..hops {
        let (src, dst) = b.edges_with_loops();
        let (deg_base, deg) = b.degree_vector();
        let msgs = b.index_select(&x, &src, Some((&dst, deg_base, &deg)))?;
        x = b.scatter(&msgs, &dst, n, Reduce::Sum)?;
    }
    let out = b.linear(&x, &weights.layers[0].w1, false)?;
    b.set_output(out);
    Ok(())
}

/// SpMM formulation: the normalization chain once, then K `SpMM` hops and
/// one `sgemm`.
pub fn build_spmm(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let mut x = b.input_features();
    let hops = weights.layers.len();
    let at = b.adj_t_sparse(true);
    let d = b.inv_sqrt_deg_diag();
    let t1 = b.spgemm(&d, &at, &at)?;
    let norm = b.spgemm(&t1, &d, &at)?;
    for _ in 0..hops {
        x = b.spmm(&norm, &x)?;
    }
    let out = b.linear(&x, &weights.layers[0].w1, false)?;
    b.set_output(out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GnnModel;
    use crate::kernels::KernelKind;
    use gsuite_graph::GraphGenerator;

    fn weights(in_dim: usize, hidden: usize, hops: usize) -> ModelWeights {
        // SGC has one weight; `layers` entries exist but only the first is
        // used (input width throughout, since propagation precedes it).
        let mut w = ModelWeights::init(GnnModel::Gcn, in_dim, hidden, 1, 17);
        while w.layers.len() < hops {
            w.layers.push(w.layers[0].clone());
        }
        w
    }

    #[test]
    fn single_sgemm_regardless_of_hops() {
        let g = GraphGenerator::new(18, 50).seed(1).build_graph(6).unwrap();
        for hops in [1usize, 3] {
            let mut b = Builder::new(&g, true);
            build_mp(&mut b, &weights(6, 4, hops)).unwrap();
            let (plan, _) = b.finish();
            let kinds = plan.kinds();
            let sgemms = kinds.iter().filter(|&&k| k == KernelKind::Sgemm).count();
            assert_eq!(sgemms, 1, "SGC has exactly one linear layer");
            let scatters = kinds.iter().filter(|&&k| k == KernelKind::Scatter).count();
            assert_eq!(scatters, hops * 2, "degree + aggregation per hop");
        }
    }

    #[test]
    fn mp_equals_spmm() {
        let g = GraphGenerator::new(24, 80).seed(8).build_graph(5).unwrap();
        let w = weights(5, 4, 2);
        let mut mp = Builder::new(&g, true);
        build_mp(&mut mp, &w).unwrap();
        let (_, mp_out) = mp.finish();
        let mut sp = Builder::new(&g, true);
        build_spmm(&mut sp, &w).unwrap();
        let (_, sp_out) = sp.finish();
        assert!(
            mp_out.approx_eq(&sp_out, 1e-3),
            "max diff {}",
            mp_out.max_abs_diff(&sp_out).unwrap()
        );
    }

    #[test]
    fn spmm_normalizes_once() {
        let g = GraphGenerator::new(18, 50).seed(1).build_graph(6).unwrap();
        let mut b = Builder::new(&g, true);
        build_spmm(&mut b, &weights(6, 4, 3)).unwrap();
        let (plan, _) = b.finish();
        let kinds = plan.kinds();
        let spgemms = kinds.iter().filter(|&&k| k == KernelKind::Spgemm).count();
        assert_eq!(spgemms, 2, "normalization chain built once, reused per hop");
        let spmms = kinds.iter().filter(|&&k| k == KernelKind::Spmm).count();
        assert_eq!(spmms, 3);
    }
}
