//! Graph Isomorphism Network (Xu et al.) — paper §II-C2, Eqs. 3–4.

use gsuite_tensor::ops::Reduce;

use super::builder::Builder;
use super::ModelWeights;
use crate::Result;

/// GIN's injectivity constant ε (GIN-0 convention; the paper treats it as a
/// fixed constant in Eqs. 3–4).
pub const GIN_EPS: f32 = 0.0;

/// The message-passing GIN pipeline (Eq. 3), per layer:
/// `indexSelect` (raw features!) → `scatter`-sum → elementwise combine
/// `(1+ε)·h + Σ` → 2-layer MLP (`sgemm` → ReLU → `sgemm`) → ReLU between
/// layers.
///
/// Unlike GCN, aggregation runs at *input* width — on Cora that is 1433
/// floats per node, which is why GIN's gather/scatter kernels dominate and
/// keep the machine busy (paper Figs. 4 and 7).
pub fn build_mp(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let n = b.graph().num_nodes();
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let (src, dst) = b.edges();
        let msgs = b.index_select(&x, &src, None)?;
        let agg = b.scatter(&msgs, &dst, n, Reduce::Sum)?;
        let comb = b.axpy(1.0 + GIN_EPS, &x, &agg)?;
        let h1 = b.linear(&comb, &lw.w1, false)?;
        let h1r = b.relu(&h1);
        let w2 = lw.w2.as_ref().expect("GIN has a 2-layer MLP");
        let mut out = b.linear(&h1r, w2, false)?;
        if l + 1 < layers {
            out = b.relu(&out);
        }
        x = out;
    }
    b.set_output(x);
    Ok(())
}

/// The SpMM GIN pipeline (Eq. 4), per layer:
/// `SpMM` with `M = Â^T + (1+ε)·I` → 2-layer MLP → ReLU between layers.
pub fn build_spmm(b: &mut Builder<'_>, weights: &ModelWeights) -> Result<()> {
    let mut x = b.input_features();
    let layers = weights.layers.len();
    for (l, lw) in weights.layers.iter().enumerate() {
        let m = b.gin_matrix(GIN_EPS);
        let agg = b.spmm(&m, &x)?;
        let h1 = b.linear(&agg, &lw.w1, false)?;
        let h1r = b.relu(&h1);
        let w2 = lw.w2.as_ref().expect("GIN has a 2-layer MLP");
        let mut out = b.linear(&h1r, w2, false)?;
        if l + 1 < layers {
            out = b.relu(&out);
        }
        x = out;
    }
    b.set_output(x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GnnModel;
    use crate::kernels::KernelKind;
    use gsuite_graph::GraphGenerator;

    fn weights(in_dim: usize, hidden: usize, layers: usize) -> ModelWeights {
        ModelWeights::init(GnnModel::Gin, in_dim, hidden, layers, 11)
    }

    #[test]
    fn mp_sequence() {
        let g = GraphGenerator::new(16, 40).seed(4).build_graph(6).unwrap();
        let mut b = Builder::new(&g, true);
        build_mp(&mut b, &weights(6, 4, 1)).unwrap();
        let (plan, out) = b.finish();
        let kinds = plan.kinds();
        assert_eq!(
            kinds,
            vec![
                KernelKind::IndexSelect,
                KernelKind::Scatter,
                KernelKind::Elementwise, // (1+eps) combine
                KernelKind::Sgemm,
                KernelKind::Elementwise, // MLP ReLU
                KernelKind::Sgemm,
            ]
        );
        assert_eq!(out.shape(), (16, 4));
    }

    #[test]
    fn spmm_sequence_is_shorter() {
        let g = GraphGenerator::new(16, 40).seed(4).build_graph(6).unwrap();
        let mut b = Builder::new(&g, true);
        build_spmm(&mut b, &weights(6, 4, 1)).unwrap();
        let (plan, _) = b.finish();
        let kinds = plan.kinds();
        assert_eq!(
            kinds,
            vec![
                KernelKind::Spmm,
                KernelKind::Sgemm,
                KernelKind::Elementwise,
                KernelKind::Sgemm,
            ]
        );
    }

    #[test]
    fn mp_equals_spmm() {
        let g = GraphGenerator::new(25, 90).seed(9).build_graph(5).unwrap();
        let w = weights(5, 6, 2);
        let mut mp = Builder::new(&g, true);
        build_mp(&mut mp, &w).unwrap();
        let (_, mp_out) = mp.finish();
        let mut sp = Builder::new(&g, true);
        build_spmm(&mut sp, &w).unwrap();
        let (_, sp_out) = sp.finish();
        assert!(
            mp_out.approx_eq(&sp_out, 1e-3),
            "max diff {}",
            mp_out.max_abs_diff(&sp_out).unwrap()
        );
    }

    #[test]
    fn aggregation_runs_at_input_width() {
        // GIN gathers raw features: the indexSelect kernel's element count
        // must be E * f (not E * hidden).
        let g = GraphGenerator::new(16, 40).seed(4).build_graph(12).unwrap();
        let dedup_edges = g.adjacency_csr_transposed().nnz() as u64;
        let mut b = Builder::new(&g, false);
        build_mp(&mut b, &weights(12, 2, 1)).unwrap();
        let (plan, _) = b.finish();
        let launches = plan.schedule(crate::plan::OptLevel::O0).launches;
        let is = &launches[0];
        assert_eq!(is.kind, KernelKind::IndexSelect);
        // grid covers E_dedup * 12 elements with 128-thread CTAs handling
        // 4 elements per thread
        let expect_elems = dedup_edges * 12;
        assert_eq!(
            is.workload.grid().ctas,
            expect_elems.div_ceil(4).div_ceil(128)
        );
    }
}
