//! The paper's User Interface / Abstraction Module (Fig. 1): a GNN
//! pipeline is fully described by a handful of parameters, passed as CLI
//! flags or read from a `key = value` defaults file.

use gsuite_graph::datasets::Dataset;
use gsuite_graph::{Graph, PartitionStrategy};
use serde::{Deserialize, Serialize};

use crate::plan::OptLevel;
use crate::{CoreError, Result};

/// The GNN models gSuite ships.
///
/// GCN, GIN and GraphSAGE are the paper's evaluated trio (§II-C);
/// GAT and SGC are extension models demonstrating the suite's
/// plug-and-play extendability claim (§IV) — they are built from the same
/// Table II core kernels and are *not* part of the paper-reproduction
/// sweeps ([`GnnModel::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GnnModel {
    /// Graph Convolutional Network.
    Gcn,
    /// Graph Isomorphism Network.
    Gin,
    /// GraphSAGE.
    Sage,
    /// Graph Attention Network (single-head; extension model, MP only).
    Gat,
    /// Simple Graph Convolution (K-hop propagation then one linear;
    /// extension model).
    Sgc,
    /// Relational GCN (one aggregation chain per typed edge relation;
    /// hetero extension model, MP only). Outside both [`GnnModel::ALL`]
    /// and [`GnnModel::EXTENDED`] — it runs on heterogeneous shapes and
    /// is exercised by its own registry scenario, not the paper sweeps.
    Rgcn,
}

impl GnnModel {
    /// The paper's evaluated models, in its order.
    pub const ALL: [GnnModel; 3] = [GnnModel::Gcn, GnnModel::Gin, GnnModel::Sage];

    /// Every model including the extension models.
    pub const EXTENDED: [GnnModel; 5] = [
        GnnModel::Gcn,
        GnnModel::Gin,
        GnnModel::Sage,
        GnnModel::Gat,
        GnnModel::Sgc,
    ];

    /// Paper-style short name (`GCN`, `GIN`, `SAG`, ...).
    pub fn name(self) -> &'static str {
        match self {
            GnnModel::Gcn => "GCN",
            GnnModel::Gin => "GIN",
            GnnModel::Sage => "SAG",
            GnnModel::Gat => "GAT",
            GnnModel::Sgc => "SGC",
            GnnModel::Rgcn => "RGC",
        }
    }

    /// Parses a model name (case-insensitive; accepts `sage`/`sag`).
    pub fn parse(s: &str) -> Option<GnnModel> {
        match s.to_ascii_lowercase().as_str() {
            "gcn" => Some(GnnModel::Gcn),
            "gin" => Some(GnnModel::Gin),
            "sag" | "sage" | "graphsage" => Some(GnnModel::Sage),
            "gat" => Some(GnnModel::Gat),
            "sgc" => Some(GnnModel::Sgc),
            "rgc" | "rgcn" => Some(GnnModel::Rgcn),
            _ => None,
        }
    }
}

impl std::fmt::Display for GnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The two computational models (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompModel {
    /// Message passing (indexSelect / scatter / sgemm).
    Mp,
    /// Sparse matrix multiplication (SpGEMM / SpMM / sgemm).
    Spmm,
}

impl CompModel {
    /// Both computational models.
    pub const ALL: [CompModel; 2] = [CompModel::Mp, CompModel::Spmm];

    /// Paper-style name (`MP`, `SpMM`).
    pub fn name(self) -> &'static str {
        match self {
            CompModel::Mp => "MP",
            CompModel::Spmm => "SpMM",
        }
    }

    /// Parses a computational-model name.
    pub fn parse(s: &str) -> Option<CompModel> {
        match s.to_ascii_lowercase().as_str() {
            "mp" | "messagepassing" | "message-passing" => Some(CompModel::Mp),
            "spmm" | "sparse" => Some(CompModel::Spmm),
            _ => None,
        }
    }
}

impl std::fmt::Display for CompModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which implementation runs the pipeline: gSuite's own kernels or one of
/// the framework baselines the paper compares against (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// gSuite's framework-independent kernels.
    GSuite,
    /// The PyTorch-Geometric-like baseline (MP schema, heavy dependency
    /// chain).
    PygLike,
    /// The DGL-like baseline (SpMM schema).
    DglLike,
}

impl FrameworkKind {
    /// All frameworks in the paper's Fig. 3 order (PyG, DGL, gSuite).
    pub const ALL: [FrameworkKind; 3] = [
        FrameworkKind::PygLike,
        FrameworkKind::DglLike,
        FrameworkKind::GSuite,
    ];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::GSuite => "gSuite",
            FrameworkKind::PygLike => "PyG",
            FrameworkKind::DglLike => "DGL",
        }
    }

    /// Parses a framework name.
    pub fn parse(s: &str) -> Option<FrameworkKind> {
        match s.to_ascii_lowercase().as_str() {
            "gsuite" | "none" => Some(FrameworkKind::GSuite),
            "pyg" | "pytorch-geometric" | "pyglike" => Some(FrameworkKind::PygLike),
            "dgl" | "dgllike" => Some(FrameworkKind::DglLike),
            _ => None,
        }
    }
}

impl std::fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full description of one benchmark run — the paper's "few parameters".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// GNN model.
    pub model: GnnModel,
    /// Computational model.
    pub comp: CompModel,
    /// Dataset (Table IV).
    pub dataset: Dataset,
    /// Dataset scale in `(0, 1]` (1.0 = full Table IV size).
    pub scale: f64,
    /// Number of GNN layers.
    pub layers: usize,
    /// Hidden width of every layer.
    pub hidden: usize,
    /// Executing framework.
    pub framework: FrameworkKind,
    /// RNG seed (weights).
    pub seed: u64,
    /// Compute real outputs host-side (disable for huge profile-only runs).
    pub functional_math: bool,
    /// Plan optimization level (O0 = golden-compatible launch stream, O2
    /// = fusion/hoist/memory-planning passes).
    pub opt: OptLevel,
    /// Modeled devices executing this run. `1` (the default) is the
    /// paper's single-GPU pipeline — the golden-compatible path, bit
    /// exact to every historical snapshot. `N > 1` partitions the graph
    /// into `N` shards with [`RunConfig::partitioner`] and compiles one
    /// op DAG per shard plus halo-exchange transfers
    /// ([`crate::plan::shard`]).
    pub gpus_per_run: usize,
    /// Graph-partition strategy for sharded runs (ignored at
    /// `gpus_per_run == 1`).
    pub partitioner: PartitionStrategy,
    /// Mini-batch size for neighbor-sampled inference. `0` (the default)
    /// is full-graph inference — the golden-compatible path. `N > 0`
    /// partitions the node set into seed batches of `N` with
    /// [`gsuite_graph::batch_schedule`], samples each batch's ego-net
    /// with [`RunConfig::fanout`] and compiles every sampled subgraph
    /// into one combined plan (weights shared across batches via
    /// content-identity CSE).
    pub batch_size: usize,
    /// Per-layer neighbor fanouts for sampled inference, outermost hop
    /// first (CLI/protocol form `10x5`). Empty (the default) means
    /// "10 per hop for every layer"; ignored on full-graph runs.
    pub fanout: Vec<usize>,
    /// Single seed node for ego-net inference (the serving shape: one
    /// request = one sampled neighborhood). Overrides
    /// [`RunConfig::batch_size`] scheduling — the run has exactly one
    /// batch containing this node.
    pub seed_node: Option<u32>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            model: GnnModel::Gcn,
            comp: CompModel::Mp,
            dataset: Dataset::Cora,
            scale: 1.0,
            layers: 2,
            hidden: 16,
            framework: FrameworkKind::GSuite,
            seed: 42,
            functional_math: true,
            opt: OptLevel::O0,
            gpus_per_run: 1,
            partitioner: PartitionStrategy::Hash,
            batch_size: 0,
            fanout: Vec::new(),
            seed_node: None,
        }
    }
}

impl RunConfig {
    /// Loads the configured graph at the configured scale.
    pub fn load_graph(&self) -> Graph {
        self.dataset.load_scaled(self.scale)
    }

    /// A human-readable run label, e.g. `"gSuite-MP GCN on Cora"`.
    pub fn label(&self) -> String {
        format!(
            "{}-{} {} on {}",
            self.framework,
            self.comp.name(),
            self.model,
            self.dataset
        )
    }

    /// Whether this run takes the neighbor-sampled mini-batch path
    /// (either a batch schedule or a single-ego-net request) instead of
    /// full-graph inference.
    pub fn is_minibatch(&self) -> bool {
        self.batch_size > 0 || self.seed_node.is_some()
    }

    /// The per-layer fanouts a sampled run uses: [`RunConfig::fanout`]
    /// when set, else 10 neighbors per hop for every layer.
    pub fn effective_fanouts(&self) -> Vec<usize> {
        if self.fanout.is_empty() {
            vec![10; self.layers]
        } else {
            self.fanout.clone()
        }
    }

    /// Applies one `key = value` setting.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownKey`] for unrecognized keys,
    /// [`CoreError::InvalidConfig`] for unparsable values.
    pub fn apply(&mut self, key: &str, value: &str) -> Result<()> {
        let invalid = |expected: &str| CoreError::InvalidConfig {
            key: key.to_string(),
            value: value.to_string(),
            expected: expected.to_string(),
        };
        match key {
            "model" => self.model = GnnModel::parse(value).ok_or_else(|| invalid("gcn|gin|sag"))?,
            "comp" | "computational-model" => {
                self.comp = CompModel::parse(value).ok_or_else(|| invalid("mp|spmm"))?
            }
            "dataset" => {
                self.dataset = Dataset::parse(value)
                    .ok_or_else(|| invalid("cora|citeseer|pubmed|reddit|livejournal"))?
            }
            "scale" => {
                let v: f64 = value.parse().map_err(|_| invalid("float in (0,1]"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(invalid("float in (0,1]"));
                }
                self.scale = v;
            }
            "layers" => {
                let v: usize = value.parse().map_err(|_| invalid("positive integer"))?;
                if v == 0 {
                    return Err(invalid("positive integer"));
                }
                self.layers = v;
            }
            "hidden" => {
                let v: usize = value.parse().map_err(|_| invalid("positive integer"))?;
                if v == 0 {
                    return Err(invalid("positive integer"));
                }
                self.hidden = v;
            }
            "framework" => {
                self.framework =
                    FrameworkKind::parse(value).ok_or_else(|| invalid("gsuite|pyg|dgl"))?
            }
            "seed" => self.seed = value.parse().map_err(|_| invalid("integer"))?,
            "functional" | "functional-math" => {
                self.functional_math = value.parse().map_err(|_| invalid("true|false"))?
            }
            "opt" | "opt-level" => {
                self.opt = OptLevel::parse(value).ok_or_else(|| invalid("0|2"))?
            }
            "shards" | "gpus" | "gpus-per-run" => {
                let v: usize = value.parse().map_err(|_| invalid("positive integer"))?;
                if v == 0 {
                    return Err(invalid("positive integer"));
                }
                self.gpus_per_run = v;
            }
            "partitioner" => {
                self.partitioner =
                    PartitionStrategy::parse(value).ok_or_else(|| invalid("hash|range|edgecut"))?
            }
            "batch_size" | "batch-size" => {
                self.batch_size = value
                    .parse()
                    .map_err(|_| invalid("non-negative integer (0 = full graph)"))?;
            }
            "fanout" => {
                self.fanout = gsuite_graph::parse_fanout(value)
                    .ok_or_else(|| invalid("x-separated fanouts, e.g. 10x5"))?;
            }
            "seed_node" | "seed-node" => {
                self.seed_node = Some(value.parse().map_err(|_| invalid("node id (u32)"))?);
            }
            _ => {
                return Err(CoreError::UnknownKey {
                    key: key.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Applies a defaults file: one `key = value` per line, `#` comments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RunConfig::apply`], plus
    /// [`CoreError::InvalidConfig`] for lines without `=`.
    pub fn apply_file(&mut self, content: &str) -> Result<()> {
        for (lineno, raw) in content.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(CoreError::InvalidConfig {
                    key: format!("line {}", lineno + 1),
                    value: raw.to_string(),
                    expected: "key = value".to_string(),
                });
            };
            self.apply(key.trim(), value.trim())?;
        }
        Ok(())
    }

    /// Parses CLI-style arguments (`--key value` or `--key=value`) on top
    /// of the defaults. A leading `--config <path>` pair is handled by the
    /// CLI binary, not here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RunConfig::apply`], plus
    /// [`CoreError::InvalidConfig`] for malformed flags.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Result<RunConfig> {
        let mut config = RunConfig::default();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_ref();
            let Some(flag) = arg.strip_prefix("--") else {
                return Err(CoreError::InvalidConfig {
                    key: arg.to_string(),
                    value: String::new(),
                    expected: "--key value".to_string(),
                });
            };
            if let Some((key, value)) = flag.split_once('=') {
                config.apply(key, value)?;
                i += 1;
            } else {
                let value = args.get(i + 1).map(|s| s.as_ref()).ok_or_else(|| {
                    CoreError::InvalidConfig {
                        key: flag.to_string(),
                        value: String::new(),
                        expected: "a value after the flag".to_string(),
                    }
                })?;
                config.apply(flag, value)?;
                i += 2;
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RunConfig::default();
        assert_eq!(c.model, GnnModel::Gcn);
        assert_eq!(c.layers, 2);
        assert!(c.functional_math);
    }

    #[test]
    fn parse_enums() {
        assert_eq!(GnnModel::parse("SAGE"), Some(GnnModel::Sage));
        assert_eq!(GnnModel::parse("sag"), Some(GnnModel::Sage));
        assert_eq!(CompModel::parse("SpMM"), Some(CompModel::Spmm));
        assert_eq!(FrameworkKind::parse("PyG"), Some(FrameworkKind::PygLike));
        assert_eq!(GnnModel::parse("transformer"), None);
    }

    #[test]
    fn from_args_both_flag_styles() {
        let c = RunConfig::from_args(&["--model", "gin", "--layers=3", "--dataset", "PB"]).unwrap();
        assert_eq!(c.model, GnnModel::Gin);
        assert_eq!(c.layers, 3);
        assert_eq!(c.dataset, Dataset::PubMed);
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(RunConfig::from_args(&["--layers", "0"]).is_err());
        assert!(RunConfig::from_args(&["--scale", "2.0"]).is_err());
        assert!(RunConfig::from_args(&["--nonsense", "1"]).is_err());
        assert!(RunConfig::from_args(&["bare"]).is_err());
        assert!(RunConfig::from_args(&["--model"]).is_err());
        assert!(RunConfig::from_args(&["--opt", "1"]).is_err());
    }

    #[test]
    fn opt_level_is_configurable_and_defaults_to_o0() {
        assert_eq!(RunConfig::default().opt, OptLevel::O0);
        let c = RunConfig::from_args(&["--opt", "2"]).unwrap();
        assert_eq!(c.opt, OptLevel::O2);
        let mut c = RunConfig::default();
        c.apply_file("opt = 2\n").unwrap();
        assert_eq!(c.opt, OptLevel::O2);
    }

    #[test]
    fn sharding_keys_are_configurable_and_default_single_gpu() {
        let c = RunConfig::default();
        assert_eq!(c.gpus_per_run, 1);
        assert_eq!(c.partitioner, PartitionStrategy::Hash);
        let c = RunConfig::from_args(&["--shards", "4", "--partitioner", "edgecut"]).unwrap();
        assert_eq!(c.gpus_per_run, 4);
        assert_eq!(c.partitioner, PartitionStrategy::EdgeCut);
        let mut c = RunConfig::default();
        c.apply_file("gpus-per-run = 2\npartitioner = range\n")
            .unwrap();
        assert_eq!(c.gpus_per_run, 2);
        assert_eq!(c.partitioner, PartitionStrategy::Range);
        assert!(RunConfig::from_args(&["--shards", "0"]).is_err());
        assert!(RunConfig::from_args(&["--partitioner", "metis"]).is_err());
    }

    #[test]
    fn batch_keys_are_configurable_and_default_to_full_graph() {
        let c = RunConfig::default();
        assert_eq!(c.batch_size, 0);
        assert!(c.fanout.is_empty());
        assert_eq!(c.seed_node, None);
        assert!(!c.is_minibatch());
        assert_eq!(c.effective_fanouts(), vec![10, 10]);

        let c = RunConfig::from_args(&["--batch-size", "64", "--fanout", "10x5"]).unwrap();
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.fanout, vec![10, 5]);
        assert!(c.is_minibatch());
        assert_eq!(c.effective_fanouts(), vec![10, 5]);

        let mut c = RunConfig::default();
        c.apply_file("batch_size = 32\nfanout = 25x10\nseed_node = 7\n")
            .unwrap();
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.fanout, vec![25, 10]);
        assert_eq!(c.seed_node, Some(7));
        assert!(c.is_minibatch());

        assert!(RunConfig::from_args(&["--fanout", "10x"]).is_err());
        assert!(RunConfig::from_args(&["--fanout", "ten"]).is_err());
        assert!(RunConfig::from_args(&["--seed-node", "-1"]).is_err());
        // batch_size 0 is legal: it means full-graph.
        assert!(!RunConfig::from_args(&["--batch-size", "0"])
            .unwrap()
            .is_minibatch());
    }

    #[test]
    fn rgcn_parses_but_stays_out_of_the_sweep_arrays() {
        assert_eq!(GnnModel::parse("rgcn"), Some(GnnModel::Rgcn));
        assert_eq!(GnnModel::parse("RGC"), Some(GnnModel::Rgcn));
        assert_eq!(GnnModel::Rgcn.name(), "RGC");
        assert!(!GnnModel::ALL.contains(&GnnModel::Rgcn));
        assert!(!GnnModel::EXTENDED.contains(&GnnModel::Rgcn));
    }

    #[test]
    fn config_file_round_trip() {
        let mut c = RunConfig::default();
        c.apply_file("# defaults\nmodel = sag\ncomp = mp\nhidden = 32 # wide\n\nscale = 0.5\n")
            .unwrap();
        assert_eq!(c.model, GnnModel::Sage);
        assert_eq!(c.hidden, 32);
        assert!((c.scale - 0.5).abs() < 1e-12);
        assert!(c.apply_file("not a kv line").is_err());
    }

    #[test]
    fn label_reads_well() {
        let c = RunConfig::default();
        assert_eq!(c.label(), "gSuite-MP GCN on Cora");
    }
}
