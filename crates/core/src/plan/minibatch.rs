//! Neighbor-sampled mini-batch lowering: every sampled batch compiled
//! into **one combined plan**.
//!
//! The batch runner and the serving layer both reach this path through
//! [`crate::pipeline::PipelineRun::build`] whenever
//! [`crate::config::RunConfig::is_minibatch`] holds — `batch_size > 0`
//! batches the whole node set with [`gsuite_graph::batch_schedule`],
//! `seed_node = v` compiles the single ego-net a serve request asks for.
//! Because both surfaces share this function byte for byte, a served
//! `batch_size=`/`fanout=` request profiles a subgraph bit-identical to
//! the batch runner's corresponding `minibatch` cell.
//!
//! Per batch: sample the ego-net with [`gsuite_graph::NeighborSampler`]
//! (seeded draws — replayable on every host and thread count), then
//! lower the configured model over the re-indexed subgraph *appending*
//! to the shared plan ([`crate::models::Builder::with_plan`]). The
//! combined plan then flows through the ordinary
//! optimize → decorate → schedule tail. At O2 the hoist pass's
//! content-identity CSE recognizes each batch's re-upload of the same
//! layer weights (tagged via [`crate::models::Builder::tag_weights`])
//! and keeps one copy, while per-batch adjacency/index buffers — whose
//! content differs per sampled subgraph — rebind per batch.
//!
//! The functional output keeps only each batch's *seed* rows (local ids
//! `0..seeds` by the sampler's contract), scattered back to their global
//! node ids — so a full batch sweep reconstructs an `[n, hidden]` output
//! with every row computed from its own sampled neighborhood.

use gsuite_graph::{batch_schedule, Graph, NeighborSampler};
use gsuite_tensor::DenseMatrix;

use crate::config::RunConfig;
use crate::models::Builder;
use crate::plan::{OptLevel, Plan};
use crate::{models, Result};

/// Lowers the full mini-batch sweep (or single ego-net) for `config`
/// over `graph` into one combined plan. See the module docs.
///
/// # Errors
///
/// Propagates sampler errors (e.g. an out-of-bounds `seed_node`) and
/// everything the model lowering can return.
pub fn lower_batched(graph: &Graph, config: &RunConfig) -> Result<(Plan, DenseMatrix)> {
    let batches: Vec<Vec<u32>> = match config.seed_node {
        Some(v) => vec![vec![v]],
        None => batch_schedule(graph.num_nodes(), config.batch_size, config.seed),
    };
    let sampler = NeighborSampler::new(config.effective_fanouts()).seed(config.seed);
    let mut effective = config.clone();
    if let Some(comp) = config.framework.forced_comp() {
        effective.comp = comp;
    }

    let hidden = config.hidden;
    // Single ego-net runs report just their seed rows; a batch sweep
    // reassembles the full per-node output in global id order.
    let mut output = if config.seed_node.is_some() {
        DenseMatrix::zeros(1, hidden)
    } else {
        DenseMatrix::zeros(graph.num_nodes(), hidden)
    };

    let mut plan = Plan::new();
    for batch in &batches {
        let sub = sampler.sample(graph, batch)?;
        let mut builder = Builder::with_plan(&sub.graph, config.functional_math, plan)
            .track_uploads(config.opt == OptLevel::O2)
            .tag_weights(true);
        models::lower_into(&mut builder, &effective)?;
        let (p, batch_out) = builder.finish();
        plan = p;
        if config.functional_math {
            // Seeds occupy local rows 0..seeds in request order.
            for local in 0..sub.seeds {
                let row = if config.seed_node.is_some() {
                    local
                } else {
                    sub.local_to_global[local] as usize
                };
                for c in 0..hidden {
                    output.set(row, c, batch_out.get(local, c));
                }
            }
        }
    }
    Ok((plan, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BufClass;

    fn minibatch_config(opt: OptLevel) -> RunConfig {
        RunConfig {
            scale: 0.05,
            functional_math: false,
            batch_size: 32,
            fanout: vec![5, 5],
            opt,
            ..RunConfig::default()
        }
    }

    fn live_weight_bufs(plan: &Plan) -> usize {
        plan.bufs()
            .iter()
            .filter(|b| b.class == BufClass::Weight && !b.is_dead())
            .count()
    }

    /// The combined plan's op/buffer counts: O0 re-uploads every layer's
    /// weights once per batch; O2's content-identity CSE keeps exactly
    /// one live copy per distinct weight matrix, and fusion shrinks the
    /// combined op stream.
    #[test]
    fn combined_plan_shares_weights_across_batches_at_o2() {
        let config = minibatch_config(OptLevel::O0);
        let graph = config.load_graph();
        let batches = batch_schedule(graph.num_nodes(), config.batch_size, config.seed).len();
        assert!(batches >= 2, "need a real sweep, got {batches} batch(es)");

        let (mut p0, _) = lower_batched(&graph, &config).expect("O0 lowering");
        p0.optimize(OptLevel::O0);
        let (mut p2, _) =
            lower_batched(&graph, &minibatch_config(OptLevel::O2)).expect("O2 lowering");
        p2.optimize(OptLevel::O2);

        let (w0, w2) = (live_weight_bufs(&p0), live_weight_bufs(&p2));
        assert_eq!(
            w0,
            w2 * batches,
            "O0 must carry every batch's weight re-upload"
        );
        assert!(w2 < w0, "O2 must merge the per-batch weight copies");
        assert!(
            p2.ops().len() < p0.ops().len(),
            "fusion must shrink the combined op stream ({} vs {})",
            p2.ops().len(),
            p0.ops().len()
        );
    }

    /// `seed_node` compiles exactly one ego-net, and the same request is
    /// the same plan on every call.
    #[test]
    fn seed_node_lowers_one_replayable_ego_net() {
        let config = RunConfig {
            scale: 0.05,
            functional_math: false,
            seed_node: Some(7),
            fanout: vec![5, 5],
            ..RunConfig::default()
        };
        let graph = config.load_graph();
        let (a, _) = lower_batched(&graph, &config).expect("ego-net lowering");
        let (b, _) = lower_batched(&graph, &config).expect("ego-net lowering");
        assert_eq!(a.ops().len(), b.ops().len());
        assert_eq!(a.bufs().len(), b.bufs().len());
        for (x, y) in a.bufs().iter().zip(b.bufs().iter()) {
            assert_eq!((&x.name, x.elems), (&y.name, y.elems));
        }
    }
}
