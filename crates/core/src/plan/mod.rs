//! The kernel-dataflow **Plan IR** — the explicit contract between model
//! definition and execution.
//!
//! Models no longer emit concrete [`Launch`]es directly. Instead the
//! [`crate::models::Builder`] *lowers* a model into a [`Plan`]: a DAG of
//! kernel ops ([`PlanOp`]) over explicit, typed logical buffers
//! ([`PlanBuf`]). Device addresses are assigned at **schedule** time
//! ([`Plan::schedule`]), not at emission time, which is what makes the
//! plan optimizable:
//!
//! * a pass pipeline ([`Plan::optimize`], see [`passes`]) can fuse
//!   elementwise ops into producing kernels, hoist/CSE layer-invariant
//!   subgraphs (the GCN-SpMM normalization chain, repeated degree
//!   scatters, re-uploaded aggregation matrices) and eliminate dead
//!   buffers;
//! * the scheduler can plan memory from buffer liveness, reusing device
//!   address ranges and reporting peak device bytes.
//!
//! Two optimization levels exist ([`OptLevel`]):
//!
//! * **O0** — the golden-compatibility mode: no passes run and scheduling
//!   bump-allocates every buffer in creation order, reproducing the
//!   pre-IR launch stream *byte for byte* (addresses included). The
//!   golden-profile suite locks this.
//! * **O2** — all passes plus liveness-based memory planning. The
//!   functional output is byte-identical to O0 (host math happens at
//!   lowering, before any pass), but the launch stream is smaller and
//!   peak device memory lower.
//!
//! [`explain`] renders a plan — ops, buffers, liveness, addresses and the
//! pass decision log — as a human-readable report (`gsuite-cli explain`).

pub mod batchmerge;
pub mod explain;
pub mod minibatch;
pub mod passes;
pub mod shard;
pub mod template;

pub use passes::{pass_pipeline, DeadBufferElim, FuseElementwise, HoistCse, Pass};

use std::sync::Arc;

use gsuite_tensor::ops::Reduce;
use serde::{Deserialize, Serialize};

use crate::device::AddressSpace;
use crate::kernels::{
    ElementwiseKernel, EwOp, ExchangeKernel, GcnEdgeScale, IndexSelectKernel, KernelKind, Launch,
    ScatterKernel, SgemmKernel, SpgemmKernel, SpmmKernel,
};

/// Plan optimization level, plumbed through `RunConfig`, scenario specs,
/// the serve cache key and the CLI (`--opt 0|2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OptLevel {
    /// No passes; bump allocation in buffer-creation order. Launch
    /// streams (addresses included) and functional outputs are
    /// byte-identical to the historical direct-emission path — the mode
    /// every golden snapshot is recorded at.
    #[default]
    O0,
    /// Full pass pipeline (fusion, hoist/CSE, dead-buffer elimination)
    /// plus liveness-based memory planning with address-range reuse.
    O2,
}

impl OptLevel {
    /// Display name (`"O0"` / `"O2"`).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O2 => "O2",
        }
    }

    /// Parses `0`/`o0`/`O0` and `2`/`o2`/`O2`.
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s.to_ascii_lowercase().as_str() {
            "0" | "o0" => Some(OptLevel::O0),
            "2" | "o2" => Some(OptLevel::O2),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Handle to one logical buffer of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

impl BufId {
    /// The buffer's index into [`Plan::bufs`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for BufId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// What a buffer holds — the IR's buffer typing, used by the passes and
/// the explain report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufClass {
    /// A dense `[rows, cols]` f32 tensor (features, intermediates).
    Dense,
    /// An edge-endpoint index array.
    Index,
    /// Sparse-matrix structure or values (CSR row pointer / column
    /// indices / stored values).
    Sparse,
    /// Dense model weights.
    Weight,
}

impl BufClass {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BufClass::Dense => "dense",
            BufClass::Index => "index",
            BufClass::Sparse => "sparse",
            BufClass::Weight => "weight",
        }
    }
}

/// Which address region a buffer is assigned from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrClass {
    /// The simulated device heap (planned / bump-allocated).
    Device,
    /// The framework-wrapper scratch region (the PyG-/DGL-like adapters'
    /// synthetic copy buffers; legacy fixed-stride layout in a disjoint
    /// address range).
    Wrapper,
}

/// One logical buffer: a shape (element count), a type, an address
/// region, and — for host-uploaded content — a semantic identity used by
/// the hoist/CSE pass to recognize layer-invariant re-uploads.
#[derive(Debug, Clone)]
pub struct PlanBuf {
    /// Debug/report label (e.g. `"X"`, `"adjT+I.ci"`, `"sgemm.out"`).
    pub name: String,
    /// Element count (4-byte elements, matching `cudaMalloc` of f32/u32).
    pub elems: u64,
    /// Buffer typing.
    pub class: BufClass,
    /// Address region.
    pub space: AddrClass,
    /// Semantic content identity for uploads (`None` = opaque: weights,
    /// features, intermediates). Two upload buffers with equal identity,
    /// size and class hold the same bytes by construction.
    pub(crate) content: Option<u64>,
    /// Enforcement fingerprint for the "same bytes by construction"
    /// contract: a hash of the actual uploaded payload (e.g. CSR values),
    /// where the content identity is derived from tag + structure. The
    /// hoist pass asserts that content-equal buffers agree on this.
    pub(crate) check: Option<u64>,
    /// Marked by dead-buffer elimination; dead buffers are never
    /// scheduled.
    pub(crate) dead: bool,
}

impl PlanBuf {
    /// Size in bytes (before allocator padding).
    pub fn bytes(&self) -> u64 {
        self.elems * 4
    }

    /// Whether dead-buffer elimination removed this buffer.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// GCN's folded symmetric normalization on an `indexSelect` op: the
/// destination endpoints plus the degree-vector buffer.
#[derive(Clone)]
pub struct ScaleSpec {
    /// Destination endpoint per edge.
    pub dst: Arc<Vec<u32>>,
    /// Degree-vector buffer.
    pub deg: BufId,
}

/// The kernel-specific payload of one plan op: every parameter of the
/// corresponding launch *except* device addresses, which are represented
/// as [`BufId`]s and resolved at schedule time.
#[derive(Clone)]
pub enum OpSpec {
    /// Dense `c = a · b` (`[m,k] x [k,n]`), optionally with a fused ReLU.
    Sgemm {
        /// Rows of `a`/`c`.
        m: usize,
        /// Reduction dimension.
        k: usize,
        /// Columns of `b`/`c`.
        n: usize,
        /// Fused ReLU at the store.
        relu: bool,
        /// Input tensor.
        a: BufId,
        /// Weight tensor.
        b: BufId,
        /// Output tensor.
        c: BufId,
    },
    /// Gathers `src` rows along `index`.
    IndexSelect {
        /// Gathered endpoint per edge.
        index: Arc<Vec<u32>>,
        /// Feature width of `src`.
        feat: usize,
        /// Endpoint-array buffer.
        index_buf: BufId,
        /// Gathered matrix.
        src: BufId,
        /// `[E, feat]` output.
        out: BufId,
        /// Optional folded GCN normalization.
        scale: Option<ScaleSpec>,
    },
    /// Reduces `[E, feat]` rows into `out_rows` destinations (or scatters
    /// the constant 1 when `input` is `None` — the degree count).
    Scatter {
        /// Destination endpoint per edge.
        index: Arc<Vec<u32>>,
        /// Feature width.
        feat: usize,
        /// Endpoint-array buffer.
        index_buf: BufId,
        /// Input rows; `None` scatters a constant.
        input: Option<BufId>,
        /// Output tensor.
        out: BufId,
        /// Output rows.
        out_rows: usize,
        /// Reduction mode.
        reduce: Reduce,
    },
    /// CSR × dense multiply.
    Spmm {
        /// CSR row pointer (live structure).
        row_ptr: Arc<Vec<u32>>,
        /// CSR column indices (live structure).
        col_idx: Arc<Vec<u32>>,
        /// Whether stored values are loaded.
        has_values: bool,
        /// Row-pointer buffer.
        rp: BufId,
        /// Column-index buffer.
        ci: BufId,
        /// Values buffer.
        val: BufId,
        /// Dense operand.
        x: BufId,
        /// Output tensor.
        out: BufId,
        /// Feature width.
        feat: usize,
    },
    /// CSR × CSR multiply with a known output pattern.
    Spgemm {
        /// A's row pointer (live structure).
        a_row_ptr: Arc<Vec<u32>>,
        /// A's column indices (live structure).
        a_col_idx: Arc<Vec<u32>>,
        /// B's row pointer (live structure).
        b_row_ptr: Arc<Vec<u32>>,
        /// Output-pattern row pointer (live structure).
        out_row_ptr: Arc<Vec<u32>>,
        /// A's (row pointer, column index, values) buffers.
        a: (BufId, BufId, BufId),
        /// B's (row pointer, column index, values) buffers.
        b: (BufId, BufId, BufId),
        /// Output column-index buffer.
        out_ci: BufId,
        /// Output values buffer.
        out_val: BufId,
    },
    /// Elementwise glue (activation / combine / row scale / copy).
    Elementwise {
        /// Operation variant.
        op: EwOp,
        /// Total elements.
        elems: u64,
        /// Row length (RowScale only; 1 otherwise).
        feat: usize,
        /// Input `a`.
        a: BufId,
        /// Input `b` (Axpy only).
        b: Option<BufId>,
        /// Per-row scale vector (RowScale only).
        s: Option<BufId>,
        /// Output.
        out: BufId,
    },
    /// Halo-feature transfer from a peer device into this shard's staging
    /// buffer (sharded multi-GPU plans only; see [`crate::plan::shard`]).
    Exchange {
        /// Peer shard the rows come from.
        peer: usize,
        /// GNN layer this transfer precedes.
        layer: usize,
        /// Halo rows transferred.
        rows: u64,
        /// Feature width of the transferred rows.
        feat: usize,
        /// Staging buffer receiving the rows.
        out: BufId,
    },
}

/// One node of the plan DAG: a kernel-taxonomy tag plus the op payload.
#[derive(Clone)]
pub struct PlanOp {
    /// Kernel taxonomy (paper Table II names) used for report grouping.
    pub kind: KernelKind,
    /// The address-free kernel description.
    pub spec: OpSpec,
}

impl PlanOp {
    /// The buffers this op reads, in a fixed order.
    pub fn reads(&self) -> Vec<BufId> {
        match &self.spec {
            OpSpec::Sgemm { a, b, .. } => vec![*a, *b],
            OpSpec::IndexSelect {
                index_buf,
                src,
                scale,
                ..
            } => {
                let mut r = vec![*src, *index_buf];
                if let Some(s) = scale {
                    r.push(s.deg);
                }
                r
            }
            OpSpec::Scatter {
                index_buf, input, ..
            } => {
                let mut r = vec![*index_buf];
                if let Some(i) = input {
                    r.push(*i);
                }
                r
            }
            OpSpec::Spmm { rp, ci, val, x, .. } => vec![*rp, *ci, *val, *x],
            OpSpec::Spgemm { a, b, .. } => vec![a.0, a.1, a.2, b.0, b.1, b.2],
            OpSpec::Elementwise { a, b, s, .. } => {
                let mut r = vec![*a];
                if let Some(b) = b {
                    r.push(*b);
                }
                if let Some(s) = s {
                    r.push(*s);
                }
                r
            }
            // The source rows live on the peer device; locally an
            // exchange only defines its staging buffer.
            OpSpec::Exchange { .. } => Vec::new(),
        }
    }

    /// The buffers this op writes.
    pub fn writes(&self) -> Vec<BufId> {
        match &self.spec {
            OpSpec::Sgemm { c, .. } => vec![*c],
            OpSpec::IndexSelect { out, .. } => vec![*out],
            OpSpec::Scatter { out, .. } => vec![*out],
            OpSpec::Spmm { out, .. } => vec![*out],
            OpSpec::Spgemm {
                out_ci, out_val, ..
            } => vec![*out_ci, *out_val],
            OpSpec::Elementwise { out, .. } => vec![*out],
            OpSpec::Exchange { out, .. } => vec![*out],
        }
    }

    /// Rewrites every buffer reference through `f` (pass plumbing).
    pub(crate) fn remap(&mut self, f: &impl Fn(BufId) -> BufId) {
        match &mut self.spec {
            OpSpec::Sgemm { a, b, c, .. } => {
                *a = f(*a);
                *b = f(*b);
                *c = f(*c);
            }
            OpSpec::IndexSelect {
                index_buf,
                src,
                out,
                scale,
                ..
            } => {
                *index_buf = f(*index_buf);
                *src = f(*src);
                *out = f(*out);
                if let Some(s) = scale {
                    s.deg = f(s.deg);
                }
            }
            OpSpec::Scatter {
                index_buf,
                input,
                out,
                ..
            } => {
                *index_buf = f(*index_buf);
                if let Some(i) = input {
                    *i = f(*i);
                }
                *out = f(*out);
            }
            OpSpec::Spmm {
                rp,
                ci,
                val,
                x,
                out,
                ..
            } => {
                *rp = f(*rp);
                *ci = f(*ci);
                *val = f(*val);
                *x = f(*x);
                *out = f(*out);
            }
            OpSpec::Spgemm {
                a,
                b,
                out_ci,
                out_val,
                ..
            } => {
                *a = (f(a.0), f(a.1), f(a.2));
                *b = (f(b.0), f(b.1), f(b.2));
                *out_ci = f(*out_ci);
                *out_val = f(*out_val);
            }
            OpSpec::Elementwise { a, b, s, out, .. } => {
                *a = f(*a);
                if let Some(b) = b {
                    *b = f(*b);
                }
                if let Some(s) = s {
                    *s = f(*s);
                }
                *out = f(*out);
            }
            OpSpec::Exchange { out, .. } => {
                *out = f(*out);
            }
        }
    }

    /// Materializes the concrete launch once buffer addresses are known.
    pub fn to_launch(&self, addr: &impl Fn(BufId) -> u64) -> Launch {
        match &self.spec {
            OpSpec::Sgemm {
                m,
                k,
                n,
                relu,
                a,
                b,
                c,
            } => Launch::new(
                self.kind,
                SgemmKernel::new(*m, *k, *n, addr(*a), addr(*b), addr(*c)).with_relu(*relu),
            ),
            OpSpec::IndexSelect {
                index,
                feat,
                index_buf,
                src,
                out,
                scale,
            } => Launch::new(
                self.kind,
                IndexSelectKernel {
                    index: index.clone(),
                    index_base: addr(*index_buf),
                    src_base: addr(*src),
                    feat: *feat,
                    out_base: addr(*out),
                    scale: scale.as_ref().map(|s| GcnEdgeScale {
                        dst: s.dst.clone(),
                        deg_base: addr(s.deg),
                    }),
                },
            ),
            OpSpec::Scatter {
                index,
                feat,
                index_buf,
                input,
                out,
                out_rows,
                reduce,
            } => Launch::new(
                self.kind,
                ScatterKernel {
                    index: index.clone(),
                    index_base: addr(*index_buf),
                    in_base: input.map(addr),
                    feat: *feat,
                    out_base: addr(*out),
                    out_rows: *out_rows,
                    reduce: *reduce,
                },
            ),
            OpSpec::Spmm {
                row_ptr,
                col_idx,
                has_values,
                rp,
                ci,
                val,
                x,
                out,
                feat,
            } => Launch::new(
                self.kind,
                SpmmKernel::new(
                    row_ptr.clone(),
                    col_idx.clone(),
                    *has_values,
                    addr(*rp),
                    addr(*ci),
                    addr(*val),
                    addr(*x),
                    addr(*out),
                    *feat,
                ),
            ),
            OpSpec::Spgemm {
                a_row_ptr,
                a_col_idx,
                b_row_ptr,
                out_row_ptr,
                a,
                b,
                out_ci,
                out_val,
            } => Launch::new(
                self.kind,
                SpgemmKernel::new(
                    a_row_ptr.clone(),
                    a_col_idx.clone(),
                    b_row_ptr.clone(),
                    out_row_ptr.clone(),
                    (addr(a.0), addr(a.1), addr(a.2)),
                    (addr(b.0), addr(b.1), addr(b.2)),
                    (addr(*out_ci), addr(*out_val)),
                ),
            ),
            OpSpec::Elementwise {
                op,
                elems,
                feat,
                a,
                b,
                s,
                out,
            } => {
                let kernel = match op {
                    EwOp::Relu => ElementwiseKernel::relu(addr(*a), addr(*out), *elems),
                    EwOp::Copy => ElementwiseKernel::copy(addr(*a), addr(*out), *elems),
                    EwOp::Axpy => ElementwiseKernel::axpy(
                        addr(*a),
                        addr(b.expect("axpy has b")),
                        addr(*out),
                        *elems,
                    ),
                    EwOp::RowScale => ElementwiseKernel::row_scale(
                        addr(*a),
                        addr(s.expect("rowscale has s")),
                        addr(*out),
                        *elems,
                        *feat,
                    ),
                };
                Launch::new(self.kind, kernel)
            }
            OpSpec::Exchange {
                rows, feat, out, ..
            } => Launch::new(
                self.kind,
                ExchangeKernel::new(*rows * *feat as u64, addr(*out)),
            ),
        }
    }

    /// The launch grid — a pure function of shapes and index structures,
    /// so it can be computed before addresses are assigned.
    pub fn grid(&self) -> gsuite_gpu::Grid {
        self.to_launch(&|_| 0).workload.grid()
    }

    /// A compact per-op label (e.g. `"sgemm 128x16x8+relu"`).
    pub fn label(&self) -> String {
        match &self.spec {
            OpSpec::Sgemm { m, k, n, relu, .. } => {
                format!("sgemm {m}x{k}x{n}{}", if *relu { "+relu" } else { "" })
            }
            OpSpec::IndexSelect {
                index, feat, scale, ..
            } => format!(
                "indexSelect e={} f={feat}{}",
                index.len(),
                if scale.is_some() { "+gcnNorm" } else { "" }
            ),
            OpSpec::Scatter {
                index,
                feat,
                input,
                reduce,
                ..
            } => format!(
                "scatter{} e={} f={feat} {}",
                if input.is_none() { "-deg" } else { "" },
                index.len(),
                reduce.name()
            ),
            OpSpec::Spmm { col_idx, feat, .. } => {
                format!("SpMM nnz={} f={feat}", col_idx.len())
            }
            OpSpec::Spgemm { a_col_idx, .. } => format!("SpGEMM nnzA={}", a_col_idx.len()),
            OpSpec::Elementwise { op, elems, .. } => {
                format!("ew-{} n={elems}", op.label())
            }
            OpSpec::Exchange {
                peer,
                layer,
                rows,
                feat,
                ..
            } => format!("exchange l{layer} from=s{peer} rows={rows} f={feat}"),
        }
    }
}

impl std::fmt::Debug for PlanOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanOp")
            .field("kind", &self.kind)
            .field("op", &self.label())
            .finish()
    }
}

/// A lowered (and possibly optimized) kernel-dataflow program: buffers in
/// creation order, ops in emission order, the designated output buffer,
/// and the pass decision log.
#[derive(Clone, Default)]
pub struct Plan {
    pub(crate) bufs: Vec<PlanBuf>,
    pub(crate) ops: Vec<PlanOp>,
    pub(crate) output: Option<BufId>,
    pub(crate) decisions: Vec<String>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Registers a logical buffer; creation order is the O0 allocation
    /// order.
    pub(crate) fn add_buf(
        &mut self,
        name: impl Into<String>,
        elems: u64,
        class: BufClass,
        space: AddrClass,
        content: Option<u64>,
    ) -> BufId {
        let id = BufId(self.bufs.len());
        self.bufs.push(PlanBuf {
            name: name.into(),
            elems,
            class,
            space,
            content,
            check: None,
            dead: false,
        });
        id
    }

    /// Attaches the payload fingerprint the hoist pass verifies when it
    /// merges content-equal uploads.
    pub(crate) fn set_content_check(&mut self, b: BufId, check: u64) {
        self.bufs[b.0].check = Some(check);
    }

    /// Appends an op.
    pub(crate) fn push(&mut self, kind: KernelKind, spec: OpSpec) {
        self.ops.push(PlanOp { kind, spec });
    }

    /// The ops, in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The logical buffers, in creation order.
    pub fn bufs(&self) -> &[PlanBuf] {
        &self.bufs
    }

    /// The designated output buffer.
    pub fn output(&self) -> Option<BufId> {
        self.output
    }

    /// The pass decision log (empty until [`Plan::optimize`] runs at O2).
    pub fn decisions(&self) -> &[String] {
        &self.decisions
    }

    /// Kernel kinds in execution order (one launch per op).
    pub fn kinds(&self) -> Vec<KernelKind> {
        self.ops.iter().map(|o| o.kind).collect()
    }

    /// Number of launches this plan schedules to.
    pub fn launch_count(&self) -> usize {
        self.ops.len()
    }

    /// Runs the pass pipeline for `level` (a no-op at O0), recording each
    /// decision in [`Plan::decisions`].
    pub fn optimize(&mut self, level: OptLevel) {
        for pass in pass_pipeline(level) {
            pass.run(self);
        }
    }

    /// Per-buffer liveness: `(def, last)` op indices, where `def == -1`
    /// means host-uploaded before execution and `last == ops.len()` marks
    /// the plan output (live to the end). `None` for buffers no op
    /// references.
    pub fn liveness(&self) -> Vec<Option<(isize, isize)>> {
        let mut live: Vec<Option<(isize, isize)>> = vec![None; self.bufs.len()];
        let end = self.ops.len() as isize;
        let mut touch = |b: BufId, t: isize, writes: bool| {
            let entry = live[b.0].get_or_insert((isize::MAX, isize::MIN));
            if writes {
                entry.0 = entry.0.min(t);
            }
            entry.1 = entry.1.max(t);
        };
        for (i, op) in self.ops.iter().enumerate() {
            for b in op.reads() {
                touch(b, i as isize, false);
            }
            for b in op.writes() {
                touch(b, i as isize, true);
            }
        }
        for entry in live.iter_mut().flatten() {
            if entry.0 == isize::MAX {
                entry.0 = -1; // read-only: uploaded before execution
            }
        }
        if let Some(out) = self.output {
            if let Some(entry) = live[out.0].as_mut() {
                entry.1 = end;
            }
        }
        live
    }

    /// Schedules the plan: assigns device addresses and materializes the
    /// launch stream.
    ///
    /// * At [`OptLevel::O0`] every buffer is bump-allocated in creation
    ///   order — byte-identical to the historical direct-emission path.
    /// * At [`OptLevel::O2`] device buffers are planned from liveness
    ///   with address-range reuse; dead buffers are skipped.
    ///
    /// Wrapper-region buffers always use the legacy fixed-stride layout in
    /// their disjoint address range.
    pub fn schedule(&self, level: OptLevel) -> Schedule {
        self.schedule_in(level, &mut ScheduleScratch::default())
    }

    /// [`Plan::schedule`] with caller-owned scratch arenas.
    ///
    /// The output is **byte-identical** to [`Plan::schedule`] — the
    /// scratch only recycles the allocator free list and the liveness
    /// bucket storage between schedules, so a steady-state worker
    /// (see [`crate::pipeline::WorkerScratch`]) re-schedules repeat-shape
    /// plans with near-zero heap allocation.
    pub fn schedule_in(&self, level: OptLevel, scratch: &mut ScheduleScratch) -> Schedule {
        let live = self.liveness();
        let mut addrs: Vec<Option<u64>> = vec![None; self.bufs.len()];
        let mut reused: Vec<bool> = vec![false; self.bufs.len()];
        let mut wrapper_cursor = WRAPPER_BASE;
        let ScheduleScratch { space, buckets } = scratch;
        space.reset(level == OptLevel::O2);

        // Wrapper buffers: legacy stride layout in creation order.
        for (i, buf) in self.bufs.iter().enumerate() {
            if buf.space == AddrClass::Wrapper && !buf.dead {
                addrs[i] = Some(wrapper_cursor);
                wrapper_cursor += buf.elems * 4 + 256;
            }
        }

        match level {
            OptLevel::O0 => {
                for (i, buf) in self.bufs.iter().enumerate() {
                    if buf.space == AddrClass::Device && !buf.dead {
                        addrs[i] = Some(space.alloc_f32(buf.elems));
                    }
                }
            }
            OptLevel::O2 => {
                // Liveness-planned allocation: uploads (def -1) first,
                // then per-op defs; frees after each op's last use.
                // Buffers are bucketed by timestep up front (creation
                // order within a bucket), keeping the walk linear.
                let nts = self.ops.len() + 1; // slot 0 = pre-execution
                let (defs_at, frees_at) = buckets.take(nts);
                for (i, buf) in self.bufs.iter().enumerate() {
                    if buf.space != AddrClass::Device || buf.dead {
                        continue;
                    }
                    let Some((def, last)) = live[i] else {
                        continue;
                    };
                    defs_at[(def + 1) as usize].push(i);
                    if let Some(slot) = frees_at.get_mut((last + 1) as usize) {
                        // Buffers live past the final op (the plan
                        // output) have no free slot and stay resident.
                        slot.push(i);
                    }
                }
                for t in 0..nts {
                    for &i in &defs_at[t] {
                        let (base, from_free) = space.alloc_traced(self.bufs[i].elems * 4);
                        addrs[i] = Some(base);
                        reused[i] = from_free;
                    }
                    for &i in &frees_at[t] {
                        if let Some(base) = addrs[i] {
                            space.release(base, self.bufs[i].elems * 4);
                        }
                    }
                }
            }
        }

        let addr_of =
            |b: BufId| addrs[b.0].unwrap_or_else(|| panic!("op references unscheduled buffer {b}"));
        let launches: Vec<Launch> = self.ops.iter().map(|op| op.to_launch(&addr_of)).collect();
        Schedule {
            launches,
            addrs,
            reused,
            live,
            peak_device_bytes: space.peak_bytes(),
            arena_bytes: space.allocated(),
        }
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("ops", &self.ops.len())
            .field("bufs", &self.bufs.len())
            .field("output", &self.output)
            .finish()
    }
}

/// Base address of the wrapper scratch region (disjoint from the device
/// heap so framework wrapper buffers never alias pipeline buffers).
pub const WRAPPER_BASE: u64 = 0xF_0000_0000;

/// A scheduled plan: the concrete launch stream plus the address map and
/// memory accounting.
pub struct Schedule {
    /// Kernel launches in execution order (one per plan op).
    pub launches: Vec<Launch>,
    /// Per-buffer assigned base address (`None` = dead / unreferenced).
    pub addrs: Vec<Option<u64>>,
    /// Per-buffer flag: the address range was reused from a freed block.
    pub reused: Vec<bool>,
    /// Per-buffer `(def, last)` liveness (see [`Plan::liveness`]).
    pub live: Vec<Option<(isize, isize)>>,
    /// Peak simultaneously-live device bytes (the high-water mark the
    /// memory planner achieved; at O0 this equals the full arena).
    pub peak_device_bytes: u64,
    /// Total device arena extent in bytes.
    pub arena_bytes: u64,
}

/// Reusable arenas for [`Plan::schedule_in`]: the allocator (whose
/// free-list storage survives resets) and the liveness bucket vectors.
///
/// One scratch serves any number of sequential schedules; each call
/// resets the state, so results are byte-identical to a fresh
/// [`Plan::schedule`]. Serve workers hold one per thread inside
/// [`crate::pipeline::WorkerScratch`] so steady-state requests stop
/// paying per-build allocator churn.
#[derive(Debug, Default)]
pub struct ScheduleScratch {
    space: AddressSpace,
    buckets: BucketPair,
}

/// The `defs_at` / `frees_at` timestep buckets of the O2 memory planner,
/// kept around so their inner `Vec` capacity is recycled across runs.
#[derive(Debug, Default)]
struct BucketPair {
    defs: Vec<Vec<usize>>,
    frees: Vec<Vec<usize>>,
}

impl BucketPair {
    /// Hands out cleared bucket slices of length `nts`, growing the
    /// backing storage only when a plan is larger than any seen before.
    fn take(&mut self, nts: usize) -> (&mut [Vec<usize>], &mut [Vec<usize>]) {
        for v in self.defs.iter_mut().chain(self.frees.iter_mut()) {
            v.clear();
        }
        if self.defs.len() < nts {
            self.defs.resize_with(nts, Vec::new);
        }
        if self.frees.len() < nts {
            self.frees.resize_with(nts, Vec::new);
        }
        (&mut self.defs[..nts], &mut self.frees[..nts])
    }
}

/// A deterministic 64-bit FNV-1a content hasher used for upload identity
/// and CSE value numbering.
#[derive(Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    pub(crate) fn str(&mut self, s: &str) -> &mut Self {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0xff);
        self
    }

    pub(crate) fn u32s(&mut self, vs: &[u32]) -> &mut Self {
        self.u64(vs.len() as u64);
        for v in vs {
            for b in v.to_le_bytes() {
                self.byte(b);
            }
        }
        self
    }

    pub(crate) fn f32s(&mut self, vs: &[f32]) -> &mut Self {
        self.u64(vs.len() as u64);
        for v in vs {
            for b in v.to_bits().to_le_bytes() {
                self.byte(b);
            }
        }
        self
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes a tagged u64 pair — the "derive a sub-identity" helper.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut h = Fnv::new();
    h.u64(seed).u64(salt);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_level_parses() {
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::O0));
        assert_eq!(OptLevel::parse("O2"), Some(OptLevel::O2));
        assert_eq!(OptLevel::parse("o0"), Some(OptLevel::O0));
        assert_eq!(OptLevel::parse("1"), None);
        assert_eq!(OptLevel::default(), OptLevel::O0);
        assert_eq!(OptLevel::O2.to_string(), "O2");
    }

    #[test]
    fn o0_schedule_bump_allocates_in_creation_order() {
        let mut p = Plan::new();
        let a = p.add_buf("a", 64, BufClass::Dense, AddrClass::Device, None);
        let b = p.add_buf("b", 1, BufClass::Dense, AddrClass::Device, None);
        p.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Copy,
                elems: 64,
                feat: 1,
                a,
                b: None,
                s: None,
                out: b,
            },
        );
        let s = p.schedule(OptLevel::O0);
        assert_eq!(s.addrs[a.0], Some(0x7000_0000));
        assert_eq!(s.addrs[b.0], Some(0x7000_0100));
        assert_eq!(s.launches.len(), 1);
        assert_eq!(s.peak_device_bytes, 512);
    }

    #[test]
    fn o2_schedule_reuses_dead_ranges() {
        // a -> t1 -> t2 -> out: t1 dies after op 1, so t2's range can
        // reuse it.
        let mut p = Plan::new();
        let a = p.add_buf("a", 64, BufClass::Dense, AddrClass::Device, None);
        let t1 = p.add_buf("t1", 64, BufClass::Dense, AddrClass::Device, None);
        let t2 = p.add_buf("t2", 64, BufClass::Dense, AddrClass::Device, None);
        let out = p.add_buf("out", 64, BufClass::Dense, AddrClass::Device, None);
        let copy = |a, out| OpSpec::Elementwise {
            op: EwOp::Copy,
            elems: 64,
            feat: 1,
            a,
            b: None,
            s: None,
            out,
        };
        p.push(KernelKind::Elementwise, copy(a, t1));
        p.push(KernelKind::Elementwise, copy(t1, t2));
        p.push(KernelKind::Elementwise, copy(t2, out));
        p.output = Some(out);
        let o0 = p.schedule(OptLevel::O0);
        let o2 = p.schedule(OptLevel::O2);
        assert_eq!(o0.peak_device_bytes, 4 * 256);
        assert!(o2.peak_device_bytes < o0.peak_device_bytes);
        assert!(o2.reused.iter().any(|&r| r), "some range was reused");
        // Output buffer stays live to the end.
        assert_eq!(o2.live[out.0], Some((2, 3)));
        assert_eq!(o2.live[a.0], Some((-1, 0)));
    }

    #[test]
    fn wrapper_buffers_use_the_legacy_stride() {
        let mut p = Plan::new();
        let src = p.add_buf("w.src", 100, BufClass::Dense, AddrClass::Wrapper, None);
        let dst = p.add_buf("w.dst", 100, BufClass::Dense, AddrClass::Wrapper, None);
        p.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Copy,
                elems: 100,
                feat: 1,
                a: src,
                b: None,
                s: None,
                out: dst,
            },
        );
        let s = p.schedule(OptLevel::O0);
        assert_eq!(s.addrs[src.0], Some(WRAPPER_BASE));
        assert_eq!(s.addrs[dst.0], Some(WRAPPER_BASE + 100 * 4 + 256));
        assert_eq!(s.peak_device_bytes, 0, "wrapper region is not device heap");
    }

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        let mut a = Fnv::new();
        a.str("tag").u32s(&[1, 2, 3]);
        let mut b = Fnv::new();
        b.str("tag").u32s(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.str("tag").u32s(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
        assert_ne!(mix(1, 2), mix(2, 1));
    }
}
