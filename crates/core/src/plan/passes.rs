//! The plan optimization passes ([`Pass`]): elementwise fusion,
//! hoist/CSE of layer-invariant subgraphs, and dead-buffer elimination.
//!
//! Passes run only at [`OptLevel::O2`] ([`pass_pipeline`]); O0 is the
//! golden-compatibility mode and leaves the lowered plan untouched. All
//! passes preserve the plan's functional semantics exactly: ops are
//! fused or deduplicated, never renumerated, so the O2 launch stream
//! computes the same mathematics as O0 (a property the equivalence suite
//! locks in).

use std::collections::HashMap;
use std::sync::Arc;

use crate::kernels::{EwOp, SgemmKernel};

use super::{mix, AddrClass, BufId, Fnv, OpSpec, OptLevel, Plan};

/// One plan-to-plan transformation of the optimization pipeline.
///
/// A pass mutates the plan in place and appends a human-readable record
/// of every decision it takes to [`Plan::decisions`] — the log the
/// `gsuite-cli explain` report prints.
pub trait Pass {
    /// Short pass name (used as the decision-log prefix).
    fn name(&self) -> &'static str;

    /// Applies the pass.
    fn run(&self, plan: &mut Plan);
}

/// The pass pipeline for an optimization level: empty at O0 (golden
/// compatibility), fusion → hoist/CSE → dead-buffer elimination at O2.
pub fn pass_pipeline(level: OptLevel) -> Vec<Box<dyn Pass>> {
    match level {
        OptLevel::O0 => Vec::new(),
        OptLevel::O2 => vec![
            Box::new(FuseElementwise),
            Box::new(HoistCse),
            Box::new(DeadBufferElim),
        ],
    }
}

/// Folds elementwise activations into the kernel that produces their
/// input. The producing kernel must support the fusion natively — today
/// that is `sgemm`'s fused-ReLU store (split-K sgemms accumulate with
/// atomics and cannot apply an activation at the store, so they are
/// skipped) — and the intermediate must have no other reader.
pub struct FuseElementwise;

impl Pass for FuseElementwise {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn run(&self, plan: &mut Plan) {
        // Reader counts and unique-writer map over the current ops.
        let mut readers = vec![0usize; plan.bufs.len()];
        let mut writer: Vec<Option<usize>> = vec![None; plan.bufs.len()];
        for (i, op) in plan.ops.iter().enumerate() {
            for b in op.reads() {
                readers[b.0] += 1;
            }
            for b in op.writes() {
                writer[b.0] = match writer[b.0] {
                    None => Some(i),
                    // Multiple writers (repeated degree scatters): the
                    // buffer's producer is ambiguous here — never fuse.
                    Some(_) => Some(usize::MAX),
                };
            }
        }

        let mut removed = vec![false; plan.ops.len()];
        for i in 0..plan.ops.len() {
            let OpSpec::Elementwise {
                op: EwOp::Relu,
                a,
                out,
                ..
            } = plan.ops[i].spec
            else {
                continue;
            };
            if plan.output == Some(a) || readers[a.0] != 1 {
                continue;
            }
            let Some(j) = writer[a.0].filter(|&j| j != usize::MAX && j < i) else {
                continue;
            };
            if removed[j] {
                continue;
            }
            let producer_label = plan.ops[j].label();
            let OpSpec::Sgemm {
                m, k, n, relu, c, ..
            } = &mut plan.ops[j].spec
            else {
                continue;
            };
            if *relu || *c != a || SgemmKernel::new(*m, *k, *n, 0, 0, 0).is_split_k() {
                continue;
            }
            *relu = true;
            *c = out;
            removed[i] = true;
            // Decisions name ops by label, not index: op indices shift
            // when removed ops are retained out, so a numeric
            // cross-reference would go stale in the explain report.
            plan.decisions.push(format!(
                "fuse: relu folded into {producer_label} (intermediate {} left dead)",
                plan.bufs[a.0].name
            ));
        }
        let mut keep = removed.iter().map(|r| !r);
        plan.ops.retain(|_| keep.next().unwrap());
    }
}

/// Hoists layer-invariant subgraphs by value-numbering CSE:
///
/// 1. **upload dedup** — two host-uploaded buffers with the same semantic
///    content identity (e.g. the `Â^T + I` structure re-uploaded every
///    GCN-SpMM layer) collapse to the first upload;
/// 2. **op CSE** — an op whose kind, parameters and input *values* match
///    an earlier op is dropped, and its outputs are remapped to the
///    earlier op's outputs (the GCN-SpMM `D^-1/2·Â^T·D^-1/2` SpGEMM
///    chain is rebuilt every layer and hoists to one instance; repeated
///    per-layer degree scatters deduplicate the same way).
pub struct HoistCse;

impl Pass for HoistCse {
    fn name(&self) -> &'static str {
        "hoist"
    }

    fn run(&self, plan: &mut Plan) {
        let nbufs = plan.bufs.len();
        let mut remap: Vec<BufId> = (0..nbufs).map(BufId).collect();
        fn resolve(remap: &[BufId], mut b: BufId) -> BufId {
            while remap[b.0] != b {
                b = remap[b.0];
            }
            b
        }

        // Phase 1: upload dedup by (content identity, size, class).
        let mut seen_uploads: HashMap<(u64, u64, u8), BufId> = HashMap::new();
        let mut hoisted_uploads = 0usize;
        let mut hoisted_bytes = 0u64;
        for (i, buf) in plan.bufs.iter().enumerate() {
            let Some(content) = buf.content else {
                continue;
            };
            if buf.space != AddrClass::Device {
                continue;
            }
            let key = (content, buf.elems, buf.class.label().as_bytes()[0]);
            match seen_uploads.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(BufId(i));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let canonical = *e.get();
                    debug_assert_eq!(
                        plan.bufs[canonical.0].check, buf.check,
                        "content-identity collision: uploads '{}' and '{}' share an \
                         identity but carry different payloads (tag is not specific enough)",
                        plan.bufs[canonical.0].name, buf.name
                    );
                    remap[i] = canonical;
                    hoisted_uploads += 1;
                    hoisted_bytes += buf.bytes();
                }
            }
        }
        if hoisted_uploads > 0 {
            plan.decisions.push(format!(
                "hoist: {hoisted_uploads} re-uploaded buffer(s) ({hoisted_bytes} bytes) \
                 collapsed to their first upload"
            ));
        }

        // Phase 2: value-numbering CSE over ops, applying the remap as we
        // walk so later keys see canonical inputs.
        let mut arc_memo: HashMap<usize, u64> = HashMap::new();
        let mut value: Vec<u64> = plan
            .bufs
            .iter()
            .enumerate()
            .map(|(i, b)| match b.content {
                Some(c) => c,
                None => mix(0x0fa9_ce0a, i as u64),
            })
            .collect();
        // Map: op key -> the defining op's output buffers.
        let mut seen_ops: HashMap<u64, Vec<BufId>> = HashMap::new();
        let mut removed = vec![false; plan.ops.len()];
        let mut decisions: Vec<String> = Vec::new();
        for (i, op) in plan.ops.iter_mut().enumerate() {
            op.remap(&|b| resolve(&remap, b));
            let key = op_key(op, &value, &mut arc_memo);
            match seen_ops.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    let outs = op.writes();
                    for (slot, o) in outs.iter().enumerate() {
                        value[o.0] = mix(key, slot as u64 + 1);
                    }
                    e.insert(outs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    // Reuse is sound only while the earlier instance's
                    // outputs still hold its values: an intervening
                    // *different* write to a shared output buffer (not
                    // lowered by any current model, but possible through
                    // this substrate) resets the buffer's value number,
                    // and this check catches it — the op then counts as
                    // a fresh definition instead of being dropped.
                    let clobbered = e
                        .get()
                        .iter()
                        .enumerate()
                        .any(|(slot, o)| value[o.0] != mix(key, slot as u64 + 1));
                    if clobbered {
                        let outs = op.writes();
                        for (slot, o) in outs.iter().enumerate() {
                            value[o.0] = mix(key, slot as u64 + 1);
                        }
                        *e.get_mut() = outs;
                        continue;
                    }
                    for (o, n) in op.writes().iter().zip(e.get()) {
                        if o != n {
                            remap[o.0] = *n;
                        }
                    }
                    removed[i] = true;
                    decisions.push(format!(
                        "hoist: repeated {} is layer-invariant — reusing the first \
                         instance's result",
                        op.label()
                    ));
                }
            }
        }
        plan.decisions.append(&mut decisions);
        if let Some(out) = plan.output {
            plan.output = Some(resolve(&remap, out));
        }
        let mut keep = removed.iter().map(|r| !r);
        plan.ops.retain(|_| keep.next().unwrap());
    }
}

/// Content hash of an index/structure array, memoized by `Arc` pointer
/// (plans share structure arrays heavily).
fn arc_hash(memo: &mut HashMap<usize, u64>, arc: &Arc<Vec<u32>>) -> u64 {
    let ptr = Arc::as_ptr(arc) as usize;
    *memo.entry(ptr).or_insert_with(|| {
        let mut h = Fnv::new();
        h.u32s(arc);
        h.finish()
    })
}

/// The CSE key of an op: kind, shape/structure parameters, and the value
/// numbers of every input buffer — everything that determines the op's
/// result, and nothing address-dependent.
fn op_key(op: &super::PlanOp, value: &[u64], memo: &mut HashMap<usize, u64>) -> u64 {
    let mut h = Fnv::new();
    h.str(op.kind.name());
    match &op.spec {
        OpSpec::Sgemm {
            m,
            k,
            n,
            relu,
            a,
            b,
            ..
        } => {
            h.str("sg")
                .u64(*m as u64)
                .u64(*k as u64)
                .u64(*n as u64)
                .u64(*relu as u64)
                .u64(value[a.0])
                .u64(value[b.0]);
        }
        OpSpec::IndexSelect {
            index,
            feat,
            index_buf,
            src,
            scale,
            ..
        } => {
            h.str("is")
                .u64(*feat as u64)
                .u64(arc_hash(memo, index))
                .u64(value[index_buf.0])
                .u64(value[src.0]);
            if let Some(s) = scale {
                h.str("gcn").u64(arc_hash(memo, &s.dst)).u64(value[s.deg.0]);
            }
        }
        OpSpec::Scatter {
            index,
            feat,
            index_buf,
            input,
            out_rows,
            reduce,
            ..
        } => {
            h.str("sc")
                .u64(*feat as u64)
                .u64(*out_rows as u64)
                .str(reduce.name())
                .u64(arc_hash(memo, index))
                .u64(value[index_buf.0]);
            match input {
                Some(i) => h.u64(value[i.0]),
                None => h.str("deg"),
            };
        }
        OpSpec::Spmm {
            row_ptr,
            col_idx,
            has_values,
            rp,
            ci,
            val,
            x,
            feat,
            ..
        } => {
            h.str("sp")
                .u64(*feat as u64)
                .u64(*has_values as u64)
                .u64(arc_hash(memo, row_ptr))
                .u64(arc_hash(memo, col_idx))
                .u64(value[rp.0])
                .u64(value[ci.0])
                .u64(value[val.0])
                .u64(value[x.0]);
        }
        OpSpec::Spgemm {
            a_row_ptr,
            a_col_idx,
            b_row_ptr,
            out_row_ptr,
            a,
            b,
            ..
        } => {
            h.str("spg")
                .u64(arc_hash(memo, a_row_ptr))
                .u64(arc_hash(memo, a_col_idx))
                .u64(arc_hash(memo, b_row_ptr))
                .u64(arc_hash(memo, out_row_ptr))
                .u64(value[a.0 .0])
                .u64(value[a.1 .0])
                .u64(value[a.2 .0])
                .u64(value[b.0 .0])
                .u64(value[b.1 .0])
                .u64(value[b.2 .0]);
        }
        OpSpec::Elementwise {
            op: ew,
            elems,
            feat,
            a,
            b,
            s,
            ..
        } => {
            h.str("ew")
                .str(ew.label())
                .u64(*elems)
                .u64(*feat as u64)
                .u64(value[a.0]);
            if let Some(b) = b {
                h.u64(value[b.0]);
            }
            if let Some(s) = s {
                h.u64(value[s.0]);
            }
        }
        OpSpec::Exchange {
            peer,
            layer,
            rows,
            feat,
            ..
        } => {
            // A transfer delivers fresh remote data every layer: the
            // (layer, peer) coordinates are part of its identity, so two
            // exchanges never CSE even when their shapes coincide.
            h.str("xch")
                .u64(*peer as u64)
                .u64(*layer as u64)
                .u64(*rows)
                .u64(*feat as u64);
        }
    }
    h.finish()
}

/// Marks buffers no remaining op (and not the plan output) references as
/// dead, so the scheduler never allocates them — the re-uploaded
/// structures and fused-away intermediates the earlier passes orphaned.
pub struct DeadBufferElim;

impl Pass for DeadBufferElim {
    fn name(&self) -> &'static str {
        "dbe"
    }

    fn run(&self, plan: &mut Plan) {
        let mut referenced = vec![false; plan.bufs.len()];
        for op in &plan.ops {
            for b in op.reads().into_iter().chain(op.writes()) {
                referenced[b.0] = true;
            }
        }
        if let Some(out) = plan.output {
            referenced[out.0] = true;
        }
        let mut count = 0usize;
        let mut bytes = 0u64;
        for (i, buf) in plan.bufs.iter_mut().enumerate() {
            if !referenced[i] && !buf.dead {
                buf.dead = true;
                count += 1;
                bytes += buf.bytes();
            }
        }
        if count > 0 {
            plan.decisions.push(format!(
                "dbe: dropped {count} dead buffer(s) ({bytes} bytes)"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelKind;
    use crate::plan::BufClass;

    fn dense_buf(p: &mut Plan, name: &str, elems: u64) -> BufId {
        p.add_buf(name, elems, BufClass::Dense, AddrClass::Device, None)
    }

    #[test]
    fn relu_fuses_into_small_sgemm_only() {
        let mut p = Plan::new();
        let x = dense_buf(&mut p, "x", 64);
        let w = dense_buf(&mut p, "w", 32);
        let h = dense_buf(&mut p, "h", 32);
        let r = dense_buf(&mut p, "r", 32);
        p.push(
            KernelKind::Sgemm,
            OpSpec::Sgemm {
                m: 8,
                k: 8,
                n: 4,
                relu: false,
                a: x,
                b: w,
                c: h,
            },
        );
        p.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Relu,
                elems: 32,
                feat: 1,
                a: h,
                b: None,
                s: None,
                out: r,
            },
        );
        p.output = Some(r);
        FuseElementwise.run(&mut p);
        assert_eq!(p.ops.len(), 1);
        let OpSpec::Sgemm { relu, c, .. } = p.ops[0].spec else {
            panic!("sgemm survives");
        };
        assert!(relu);
        assert_eq!(c, r, "sgemm now writes the relu's output");
        assert_eq!(p.decisions.len(), 1);
    }

    #[test]
    fn split_k_sgemm_keeps_its_separate_relu() {
        let mut p = Plan::new();
        let x = dense_buf(&mut p, "x", 8 * 2048);
        let w = dense_buf(&mut p, "w", 2048 * 4);
        let h = dense_buf(&mut p, "h", 32);
        let r = dense_buf(&mut p, "r", 32);
        p.push(
            KernelKind::Sgemm,
            OpSpec::Sgemm {
                m: 8,
                k: 2048,
                n: 4,
                relu: true, // the builder's split-K emission keeps relu set
                a: x,
                b: w,
                c: h,
            },
        );
        p.push(
            KernelKind::Elementwise,
            OpSpec::Elementwise {
                op: EwOp::Relu,
                elems: 32,
                feat: 1,
                a: h,
                b: None,
                s: None,
                out: r,
            },
        );
        p.output = Some(r);
        FuseElementwise.run(&mut p);
        assert_eq!(p.ops.len(), 2, "split-K relu must stay separate");
    }

    #[test]
    fn cse_drops_repeated_identical_ops_and_dbe_kills_orphans() {
        let mut p = Plan::new();
        let idx = std::sync::Arc::new(vec![0u32, 1, 1]);
        let e1 = p.add_buf("edges", 3, BufClass::Index, AddrClass::Device, Some(77));
        let e2 = p.add_buf("edges'", 3, BufClass::Index, AddrClass::Device, Some(77));
        let deg = dense_buf(&mut p, "deg", 2);
        let scatter = |index_buf, out| OpSpec::Scatter {
            index: idx.clone(),
            feat: 1,
            index_buf,
            input: None,
            out,
            out_rows: 2,
            reduce: gsuite_tensor::ops::Reduce::Sum,
        };
        p.push(KernelKind::Scatter, scatter(e1, deg));
        p.push(KernelKind::Scatter, scatter(e2, deg)); // re-upload + repeat
        p.output = Some(deg);
        HoistCse.run(&mut p);
        assert_eq!(p.ops.len(), 1, "repeated degree scatter deduplicated");
        DeadBufferElim.run(&mut p);
        assert!(p.bufs[e2.0].dead, "duplicate upload is dead");
        assert!(!p.bufs[e1.0].dead);
        assert!(p.decisions.iter().any(|d| d.starts_with("hoist:")));
        assert!(p.decisions.iter().any(|d| d.starts_with("dbe:")));
    }

    #[test]
    fn cse_refuses_to_reuse_a_clobbered_shared_buffer() {
        // S1 (key A) writes deg; S2 (key B) overwrites deg; S3 repeats
        // S1's key — but deg no longer holds S1's value, so S3 must stay.
        let mut p = Plan::new();
        let idx_a = std::sync::Arc::new(vec![0u32, 1]);
        let idx_b = std::sync::Arc::new(vec![1u32, 1]);
        let ea = p.add_buf("ea", 2, BufClass::Index, AddrClass::Device, Some(1));
        let eb = p.add_buf("eb", 2, BufClass::Index, AddrClass::Device, Some(2));
        let deg = dense_buf(&mut p, "deg", 2);
        let scatter = |index: &std::sync::Arc<Vec<u32>>, index_buf| OpSpec::Scatter {
            index: index.clone(),
            feat: 1,
            index_buf,
            input: None,
            out: deg,
            out_rows: 2,
            reduce: gsuite_tensor::ops::Reduce::Sum,
        };
        p.push(KernelKind::Scatter, scatter(&idx_a, ea));
        p.push(KernelKind::Scatter, scatter(&idx_b, eb));
        p.push(KernelKind::Scatter, scatter(&idx_a, ea));
        p.output = Some(deg);
        HoistCse.run(&mut p);
        assert_eq!(
            p.ops.len(),
            3,
            "a repeat whose shared output was overwritten in between must not be dropped"
        );
        // Sanity: without the intervening different write, the repeat IS dropped.
        let mut q = Plan::new();
        let ea2 = q.add_buf("ea", 2, BufClass::Index, AddrClass::Device, Some(1));
        let deg2 = dense_buf(&mut q, "deg", 2);
        let scatter2 = || OpSpec::Scatter {
            index: idx_a.clone(),
            feat: 1,
            index_buf: ea2,
            input: None,
            out: deg2,
            out_rows: 2,
            reduce: gsuite_tensor::ops::Reduce::Sum,
        };
        q.push(KernelKind::Scatter, scatter2());
        q.push(KernelKind::Scatter, scatter2());
        q.output = Some(deg2);
        HoistCse.run(&mut q);
        assert_eq!(q.ops.len(), 1);
    }

    #[test]
    fn pipeline_is_empty_at_o0() {
        assert!(pass_pipeline(OptLevel::O0).is_empty());
        assert_eq!(pass_pipeline(OptLevel::O2).len(), 3);
    }
}
