//! Compile-once / instantiate-many **plan templates** — the serve fast
//! path between "request decoded" and "first launch priced".
//!
//! Lowering, optimization and decoration are pure functions of the
//! compile-relevant subset of [`RunConfig`] plus the graph: for a
//! repeat-shape request the resulting pre-schedule [`Plan`] is
//! byte-identical to the one compiled last time. A [`TemplateCache`]
//! memoizes that plan (and the functional output, which is computed
//! host-side during lowering) keyed by [`TemplateKey`], so repeat
//! requests skip lower/optimize/decorate entirely and run only
//! [`Template::instantiate`]: a shallow plan clone — upload buffers keep
//! their content tags, weights stay CSE-shared, and the `Arc`-held index
//! structures rebind by reference-count bump rather than copy — followed
//! by a fresh address assignment ([`Plan::schedule_in`]).
//!
//! Because scheduling is itself a pure function of the plan and the
//! opt level, an instantiated pipeline is **bit-identical** to a full
//! compile: same ops, addresses, launches, functional output and peak
//! bytes (`tests/plan_template.rs` locks this across every model ×
//! format × opt level).
//!
//! Sharded configs (`gpus_per_run > 1`) bypass the cache — their
//! per-shard plans live inside [`crate::plan::shard::ShardedExec`] and
//! profile-only semantics make the full build cheap relative to the
//! partitioning itself. [`TemplateKey::of`] returns `None` for them.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gsuite_graph::Graph;
use gsuite_tensor::DenseMatrix;

use crate::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use crate::plan::{OptLevel, Plan};

/// The compile-relevant identity of one build: every [`RunConfig`] field
/// the lower → optimize → decorate pipeline consumes, plus a cheap graph
/// fingerprint. Fields that only affect profiling (the GPU axis) or that
/// are ignored single-device (`partitioner`) are deliberately excluded,
/// so requests differing only in those share one template.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    model: GnnModel,
    comp: CompModel,
    dataset: gsuite_graph::datasets::Dataset,
    /// `RunConfig::scale` as raw bits (f64 is not `Eq`).
    scale_bits: u64,
    layers: usize,
    hidden: usize,
    framework: FrameworkKind,
    seed: u64,
    functional_math: bool,
    opt: OptLevel,
    batch_size: usize,
    fanout: Vec<usize>,
    seed_node: Option<u32>,
    /// Graph identity guard: node count of the graph actually passed in.
    nodes: usize,
    /// Graph identity guard: edge count of the graph actually passed in.
    edges: usize,
    /// Cross-request merged ego-net batches ([`TemplateKey::of_merged`]):
    /// the member seed nodes in batch order. Always empty for solo
    /// builds, so merged keys can never collide with per-request ones.
    merged_seeds: Vec<u32>,
}

impl TemplateKey {
    /// The template key of `config` over `graph`, or `None` when the
    /// combination is not templatable (sharded multi-GPU builds).
    pub fn of(graph: &Graph, config: &RunConfig) -> Option<TemplateKey> {
        if config.gpus_per_run > 1 {
            return None;
        }
        Some(TemplateKey {
            model: config.model,
            comp: config.comp,
            dataset: config.dataset,
            scale_bits: config.scale.to_bits(),
            layers: config.layers,
            hidden: config.hidden,
            framework: config.framework,
            seed: config.seed,
            functional_math: config.functional_math,
            opt: config.opt,
            batch_size: config.batch_size,
            fanout: config.fanout.clone(),
            seed_node: config.seed_node,
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            merged_seeds: Vec::new(),
        })
    }

    /// The template key of one cross-request merged ego-net batch (see
    /// [`crate::plan::batchmerge`]): the members' shared compile shape
    /// with the seed nodes folded into [`TemplateKey::merged_seeds`] in
    /// batch order. `None` when the members are not a homogeneous
    /// sampled merge — full-graph merges may mix models, so their
    /// combined plans are not worth a template slot.
    pub fn of_merged(graph: &Graph, configs: &[RunConfig]) -> Option<TemplateKey> {
        let first = configs.first()?;
        first.seed_node?;
        let stripped = |config: &RunConfig| {
            TemplateKey::of(
                graph,
                &RunConfig {
                    seed_node: None,
                    ..config.clone()
                },
            )
        };
        let mut key = stripped(first)?;
        let mut seeds = Vec::with_capacity(configs.len());
        for config in configs {
            if config.seed_node.is_none() || stripped(config)? != key {
                return None;
            }
            seeds.push(config.seed_node.expect("checked above"));
        }
        key.merged_seeds = seeds;
        Some(key)
    }
}

/// One cached compile: the post-decorate, pre-schedule plan and the
/// functional output that lowering computed alongside it.
#[derive(Debug)]
pub struct Template {
    pub(crate) plan: Plan,
    pub(crate) output: DenseMatrix,
    /// Merged-batch member metadata (`(nodes, edges)` per member, batch
    /// order; empty for solo templates): the attribution weights a
    /// template-served merged build scatters cost by, preserved so
    /// instantiation never has to re-sample the members.
    pub(crate) parts: Vec<(usize, usize)>,
}

impl Template {
    /// Captures a template from a finished single-device build.
    pub(crate) fn capture(plan: &Plan, output: &DenseMatrix) -> Template {
        Template {
            plan: plan.clone(),
            output: output.clone(),
            parts: Vec::new(),
        }
    }

    /// Captures a template from a finished merged-batch build, keeping
    /// each member's `(nodes, edges)` attribution metadata.
    pub(crate) fn capture_merged(
        plan: &Plan,
        output: &DenseMatrix,
        parts: Vec<(usize, usize)>,
    ) -> Template {
        Template {
            plan: plan.clone(),
            output: output.clone(),
            parts,
        }
    }

    /// The merged-batch member metadata (empty for solo templates).
    pub(crate) fn merged_parts(&self) -> &[(usize, usize)] {
        &self.parts
    }

    /// Rebinds the template into a fresh `(plan, output)` pair ready for
    /// scheduling. The clone is shallow where it matters: index
    /// structures and sparse patterns are `Arc`-shared with the
    /// template, upload buffers keep their content tags (weights stay
    /// CSE-merged exactly as the optimizer left them), and the output
    /// matrix is copied as-is.
    pub fn instantiate(&self) -> (Plan, DenseMatrix) {
        (self.plan.clone(), self.output.clone())
    }

    /// Launches the cached plan schedules to.
    pub fn launch_count(&self) -> usize {
        self.plan.launch_count()
    }
}

/// Monotone counters of one [`TemplateCache`], snapshot by
/// [`TemplateCache::stats`]. Serve surfaces these as the `tpl_hits` /
/// `tpl_misses` / `tpl_instantiates` stats keys and the matching
/// Prometheus gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateStats {
    /// Lookups that found a template.
    pub hits: u64,
    /// Lookups that missed (templatable key, nothing cached yet).
    pub misses: u64,
    /// Builds served by [`Template::instantiate`] instead of a full
    /// compile.
    pub instantiates: u64,
    /// Templates currently cached.
    pub entries: usize,
}

/// A bounded, thread-safe map of [`TemplateKey`] → [`Template`].
///
/// Shared by every worker of a serving process (and by the scenario
/// runner's memoized build phase); lookups and inserts take one short
/// mutex hold, and the heavyweight work — full compiles on miss,
/// schedule on hit — happens outside the lock. Capacity is bounded with
/// FIFO eviction: templates are small (plans share their index
/// structures with the graph via `Arc`), so recency tracking is not
/// worth the extra bookkeeping.
#[derive(Debug)]
pub struct TemplateCache {
    inner: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    instantiates: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheMap {
    map: HashMap<TemplateKey, Arc<Template>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<TemplateKey>,
    cap: usize,
}

/// Default [`TemplateCache`] capacity (distinct compile shapes).
pub const DEFAULT_TEMPLATE_CAP: usize = 256;

impl Default for TemplateCache {
    fn default() -> Self {
        TemplateCache::new()
    }
}

impl TemplateCache {
    /// A cache holding up to [`DEFAULT_TEMPLATE_CAP`] templates.
    pub fn new() -> TemplateCache {
        TemplateCache::with_capacity(DEFAULT_TEMPLATE_CAP)
    }

    /// A cache holding up to `cap` templates (`0` disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn with_capacity(cap: usize) -> TemplateCache {
        TemplateCache {
            inner: Mutex::new(CacheMap {
                cap,
                ..CacheMap::default()
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            instantiates: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &TemplateKey) -> Option<Arc<Template>> {
        let inner = self.inner.lock().expect("template cache lock");
        let found = inner.map.get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Caches `template` under `key` (first writer wins; FIFO-evicts the
    /// oldest entry when full).
    pub fn insert(&self, key: TemplateKey, template: Template) {
        let mut inner = self.inner.lock().expect("template cache lock");
        if inner.cap == 0 || inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= inner.cap {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&oldest);
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, Arc::new(template));
    }

    /// Records one instantiate-served build (the hit actually being
    /// used, as opposed to a lookup).
    pub fn note_instantiated(&self) {
        self.instantiates.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TemplateStats {
        let entries = self.inner.lock().expect("template cache lock").map.len();
        TemplateStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            instantiates: self.instantiates.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Templates currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("template cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> TemplateKey {
        let config = RunConfig {
            seed,
            scale: 0.02,
            hidden: 8,
            ..RunConfig::default()
        };
        let graph = config.load_graph();
        TemplateKey::of(&graph, &config).expect("single-device key")
    }

    fn empty_template() -> Template {
        Template {
            plan: Plan::new(),
            output: DenseMatrix::zeros(1, 1),
            parts: Vec::new(),
        }
    }

    #[test]
    fn sharded_configs_are_not_templatable() {
        let config = RunConfig {
            gpus_per_run: 2,
            scale: 0.02,
            ..RunConfig::default()
        };
        let graph = config.load_graph();
        assert_eq!(TemplateKey::of(&graph, &config), None);
    }

    #[test]
    fn profiling_only_fields_do_not_split_keys() {
        let config = RunConfig {
            scale: 0.02,
            hidden: 8,
            ..RunConfig::default()
        };
        let graph = config.load_graph();
        let base = TemplateKey::of(&graph, &config).unwrap();
        let partitioner_differs = RunConfig {
            partitioner: gsuite_graph::PartitionStrategy::EdgeCut,
            ..config.clone()
        };
        assert_eq!(
            base,
            TemplateKey::of(&graph, &partitioner_differs).unwrap(),
            "partitioner is ignored single-device"
        );
        let compile_differs = RunConfig {
            opt: OptLevel::O2,
            ..config
        };
        assert_ne!(base, TemplateKey::of(&graph, &compile_differs).unwrap());
    }

    #[test]
    fn merged_keys_fold_seed_nodes_and_never_collide() {
        let config = |v| RunConfig {
            scale: 0.02,
            hidden: 8,
            seed_node: Some(v),
            fanout: vec![3, 3],
            ..RunConfig::default()
        };
        let graph = config(0).load_graph();
        let configs = vec![config(1), config(3)];
        let k = TemplateKey::of_merged(&graph, &configs).expect("homogeneous merge");
        assert_eq!(k, TemplateKey::of_merged(&graph, &configs).unwrap());
        // Member order is part of the shape.
        let swapped = vec![config(3), config(1)];
        assert_ne!(k, TemplateKey::of_merged(&graph, &swapped).unwrap());
        // A merged key can never collide with a solo full-graph key of
        // the same compile shape (merged_seeds is non-empty).
        let solo = RunConfig {
            scale: 0.02,
            hidden: 8,
            fanout: vec![3, 3],
            ..RunConfig::default()
        };
        assert_ne!(k, TemplateKey::of(&graph, &solo).unwrap());
        // Heterogeneous and full-graph member sets are not templatable.
        let mixed = vec![
            config(1),
            RunConfig {
                hidden: 4,
                ..config(3)
            },
        ];
        assert_eq!(TemplateKey::of_merged(&graph, &mixed), None);
        assert_eq!(TemplateKey::of_merged(&graph, &[solo]), None);
        assert_eq!(TemplateKey::of_merged(&graph, &[]), None);
    }

    #[test]
    fn cache_counts_hits_misses_and_instantiates() {
        let cache = TemplateCache::new();
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), empty_template());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        cache.note_instantiated();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.instantiates, s.entries), (1, 2, 1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn capacity_evicts_fifo_and_zero_disables() {
        let cache = TemplateCache::with_capacity(2);
        for seed in 0..3 {
            cache.insert(key(seed), empty_template());
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_none(), "oldest entry evicted");
        assert!(cache.get(&key(2)).is_some());

        let off = TemplateCache::with_capacity(0);
        off.insert(key(0), empty_template());
        assert!(off.is_empty());
    }
}
