//! Cross-request batch merging: K *different* serve requests lowered
//! into **one** combined plan.
//!
//! [`crate::plan::minibatch::lower_batched`] already compiles many
//! sampled batches of a single request into one plan; this module
//! generalizes the same append-to-a-shared-plan idiom across request
//! boundaries. Each member request lowers its own (sub)graph via
//! [`crate::models::Builder::with_plan`], so the combined plan is the
//! block-diagonal composition of the members: every member owns a
//! disjoint, re-indexed node range, and no op reads across a member
//! boundary. Weights are tagged ([`crate::models::Builder::tag_weights`])
//! so the O2 hoist pass's content-identity CSE keeps one copy of each
//! distinct weight matrix across members — identically-configured
//! ego-net requests share every layer's weights.
//!
//! Two request shapes are mergeable, described by [`MergeClass`]:
//!
//! * **Sampled** — single-device ego-net requests (`seed_node = v`).
//!   Members must agree on every compile-relevant field *except* the
//!   seed node. Because [`gsuite_graph::NeighborSampler`] keys every
//!   draw by `(seed, hop, node, neighbor)` — context-free — a member's
//!   sampled subgraph, and therefore its functional output, is
//!   bit-identical whether it is compiled alone or inside a merge
//!   (`tests/batchserve.rs` locks this).
//! * **FullGraph** — single-device full-graph requests over the same
//!   loaded graph (`dataset` + `scale`). Members may differ in model,
//!   computational model, hidden width or seed; they must agree on the
//!   plan-wide knobs (`opt`, `framework`) because optimization and
//!   decoration run once over the combined plan.
//!
//! The functional output stays per-member: lowering computes each
//! member's output host-side over its own (sub)graph, exactly as the
//! solo path does, and [`lower_merged`] returns one [`MergedPart`] per
//! member in request order for the serving layer to scatter back to the
//! waiters.

use gsuite_graph::{Graph, NeighborSampler};
use gsuite_tensor::DenseMatrix;

use crate::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use crate::models::Builder;
use crate::plan::{OptLevel, Plan};
use crate::{models, CoreError, Result};

/// The merge-compatibility class of one request: two requests can share
/// a combined plan iff their classes are equal. Opaque by design — the
/// serving layers only compare and hash it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MergeClass(Class);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Class {
    /// Ego-net requests: every compile-relevant field except the seed
    /// node (the fanout schedule is compared in effective form, so an
    /// explicit `fanout=10,10` merges with the 2-layer default).
    Sampled {
        model: GnnModel,
        comp: CompModel,
        dataset: gsuite_graph::datasets::Dataset,
        scale_bits: u64,
        layers: usize,
        hidden: usize,
        framework: FrameworkKind,
        seed: u64,
        functional_math: bool,
        opt: OptLevel,
        fanout: Vec<usize>,
    },
    /// Full-graph requests: same loaded graph, same plan-wide knobs.
    FullGraph {
        dataset: gsuite_graph::datasets::Dataset,
        scale_bits: u64,
        opt: OptLevel,
        framework: FrameworkKind,
    },
}

/// The merge class of `config`, or `None` when the request cannot join a
/// cross-request batch: sharded multi-GPU builds (their plans live
/// per-shard) and mini-batch sweeps (`batch_size > 0` is already a
/// batched compile of its own).
pub fn merge_class(config: &RunConfig) -> Option<MergeClass> {
    if config.gpus_per_run > 1 || config.batch_size > 0 {
        return None;
    }
    // Statically-unbuildable combinations never merge: one such member
    // would fail the whole merged build, poisoning every other member's
    // response. They dispatch alone and error alone, exactly as before.
    let comp = config.framework.forced_comp().unwrap_or(config.comp);
    let buildable = match (config.model, comp) {
        (GnnModel::Sage, CompModel::Spmm) => config.framework == FrameworkKind::DglLike,
        (GnnModel::Gat | GnnModel::Rgcn, CompModel::Spmm) => false,
        _ => true,
    };
    if !buildable {
        return None;
    }
    Some(MergeClass(match config.seed_node {
        Some(_) => Class::Sampled {
            model: config.model,
            comp: config.comp,
            dataset: config.dataset,
            scale_bits: config.scale.to_bits(),
            layers: config.layers,
            hidden: config.hidden,
            framework: config.framework,
            seed: config.seed,
            functional_math: config.functional_math,
            opt: config.opt,
            fanout: config.effective_fanouts(),
        },
        None => Class::FullGraph {
            dataset: config.dataset,
            scale_bits: config.scale.to_bits(),
            opt: config.opt,
            framework: config.framework,
        },
    }))
}

/// One member's share of a merged build: its functional output (the
/// same matrix the solo build would produce, bit for bit) plus the node
/// and edge counts of the member's own (sub)graph — the attribution
/// weights the serving layer splits batch cost by.
#[derive(Debug, Clone)]
pub struct MergedPart {
    /// The member's functional output (`1 × hidden` for ego-net members,
    /// `n × hidden` full-graph).
    pub output: DenseMatrix,
    /// Nodes in the member's own (sub)graph.
    pub nodes: usize,
    /// Edges in the member's own (sub)graph.
    pub edges: usize,
}

fn mixed_class_error(config: &RunConfig) -> CoreError {
    CoreError::InvalidConfig {
        key: "batch".to_string(),
        value: config.label(),
        expected: "requests of one merge class (see plan::batchmerge::merge_class)".to_string(),
    }
}

/// Lowers `configs` — all of one [`MergeClass`] — over `graph` into one
/// combined block-diagonal plan, returning the plan plus one
/// [`MergedPart`] per member in request order. The caller owns the
/// ordinary optimize → decorate → schedule tail (see
/// [`crate::pipeline::PipelineRun::build_merged`]).
///
/// # Errors
///
/// Rejects an empty member list and members of differing merge classes
/// as [`CoreError::InvalidConfig`]; propagates sampler errors (e.g. an
/// out-of-bounds `seed_node`) and everything model lowering can return.
pub fn lower_merged(graph: &Graph, configs: &[RunConfig]) -> Result<(Plan, Vec<MergedPart>)> {
    let first = configs.first().ok_or_else(|| CoreError::InvalidConfig {
        key: "batch".to_string(),
        value: "[]".to_string(),
        expected: "at least one member request".to_string(),
    })?;
    let class = merge_class(first).ok_or_else(|| mixed_class_error(first))?;
    for config in &configs[1..] {
        if merge_class(config).as_ref() != Some(&class) {
            return Err(mixed_class_error(config));
        }
    }

    let mut plan = Plan::new();
    let mut parts = Vec::with_capacity(configs.len());
    for config in configs {
        let mut effective = config.clone();
        if let Some(comp) = config.framework.forced_comp() {
            effective.comp = comp;
        }
        match config.seed_node {
            Some(v) => {
                // Mirror `minibatch::lower_batched`'s single-ego-net arm
                // byte for byte: context-free seeded draws make the
                // member's subgraph independent of its batch position.
                let sampler = NeighborSampler::new(config.effective_fanouts()).seed(config.seed);
                let sub = sampler.sample(graph, &[v])?;
                let mut builder = Builder::with_plan(&sub.graph, config.functional_math, plan)
                    .track_uploads(config.opt == OptLevel::O2)
                    .tag_weights(true);
                models::lower_into(&mut builder, &effective)?;
                let (p, batch_out) = builder.finish();
                plan = p;
                let mut output = DenseMatrix::zeros(1, config.hidden);
                if config.functional_math {
                    for local in 0..sub.seeds {
                        for c in 0..config.hidden {
                            output.set(local, c, batch_out.get(local, c));
                        }
                    }
                }
                parts.push(MergedPart {
                    output,
                    nodes: sub.graph.num_nodes(),
                    edges: sub.graph.num_edges(),
                });
            }
            None => {
                let mut builder = Builder::with_plan(graph, config.functional_math, plan)
                    .track_uploads(config.opt == OptLevel::O2)
                    .tag_weights(true);
                models::lower_into(&mut builder, &effective)?;
                let (p, out) = builder.finish();
                plan = p;
                parts.push(MergedPart {
                    output: out,
                    nodes: graph.num_nodes(),
                    edges: graph.num_edges(),
                });
            }
        }
    }
    Ok((plan, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::minibatch::lower_batched;
    use crate::plan::BufClass;

    fn ego_config(seed_node: u32, opt: OptLevel) -> RunConfig {
        RunConfig {
            scale: 0.05,
            seed_node: Some(seed_node),
            fanout: vec![5, 5],
            opt,
            ..RunConfig::default()
        }
    }

    #[test]
    fn merge_class_partitions_the_request_space() {
        let a = ego_config(3, OptLevel::O0);
        let b = ego_config(9, OptLevel::O0);
        assert_eq!(merge_class(&a), merge_class(&b), "seed_node is not part");
        let opt_differs = ego_config(3, OptLevel::O2);
        assert_ne!(merge_class(&a), merge_class(&opt_differs));

        // The effective fanout schedule merges explicit and default forms.
        let explicit = RunConfig {
            fanout: vec![10, 10],
            seed_node: Some(1),
            ..RunConfig::default()
        };
        let default = RunConfig {
            seed_node: Some(2),
            ..RunConfig::default()
        };
        assert_eq!(merge_class(&explicit), merge_class(&default));

        // Full-graph classes key on the loaded graph + plan-wide knobs.
        let full = RunConfig::default();
        let model_differs = RunConfig {
            model: GnnModel::Gin,
            hidden: 8,
            ..RunConfig::default()
        };
        assert_eq!(merge_class(&full), merge_class(&model_differs));
        assert_ne!(merge_class(&full), merge_class(&a), "sampled != full-graph");

        // Unmergeable shapes.
        let sharded = RunConfig {
            gpus_per_run: 2,
            ..RunConfig::default()
        };
        assert_eq!(merge_class(&sharded), None);
        let sweep = RunConfig {
            batch_size: 32,
            ..RunConfig::default()
        };
        assert_eq!(merge_class(&sweep), None);
    }

    /// The tentpole's bit-identity contract at the lowering layer: each
    /// member of a merged ego-net batch produces exactly the output the
    /// solo `lower_batched` build produces.
    #[test]
    fn merged_member_outputs_match_solo_builds() {
        for opt in [OptLevel::O0, OptLevel::O2] {
            let configs: Vec<RunConfig> = [3u32, 9, 27]
                .iter()
                .map(|&v| RunConfig {
                    functional_math: true,
                    ..ego_config(v, opt)
                })
                .collect();
            let graph = configs[0].load_graph();
            let (_, parts) = lower_merged(&graph, &configs).expect("merged lowering");
            assert_eq!(parts.len(), configs.len());
            for (config, part) in configs.iter().zip(&parts) {
                let (_, solo) = lower_batched(&graph, config).expect("solo lowering");
                assert_eq!(
                    part.output.as_slice(),
                    solo.as_slice(),
                    "member {:?} diverged at {}",
                    config.seed_node,
                    opt
                );
                assert!(part.nodes > 0 && part.edges > 0);
            }
        }
    }

    /// O2's content-identity CSE shares each distinct weight matrix
    /// across members, exactly as it does across mini-batches.
    #[test]
    fn merged_members_share_weights_at_o2() {
        let live_weights = |plan: &Plan| {
            plan.bufs()
                .iter()
                .filter(|b| b.class == BufClass::Weight && !b.is_dead())
                .count()
        };
        let members = 3usize;
        let configs: Vec<RunConfig> = (0..members as u32)
            .map(|v| ego_config(v * 7 + 1, OptLevel::O0))
            .collect();
        let graph = configs[0].load_graph();
        let (mut p0, _) = lower_merged(&graph, &configs).expect("O0 merge");
        p0.optimize(OptLevel::O0);
        let o2_configs: Vec<RunConfig> = (0..members as u32)
            .map(|v| ego_config(v * 7 + 1, OptLevel::O2))
            .collect();
        let (mut p2, _) = lower_merged(&graph, &o2_configs).expect("O2 merge");
        p2.optimize(OptLevel::O2);
        let (w0, w2) = (live_weights(&p0), live_weights(&p2));
        assert_eq!(w0, w2 * members, "O0 carries every member's re-upload");
        assert!(w2 < w0, "O2 must CSE the shared weights");
    }

    /// Same-graph full-graph requests with different models merge, and
    /// each member's output matches its solo build.
    #[test]
    fn full_graph_members_keep_solo_outputs() {
        let base = RunConfig {
            scale: 0.05,
            functional_math: true,
            hidden: 8,
            ..RunConfig::default()
        };
        let other = RunConfig {
            model: GnnModel::Gin,
            seed: 7,
            ..base.clone()
        };
        let graph = base.load_graph();
        let configs = vec![base, other];
        let (_, parts) = lower_merged(&graph, &configs).expect("full-graph merge");
        for (config, part) in configs.iter().zip(&parts) {
            let mut effective = config.clone();
            if let Some(comp) = config.framework.forced_comp() {
                effective.comp = comp;
            }
            let mut builder = Builder::with_plan(&graph, config.functional_math, Plan::new())
                .track_uploads(config.opt == OptLevel::O2)
                .tag_weights(true);
            models::lower_into(&mut builder, &effective).expect("solo lowering");
            let (_, solo) = builder.finish();
            assert_eq!(part.output.as_slice(), solo.as_slice());
            assert_eq!(
                (part.nodes, part.edges),
                (graph.num_nodes(), graph.num_edges())
            );
        }
    }

    #[test]
    fn mixed_classes_are_rejected() {
        let graph = RunConfig {
            scale: 0.05,
            ..RunConfig::default()
        }
        .load_graph();
        assert!(lower_merged(&graph, &[]).is_err(), "empty batch");
        let mixed = vec![
            ego_config(1, OptLevel::O0),
            RunConfig {
                scale: 0.05,
                ..RunConfig::default()
            },
        ];
        let err = lower_merged(&graph, &mixed).unwrap_err();
        assert!(err.to_string().contains("merge class"), "{err}");
    }
}
