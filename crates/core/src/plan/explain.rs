//! The `explain` report: a human-readable dump of a configuration's plan
//! at O0 and O2 — ops, pass decisions, buffer liveness, assigned
//! addresses and memory-reuse outcomes (`gsuite-cli explain`).

use std::fmt::Write as _;

use gsuite_graph::Graph;

use crate::config::RunConfig;
use crate::frameworks;
use crate::Result;

use super::{AddrClass, OptLevel, Plan, Schedule};

/// Lowers `config` over `graph` at both optimization levels and renders
/// the full plan report.
///
/// # Errors
///
/// Propagates lowering errors (e.g.
/// [`crate::CoreError::UnsupportedCombination`]).
pub fn explain(graph: &Graph, config: &RunConfig) -> Result<String> {
    let (plan_o0, sched_o0) = compile(graph, config, OptLevel::O0)?;
    let (plan_o2, sched_o2) = compile(graph, config, OptLevel::O2)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== plan explain: {} (layers={}, hidden={}, seed={})",
        config.label(),
        config.layers,
        config.hidden,
        config.seed
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "opt  launches  peak device bytes  arena bytes");
    for (level, plan, sched) in [
        (OptLevel::O0, &plan_o0, &sched_o0),
        (OptLevel::O2, &plan_o2, &sched_o2),
    ] {
        let _ = writeln!(
            out,
            "{:<4} {:<9} {:<18} {}",
            level.name(),
            plan.launch_count(),
            sched.peak_device_bytes,
            sched.arena_bytes
        );
    }
    let launches_delta = plan_o0.launch_count() as i64 - plan_o2.launch_count() as i64;
    let peak_delta = pct_drop(sched_o0.peak_device_bytes, sched_o2.peak_device_bytes);
    let _ = writeln!(
        out,
        "O2 vs O0: {} launch(es), {peak_delta} peak device bytes",
        -launches_delta
    );

    let _ = writeln!(out, "\npass decisions (O2):");
    if plan_o2.decisions().is_empty() {
        let _ = writeln!(
            out,
            "  (none — this plan has no fusible or layer-invariant ops)"
        );
    }
    for d in plan_o2.decisions() {
        let _ = writeln!(out, "  - {d}");
    }
    let reused_ranges = sched_o2.reused.iter().filter(|&&r| r).count();
    let _ = writeln!(
        out,
        "  - memplan: {reused_ranges} buffer(s) placed in reused address ranges \
         ({peak_delta} peak vs the O0 bump layout)"
    );

    let _ = writeln!(out, "\nO2 ops:");
    let _ = writeln!(
        out,
        "  #   kernel       op                              reads -> writes            frees after"
    );
    for (i, op) in plan_o2.ops().iter().enumerate() {
        let reads: Vec<String> = op.reads().iter().map(|b| b.to_string()).collect();
        let writes: Vec<String> = op.writes().iter().map(|b| b.to_string()).collect();
        let frees: Vec<String> = sched_o2
            .live
            .iter()
            .enumerate()
            .filter(|&(b, l)| {
                l.map(|(_, last)| last) == Some(i as isize)
                    && plan_o2.bufs()[b].space == AddrClass::Device
                    && !plan_o2.bufs()[b].is_dead()
            })
            .map(|(b, _)| super::BufId(b).to_string())
            .collect();
        let _ = writeln!(
            out,
            "  {:<3} {:<12} {:<31} {} -> {:<18} {}",
            i,
            op.kind.name(),
            op.label(),
            reads.join(","),
            writes.join(","),
            if frees.is_empty() {
                "-".to_string()
            } else {
                frees.join(",")
            }
        );
    }

    let _ = writeln!(out, "\nO2 device buffers:");
    let _ = writeln!(
        out,
        "  id    name                 class   bytes      addr        def  last  reused"
    );
    let mut dead = 0usize;
    let mut dead_bytes = 0u64;
    for (i, buf) in plan_o2.bufs().iter().enumerate() {
        if buf.space != AddrClass::Device {
            continue;
        }
        if buf.is_dead() || sched_o2.live[i].is_none() {
            dead += 1;
            dead_bytes += buf.bytes();
            continue;
        }
        let (def, last) = sched_o2.live[i].expect("live checked");
        let _ = writeln!(
            out,
            "  b{:<4} {:<20} {:<7} {:<10} {:#011x}  {:<4} {:<5} {}",
            i,
            buf.name,
            buf.class.label(),
            buf.bytes(),
            sched_o2.addrs[i].unwrap_or(0),
            if def < 0 {
                "pre".to_string()
            } else {
                format!("#{def}")
            },
            if last >= plan_o2.ops().len() as isize {
                "out".to_string()
            } else {
                format!("#{last}")
            },
            if sched_o2.reused[i] { "yes" } else { "-" }
        );
    }
    if dead > 0 {
        let _ = writeln!(
            out,
            "  ({dead} dead/unreferenced buffer(s), {dead_bytes} bytes, elided — never allocated at O2)"
        );
    }
    Ok(out)
}

/// Machine-readable counterpart of [`explain`]: the same
/// O0/O2 compile rendered as one JSON object — per-level launch/memory
/// summaries, O2 pass decisions, the O2 op list (kernel, label, reads,
/// writes, buffers freed after the op) and the O2 device-buffer table
/// (liveness, assigned addresses, reuse flags). Trace tooling and the
/// text report share this one compile, so they can never disagree.
///
/// The document is deterministic: identical `(graph, config)` inputs
/// render byte-identical JSON.
///
/// # Errors
///
/// Exactly the lowering errors [`explain`] propagates.
pub fn explain_json(graph: &Graph, config: &RunConfig) -> Result<String> {
    let (plan_o0, sched_o0) = compile(graph, config, OptLevel::O0)?;
    let (plan_o2, sched_o2) = compile(graph, config, OptLevel::O2)?;

    let jstr = |s: &str| {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    };
    let jlist = |ids: &[String]| {
        let quoted: Vec<String> = ids.iter().map(|s| jstr(s)).collect();
        format!("[{}]", quoted.join(","))
    };

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"label\": {},", jstr(&config.label()));
    let _ = writeln!(
        out,
        "  \"config\": {{\"layers\": {}, \"hidden\": {}, \"seed\": {}}},",
        config.layers, config.hidden, config.seed
    );
    out.push_str("  \"levels\": {\n");
    for (i, (level, plan, sched)) in [
        (OptLevel::O0, &plan_o0, &sched_o0),
        (OptLevel::O2, &plan_o2, &sched_o2),
    ]
    .into_iter()
    .enumerate()
    {
        let _ = writeln!(
            out,
            "    \"{}\": {{\"launches\": {}, \"peak_device_bytes\": {}, \"arena_bytes\": {}}}{}",
            level.name(),
            plan.launch_count(),
            sched.peak_device_bytes,
            sched.arena_bytes,
            if i == 0 { "," } else { "" }
        );
    }
    out.push_str("  },\n");

    out.push_str("  \"decisions\": [");
    for (i, d) in plan_o2.decisions().iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(&jstr(d));
    }
    out.push_str("\n  ],\n");

    // The O2 op list, mirroring the text report's "frees after" column.
    out.push_str("  \"ops\": [");
    for (i, op) in plan_o2.ops().iter().enumerate() {
        let reads: Vec<String> = op.reads().iter().map(|b| b.to_string()).collect();
        let writes: Vec<String> = op.writes().iter().map(|b| b.to_string()).collect();
        let frees: Vec<String> = sched_o2
            .live
            .iter()
            .enumerate()
            .filter(|&(b, l)| {
                l.map(|(_, last)| last) == Some(i as isize)
                    && plan_o2.bufs()[b].space == AddrClass::Device
                    && !plan_o2.bufs()[b].is_dead()
            })
            .map(|(b, _)| super::BufId(b).to_string())
            .collect();
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        let _ = write!(
            out,
            "{{\"index\": {i}, \"kernel\": {}, \"op\": {}, \"reads\": {}, \"writes\": {}, \"frees_after\": {}}}",
            jstr(op.kind.name()),
            jstr(&op.label()),
            jlist(&reads),
            jlist(&writes),
            jlist(&frees)
        );
    }
    out.push_str("\n  ],\n");

    // Every live O2 device buffer with its liveness window and address.
    out.push_str("  \"buffers\": [");
    let mut first = true;
    for (i, buf) in plan_o2.bufs().iter().enumerate() {
        if buf.space != AddrClass::Device || buf.is_dead() || sched_o2.live[i].is_none() {
            continue;
        }
        let (def, last) = sched_o2.live[i].expect("live checked");
        out.push_str(if first { "\n    " } else { ",\n    " });
        first = false;
        let _ = write!(
            out,
            "{{\"id\": \"b{i}\", \"name\": {}, \"class\": \"{}\", \"bytes\": {}, \"addr\": {}, \"def\": {def}, \"last\": {last}, \"reused\": {}}}",
            jstr(&buf.name),
            buf.class.label(),
            buf.bytes(),
            sched_o2.addrs[i].unwrap_or(0),
            sched_o2.reused[i]
        );
    }
    out.push_str("\n  ]\n}\n");
    Ok(out)
}

/// Lower → optimize → decorate → schedule at one level.
fn compile(graph: &Graph, config: &RunConfig, level: OptLevel) -> Result<(Plan, Schedule)> {
    let mut cfg = config.clone();
    cfg.opt = level;
    // Plan structure is independent of functional math; skip the host-side
    // matrix computation for the report.
    cfg.functional_math = false;
    let (mut plan, _) = frameworks::lower(graph, &cfg)?;
    plan.optimize(level);
    frameworks::decorate(&mut plan, cfg.framework);
    let sched = plan.schedule(level);
    Ok((plan, sched))
}

fn pct_drop(before: u64, after: u64) -> String {
    if before == 0 {
        return "0.0%".to_string();
    }
    let drop = (before as f64 - after as f64) / before as f64 * 100.0;
    format!("-{drop:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompModel, GnnModel};
    use gsuite_graph::GraphGenerator;

    #[test]
    fn explain_renders_gcn_spmm_with_decisions() {
        let graph = GraphGenerator::new(24, 80).seed(3).build_graph(6).unwrap();
        let config = RunConfig {
            model: GnnModel::Gcn,
            comp: CompModel::Spmm,
            layers: 2,
            hidden: 4,
            ..RunConfig::default()
        };
        let text = explain(&graph, &config).unwrap();
        assert!(text.contains("plan explain"));
        assert!(text.contains("pass decisions (O2):"));
        assert!(text.contains("hoist:"), "{text}");
        assert!(text.contains("fuse:"), "{text}");
        assert!(text.contains("O2 device buffers:"));
    }

    #[test]
    fn explain_json_mirrors_the_text_report() {
        let graph = GraphGenerator::new(24, 80).seed(3).build_graph(6).unwrap();
        let config = RunConfig {
            model: GnnModel::Gcn,
            comp: CompModel::Spmm,
            layers: 2,
            hidden: 4,
            ..RunConfig::default()
        };
        let json = explain_json(&graph, &config).unwrap();
        assert!(json.contains("\"levels\""), "{json}");
        assert!(json.contains("\"O0\""), "{json}");
        assert!(json.contains("\"decisions\""), "{json}");
        assert!(json.contains("\"frees_after\""), "{json}");
        assert!(json.contains("\"addr\""), "{json}");
        // Deterministic: same inputs, same bytes.
        assert_eq!(json, explain_json(&graph, &config).unwrap());
        // Same compile as the text report: launch counts agree.
        let text = explain(&graph, &config).unwrap();
        assert!(text.contains("plan explain"));
    }

    #[test]
    fn explain_is_deterministic() {
        let graph = GraphGenerator::new(16, 40).seed(1).build_graph(4).unwrap();
        let config = RunConfig {
            model: GnnModel::Gin,
            layers: 2,
            hidden: 4,
            ..RunConfig::default()
        };
        assert_eq!(
            explain(&graph, &config).unwrap(),
            explain(&graph, &config).unwrap()
        );
    }
}
