//! Sharded (multi-GPU) lowering over the Plan IR.
//!
//! A sharded run partitions the input graph with
//! [`gsuite_graph::Partitioner`] and lowers **one op DAG per shard**: each
//! shard's subgraph (owned nodes + halo ghosts, edges whose destination
//! the shard owns) goes through the exact single-device compile —
//! lower → optimize → decorate → schedule — and is prefixed with one
//! [`OpSpec::Exchange`] op per `(layer, peer)` pair that contributes halo
//! rows. Each shard executes on its own modeled device (`device ==
//! shard`; the effective shard count *is* the modeled GPU count).
//!
//! The execution model is **bulk-synchronous**: before every aggregation
//! layer each shard receives the halo feature rows it does not own (layer
//! 0 at input width, later layers at hidden width), then all shards run
//! their layer kernels concurrently, one shard per device. Exchange ops
//! are priced by [`gsuite_profile::Interconnect`] at profile time — the
//! communication term single-GPU GNN benchmarks never expose.
//!
//! Sharded runs are a *performance* model: host-side functional math is
//! disabled (boundary-exact multi-device numerics would require
//! cross-shard reassembly the benchmark does not need), exactly like the
//! profile-only mode the sweeps already run in. Single-shard configs
//! (`gpus_per_run == 1`) never enter this module — they take the
//! unmodified single-device path, byte-identical to every golden
//! snapshot.

use gsuite_graph::{Graph, PartitionStrategy, Partitioner};

use crate::config::{GnnModel, RunConfig};
use crate::frameworks;
use crate::kernels::{KernelKind, Launch};
use crate::Result;

use super::{AddrClass, BufClass, OpSpec, Plan, PlanOp};

/// One shard's compiled execution: its plan, launches and accounting.
#[derive(Debug)]
pub struct ShardExec {
    /// Shard index (== partition part index).
    pub shard: usize,
    /// Modeled device executing this shard (one device per shard, so
    /// `device == shard`).
    pub device: usize,
    /// The shard's optimized, decorated plan (exchange ops included).
    pub plan: Plan,
    /// The shard's scheduled launch stream (1:1 with plan ops).
    pub launches: Vec<Launch>,
    /// Peak device bytes of the shard's memory schedule.
    pub peak_device_bytes: u64,
    /// Nodes this shard owns.
    pub owned_nodes: u64,
    /// Halo (ghost) nodes replicated onto this shard.
    pub halo_nodes: u64,
    /// Halo feature bytes received per inference (all layers, all peers).
    pub halo_in_bytes: u64,
}

/// A complete sharded build: per-shard executions plus partition-level
/// statistics.
#[derive(Debug)]
pub struct ShardedExec {
    /// The partitioner strategy that produced the shards.
    pub strategy: PartitionStrategy,
    /// Edges whose endpoints live on different shards.
    pub cut_edges: u64,
    /// Total edges of the partitioned graph.
    pub total_edges: u64,
    /// Per-shard executions, in shard order.
    pub shards: Vec<ShardExec>,
}

impl ShardedExec {
    /// Total launches across shards.
    pub fn launch_count(&self) -> usize {
        self.shards.iter().map(|s| s.launches.len()).sum()
    }

    /// The flattened launch stream (shard 0's launches, then shard 1's,
    /// …) — what [`crate::pipeline::PipelineRun::launches`] carries for a
    /// sharded run.
    pub fn flat_launches(&self) -> Vec<Launch> {
        self.shards
            .iter()
            .flat_map(|s| s.launches.iter().cloned())
            .collect()
    }

    /// Largest single-device memory footprint across shards.
    pub fn max_shard_peak_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.peak_device_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Feature width exchanged before layer `layer`: input width before the
/// first layer (and for every SGC hop, which propagates at input width),
/// hidden width afterwards — mirroring
/// [`crate::models::ModelWeights::init`].
fn layer_width(config: &RunConfig, in_dim: usize, layer: usize) -> usize {
    if layer == 0 || config.model == GnnModel::Sgc {
        in_dim
    } else {
        config.hidden
    }
}

/// Builds the sharded execution for `config` (requires
/// `config.gpus_per_run > 1`): partition → per-shard lower → optimize →
/// splice exchanges → decorate → schedule.
///
/// # Errors
///
/// Propagates lowering errors
/// ([`crate::CoreError::UnsupportedCombination`] for combinations the
/// suite cannot build, e.g. gSuite SAGE under SpMM).
pub fn build_sharded(graph: &Graph, config: &RunConfig) -> Result<ShardedExec> {
    let partition = Partitioner::new(config.gpus_per_run)
        .strategy(config.partitioner)
        .seed(config.seed)
        .partition(graph);

    let mut shards = Vec::with_capacity(partition.shards);
    for part in &partition.parts {
        let (sub, _local_to_global) = partition
            .subgraph(graph, part.shard)
            .expect("partition maps are in-bounds by construction");

        // Per-shard compile mirrors the single-device path exactly, minus
        // host math (sharded runs are profile-only by design).
        let mut shard_cfg = config.clone();
        shard_cfg.functional_math = false;
        shard_cfg.gpus_per_run = 1;
        let (mut plan, _) = frameworks::lower(&sub, &shard_cfg)?;
        plan.optimize(config.opt);

        // Halo transfers, one per (layer, contributing peer), spliced
        // ahead of the shard's kernel stream. Position never affects the
        // bulk-synchronous cost model (transfer times sum either way);
        // the front keeps the explain/report op order readable.
        let mut exchanges: Vec<PlanOp> = Vec::new();
        let mut halo_in_bytes = 0u64;
        for layer in 0..config.layers {
            let feat = layer_width(config, graph.feature_dim(), layer);
            for (peer, &count) in part.halo_from.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let rows = count as u64;
                let elems = rows * feat as u64;
                let out = plan.add_buf(
                    format!("xch.l{layer}.s{peer}"),
                    elems,
                    BufClass::Dense,
                    AddrClass::Device,
                    None,
                );
                exchanges.push(PlanOp {
                    kind: KernelKind::Exchange,
                    spec: OpSpec::Exchange {
                        peer,
                        layer,
                        rows,
                        feat,
                        out,
                    },
                });
                halo_in_bytes += elems * 4;
            }
        }
        plan.ops.splice(0..0, exchanges);

        frameworks::decorate(&mut plan, config.framework);
        let schedule = plan.schedule(config.opt);
        shards.push(ShardExec {
            shard: part.shard,
            device: part.shard,
            launches: schedule.launches,
            peak_device_bytes: schedule.peak_device_bytes,
            owned_nodes: part.owned.len() as u64,
            halo_nodes: part.halo.len() as u64,
            halo_in_bytes,
            plan,
        });
    }

    Ok(ShardedExec {
        strategy: partition.strategy,
        cut_edges: partition.cut_edges as u64,
        total_edges: partition.total_edges as u64,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompModel;
    use gsuite_graph::datasets::Dataset;

    fn config(shards: usize) -> RunConfig {
        RunConfig {
            model: GnnModel::Gcn,
            comp: CompModel::Mp,
            dataset: Dataset::Cora,
            scale: 0.05,
            layers: 2,
            hidden: 8,
            gpus_per_run: shards,
            functional_math: false,
            ..RunConfig::default()
        }
    }

    #[test]
    fn sharded_build_emits_per_shard_dags_with_exchanges() {
        let cfg = config(2);
        let graph = cfg.load_graph();
        let sharded = build_sharded(&graph, &cfg).unwrap();
        assert_eq!(sharded.shards.len(), 2);
        assert_eq!(
            sharded.shards.iter().map(|s| s.owned_nodes).sum::<u64>(),
            graph.num_nodes() as u64
        );
        for shard in &sharded.shards {
            // 2 layers × 1 peer = 2 exchanges, ahead of the kernel stream.
            let exchanges = shard
                .plan
                .ops()
                .iter()
                .filter(|o| o.kind == KernelKind::Exchange)
                .count();
            assert_eq!(exchanges, 2, "shard {}", shard.shard);
            assert!(matches!(
                shard.plan.ops()[0].spec,
                OpSpec::Exchange { layer: 0, .. }
            ));
            assert_eq!(shard.launches.len(), shard.plan.ops().len());
            assert!(shard.halo_in_bytes > 0);
            assert!(shard.peak_device_bytes > 0);
        }
        assert!(sharded.cut_edges > 0);
        assert_eq!(sharded.total_edges, graph.num_edges() as u64);
    }

    #[test]
    fn exchange_widths_follow_the_layer_schedule() {
        let cfg = config(4);
        let graph = cfg.load_graph();
        let sharded = build_sharded(&graph, &cfg).unwrap();
        let shard = &sharded.shards[0];
        for op in shard.plan.ops() {
            if let OpSpec::Exchange { layer, feat, .. } = op.spec {
                let expected = if layer == 0 {
                    graph.feature_dim()
                } else {
                    cfg.hidden
                };
                assert_eq!(feat, expected, "layer {layer}");
            }
        }
    }

    #[test]
    fn sharded_build_is_deterministic() {
        let cfg = config(4);
        let graph = cfg.load_graph();
        let a = build_sharded(&graph, &cfg).unwrap();
        let b = build_sharded(&graph, &cfg).unwrap();
        assert_eq!(a.cut_edges, b.cut_edges);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.peak_device_bytes, y.peak_device_bytes);
            assert_eq!(x.halo_in_bytes, y.halo_in_bytes);
            assert_eq!(x.launches.len(), y.launches.len());
            assert_eq!(x.plan.kinds(), y.plan.kinds());
        }
    }

    #[test]
    fn unsupported_combinations_propagate() {
        let cfg = RunConfig {
            model: GnnModel::Sage,
            comp: CompModel::Spmm,
            ..config(2)
        };
        let graph = cfg.load_graph();
        assert!(build_sharded(&graph, &cfg).is_err());
    }
}
