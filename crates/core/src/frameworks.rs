//! Baseline framework adapters — the paper's Fig. 3/4 comparison targets.
//!
//! The original evaluation compares gSuite against PyTorch Geometric and
//! DGL. Neither Python framework can run here, so each adapter reproduces
//! the *sources* of their measured overheads (substitution documented in
//! `DESIGN.md` §2):
//!
//! * **host initialization** — the dependency chain the paper blames for
//!   PyG's long end-to-end times (interpreter + torch + CUDA context vs. a
//!   bare CUDA context for gSuite);
//! * **per-launch dispatch overhead** — Python-side call stacks between
//!   kernels;
//! * **wrapper kernels** — the extra dtype/layout/copy launches frameworks
//!   insert around the mathematical kernels (visible as the "other" share
//!   of Fig. 4).
//!
//! The mathematical kernels themselves are identical across frameworks —
//! as in the paper, where all implementations compute the same inference.

use crate::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use crate::kernels::{ElementwiseKernel, KernelKind, Launch};
use crate::models;
use crate::Result;
use gsuite_graph::Graph;
use gsuite_tensor::DenseMatrix;

/// Modeled host-side costs of a framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkCosts {
    /// One-time initialization (import chain, context creation) in ms.
    pub init_ms: f64,
    /// Host dispatch overhead per kernel launch in ms.
    pub per_launch_ms: f64,
}

impl FrameworkKind {
    /// The modeled host costs (magnitudes calibrated to the paper's Fig. 3,
    /// where PyG end-to-end times sit seconds above gSuite's).
    pub fn costs(self) -> FrameworkCosts {
        match self {
            FrameworkKind::GSuite => FrameworkCosts {
                init_ms: 150.0,
                per_launch_ms: 0.005,
            },
            FrameworkKind::PygLike => FrameworkCosts {
                init_ms: 1650.0,
                per_launch_ms: 0.030,
            },
            FrameworkKind::DglLike => FrameworkCosts {
                init_ms: 900.0,
                per_launch_ms: 0.012,
            },
        }
    }

    /// The computational model this framework forces, if any (PyG is
    /// MP-based, DGL is SpMM-based; gSuite lets the user choose).
    pub fn forced_comp(self) -> Option<CompModel> {
        match self {
            FrameworkKind::GSuite => None,
            FrameworkKind::PygLike => Some(CompModel::Mp),
            FrameworkKind::DglLike => Some(CompModel::Spmm),
        }
    }
}

/// Builds the kernel launch list for `config`, honoring the framework
/// choice: gSuite runs the bare pipelines, the baselines force their
/// computational model and interleave wrapper kernels.
///
/// # Errors
///
/// Propagates [`crate::CoreError::UnsupportedCombination`] (gSuite +
/// SAGE + SpMM).
pub fn build_pipeline(graph: &Graph, config: &RunConfig) -> Result<(Vec<Launch>, DenseMatrix)> {
    let mut effective = config.clone();
    if let Some(comp) = config.framework.forced_comp() {
        effective.comp = comp;
    }
    let (launches, output) = match (config.framework, effective.model, effective.comp) {
        // DGL's SAGE: mean-aggregation SpMM variant (not part of the
        // gSuite surface).
        (FrameworkKind::DglLike, GnnModel::Sage, CompModel::Spmm) => {
            models::build_sage_spmm(graph, &effective)?
        }
        _ => models::build_model(graph, &effective)?,
    };
    let launches = match config.framework {
        FrameworkKind::GSuite => launches,
        FrameworkKind::PygLike => {
            insert_wrappers(launches, &[KernelKind::IndexSelect, KernelKind::Scatter])
        }
        FrameworkKind::DglLike => insert_wrappers(launches, &[KernelKind::Spmm]),
    };
    Ok((launches, output))
}

/// Inserts a wrapper copy launch after every launch of the given kinds,
/// sized to the same element count (approximated from the grid).
fn insert_wrappers(launches: Vec<Launch>, after: &[KernelKind]) -> Vec<Launch> {
    let mut out = Vec::with_capacity(launches.len() * 2);
    // Wrapper buffers live in their own address range so they never alias
    // pipeline buffers.
    let mut wrapper_base = 0xF_0000_0000u64;
    for launch in launches {
        let add_wrapper = after.contains(&launch.kind);
        let grid = launch.workload.grid();
        out.push(launch);
        if add_wrapper {
            let elems = grid.ctas * grid.warps_per_cta as u64 * 32;
            let src = wrapper_base;
            wrapper_base += elems * 4 + 256;
            let dst = wrapper_base;
            wrapper_base += elems * 4 + 256;
            out.push(Launch::new(
                KernelKind::Elementwise,
                ElementwiseKernel::copy(src, dst, elems),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_graph::datasets::Dataset;

    fn config(framework: FrameworkKind, model: GnnModel) -> RunConfig {
        RunConfig {
            framework,
            model,
            dataset: Dataset::Cora,
            scale: 0.02,
            layers: 1,
            hidden: 4,
            ..RunConfig::default()
        }
    }

    #[test]
    fn costs_order_matches_fig3() {
        let pyg = FrameworkKind::PygLike.costs();
        let dgl = FrameworkKind::DglLike.costs();
        let gsuite = FrameworkKind::GSuite.costs();
        assert!(pyg.init_ms > dgl.init_ms);
        assert!(dgl.init_ms > gsuite.init_ms);
        assert!(pyg.per_launch_ms > gsuite.per_launch_ms);
    }

    #[test]
    fn pyg_forces_mp_and_adds_wrappers() {
        let cfg = config(FrameworkKind::PygLike, GnnModel::Gcn);
        let graph = cfg.load_graph();
        let (launches, _) = build_pipeline(&graph, &cfg).unwrap();
        let wrappers = launches
            .iter()
            .filter(|l| l.kind == KernelKind::Elementwise)
            .count();
        assert!(wrappers >= 2, "copies after indexSelect and scatter");
        assert!(launches.iter().any(|l| l.kind == KernelKind::IndexSelect));
        assert!(!launches.iter().any(|l| l.kind == KernelKind::Spmm));
    }

    #[test]
    fn dgl_forces_spmm() {
        let cfg = config(FrameworkKind::DglLike, GnnModel::Gcn);
        let graph = cfg.load_graph();
        let (launches, _) = build_pipeline(&graph, &cfg).unwrap();
        assert!(launches.iter().any(|l| l.kind == KernelKind::Spmm));
        assert!(!launches.iter().any(|l| l.kind == KernelKind::IndexSelect));
    }

    #[test]
    fn dgl_runs_sage_via_spmm_variant() {
        let cfg = config(FrameworkKind::DglLike, GnnModel::Sage);
        let graph = cfg.load_graph();
        let (launches, out) = build_pipeline(&graph, &cfg).unwrap();
        assert!(launches.iter().any(|l| l.kind == KernelKind::Spmm));
        assert_eq!(out.rows(), graph.num_nodes());
    }

    #[test]
    fn gsuite_adds_no_wrappers() {
        let cfg = config(FrameworkKind::GSuite, GnnModel::Gin);
        let graph = cfg.load_graph();
        let (launches, _) = build_pipeline(&graph, &cfg).unwrap();
        // GIN-MP has exactly 2 legitimate elementwise launches per layer
        // (combine + MLP ReLU); no extras.
        let ew = launches
            .iter()
            .filter(|l| l.kind == KernelKind::Elementwise)
            .count();
        assert_eq!(ew, 2);
    }

    #[test]
    fn frameworks_compute_identical_math() {
        // Baselines add overhead, never change results.
        let base = config(FrameworkKind::GSuite, GnnModel::Gcn);
        let graph = base.load_graph();
        let (_, gsuite_out) = build_pipeline(&graph, &base).unwrap();
        let (_, pyg_out) =
            build_pipeline(&graph, &config(FrameworkKind::PygLike, GnnModel::Gcn)).unwrap();
        assert!(gsuite_out.approx_eq(&pyg_out, 1e-4));
    }
}
