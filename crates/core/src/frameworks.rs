//! Baseline framework adapters — the paper's Fig. 3/4 comparison targets.
//!
//! The original evaluation compares gSuite against PyTorch Geometric and
//! DGL. Neither Python framework can run here, so each adapter reproduces
//! the *sources* of their measured overheads (substitution documented in
//! `ARCHITECTURE.md`, "Design notes" §2):
//!
//! * **host initialization** — the dependency chain the paper blames for
//!   PyG's long end-to-end times (interpreter + torch + CUDA context vs. a
//!   bare CUDA context for gSuite);
//! * **per-launch dispatch overhead** — Python-side call stacks between
//!   kernels;
//! * **wrapper kernels** — the extra dtype/layout/copy launches frameworks
//!   insert around the mathematical kernels (visible as the "other" share
//!   of Fig. 4).
//!
//! The mathematical kernels themselves are identical across frameworks —
//! as in the paper, where all implementations compute the same inference.
//!
//! Since the kernel-dataflow IR refactor, an adapter is a **plan
//! decorator** ([`decorate`]): it wraps ops of its characteristic kinds
//! with synthetic copy ops in the wrapper address region, instead of
//! splicing raw launches into a launch list. [`lower`] dispatches the
//! model lowering honoring each framework's forced computational model.

use crate::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use crate::kernels::{EwOp, KernelKind};
use crate::models;
use crate::plan::{AddrClass, BufClass, OpSpec, Plan};
use crate::Result;
use gsuite_graph::Graph;
use gsuite_tensor::DenseMatrix;

/// Modeled host-side costs of a framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkCosts {
    /// One-time initialization (import chain, context creation) in ms.
    pub init_ms: f64,
    /// Host dispatch overhead per kernel launch in ms.
    pub per_launch_ms: f64,
}

impl FrameworkKind {
    /// The modeled host costs (magnitudes calibrated to the paper's Fig. 3,
    /// where PyG end-to-end times sit seconds above gSuite's).
    pub fn costs(self) -> FrameworkCosts {
        match self {
            FrameworkKind::GSuite => FrameworkCosts {
                init_ms: 150.0,
                per_launch_ms: 0.005,
            },
            FrameworkKind::PygLike => FrameworkCosts {
                init_ms: 1650.0,
                per_launch_ms: 0.030,
            },
            FrameworkKind::DglLike => FrameworkCosts {
                init_ms: 900.0,
                per_launch_ms: 0.012,
            },
        }
    }

    /// The computational model this framework forces, if any (PyG is
    /// MP-based, DGL is SpMM-based; gSuite lets the user choose).
    pub fn forced_comp(self) -> Option<CompModel> {
        match self {
            FrameworkKind::GSuite => None,
            FrameworkKind::PygLike => Some(CompModel::Mp),
            FrameworkKind::DglLike => Some(CompModel::Spmm),
        }
    }

    /// The op kinds this framework wraps with a synthetic copy launch.
    fn wrapped_kinds(self) -> &'static [KernelKind] {
        match self {
            FrameworkKind::GSuite => &[],
            FrameworkKind::PygLike => &[KernelKind::IndexSelect, KernelKind::Scatter],
            FrameworkKind::DglLike => &[KernelKind::Spmm],
        }
    }
}

/// Lowers the model plan for `config`, honoring the framework choice's
/// forced computational model (PyG → MP, DGL → SpMM; DGL reaches SAGE
/// through its SpMM mean-aggregation variant).
///
/// # Errors
///
/// Propagates [`crate::CoreError::UnsupportedCombination`] (gSuite +
/// SAGE + SpMM).
pub fn lower(graph: &Graph, config: &RunConfig) -> Result<(Plan, DenseMatrix)> {
    let mut effective = config.clone();
    if let Some(comp) = config.framework.forced_comp() {
        effective.comp = comp;
    }
    match (config.framework, effective.model, effective.comp) {
        // DGL's SAGE: mean-aggregation SpMM variant (not part of the
        // gSuite surface).
        (FrameworkKind::DglLike, GnnModel::Sage, CompModel::Spmm) => {
            models::build_sage_spmm(graph, &effective)
        }
        _ => models::build_model(graph, &effective),
    }
}

/// Decorates a plan with the framework's wrapper ops: after every op of
/// the framework's characteristic kinds, a copy op over synthetic
/// buffers in the wrapper address region, sized to the wrapped op's grid
/// (approximating the dtype/layout fixups PyG and DGL launch).
///
/// Runs *after* optimization: a baseline wraps the kernels it actually
/// dispatches, so an O2 plan with fewer ops also carries fewer wrappers.
pub fn decorate(plan: &mut Plan, framework: FrameworkKind) {
    let after = framework.wrapped_kinds();
    if after.is_empty() {
        return;
    }
    let ops = std::mem::take(&mut plan.ops);
    let mut decorated = Vec::with_capacity(ops.len() * 2);
    for op in ops {
        let grid = after.contains(&op.kind).then(|| op.grid());
        decorated.push(op);
        if let Some(grid) = grid {
            let elems = grid.ctas * grid.warps_per_cta as u64 * 32;
            let src = plan.add_buf("wrap.src", elems, BufClass::Dense, AddrClass::Wrapper, None);
            let dst = plan.add_buf("wrap.dst", elems, BufClass::Dense, AddrClass::Wrapper, None);
            decorated.push(crate::plan::PlanOp {
                kind: KernelKind::Elementwise,
                spec: OpSpec::Elementwise {
                    op: EwOp::Copy,
                    elems,
                    feat: 1,
                    a: src,
                    b: None,
                    s: None,
                    out: dst,
                },
            });
        }
    }
    plan.ops = decorated;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineRun;
    use gsuite_graph::datasets::Dataset;

    fn config(framework: FrameworkKind, model: GnnModel) -> RunConfig {
        RunConfig {
            framework,
            model,
            dataset: Dataset::Cora,
            scale: 0.02,
            layers: 1,
            hidden: 4,
            ..RunConfig::default()
        }
    }

    #[test]
    fn costs_order_matches_fig3() {
        let pyg = FrameworkKind::PygLike.costs();
        let dgl = FrameworkKind::DglLike.costs();
        let gsuite = FrameworkKind::GSuite.costs();
        assert!(pyg.init_ms > dgl.init_ms);
        assert!(dgl.init_ms > gsuite.init_ms);
        assert!(pyg.per_launch_ms > gsuite.per_launch_ms);
    }

    #[test]
    fn pyg_forces_mp_and_adds_wrappers() {
        let cfg = config(FrameworkKind::PygLike, GnnModel::Gcn);
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let wrappers = run
            .launches
            .iter()
            .filter(|l| l.kind == KernelKind::Elementwise)
            .count();
        assert!(wrappers >= 2, "copies after indexSelect and scatter");
        assert!(run
            .launches
            .iter()
            .any(|l| l.kind == KernelKind::IndexSelect));
        assert!(!run.launches.iter().any(|l| l.kind == KernelKind::Spmm));
    }

    #[test]
    fn dgl_forces_spmm() {
        let cfg = config(FrameworkKind::DglLike, GnnModel::Gcn);
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        assert!(run.launches.iter().any(|l| l.kind == KernelKind::Spmm));
        assert!(!run
            .launches
            .iter()
            .any(|l| l.kind == KernelKind::IndexSelect));
    }

    #[test]
    fn dgl_runs_sage_via_spmm_variant() {
        let cfg = config(FrameworkKind::DglLike, GnnModel::Sage);
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        assert!(run.launches.iter().any(|l| l.kind == KernelKind::Spmm));
        assert_eq!(run.output.rows(), graph.num_nodes());
    }

    #[test]
    fn gsuite_adds_no_wrappers() {
        let cfg = config(FrameworkKind::GSuite, GnnModel::Gin);
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        // GIN-MP has exactly 2 legitimate elementwise launches per layer
        // (combine + MLP ReLU); no extras.
        let ew = run
            .launches
            .iter()
            .filter(|l| l.kind == KernelKind::Elementwise)
            .count();
        assert_eq!(ew, 2);
    }

    #[test]
    fn frameworks_compute_identical_math() {
        // Baselines add overhead, never change results.
        let base = config(FrameworkKind::GSuite, GnnModel::Gcn);
        let graph = base.load_graph();
        let gsuite_out = PipelineRun::build(&graph, &base).unwrap().output;
        let pyg_out = PipelineRun::build(&graph, &config(FrameworkKind::PygLike, GnnModel::Gcn))
            .unwrap()
            .output;
        assert!(gsuite_out.approx_eq(&pyg_out, 1e-4));
    }

    #[test]
    fn wrapper_buffers_live_in_their_own_region() {
        let cfg = config(FrameworkKind::PygLike, GnnModel::Gcn);
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        use crate::plan::AddrClass;
        assert!(run
            .plan
            .bufs()
            .iter()
            .any(|b| b.space == AddrClass::Wrapper));
    }
}
