//! # gsuite-par
//!
//! Minimal deterministic data-parallel helpers built on `std::thread` — the
//! crates.io-free stand-in for rayon's `par_iter().map().collect()` in this
//! offline-built workspace.
//!
//! The one primitive the simulator stack needs is an *order-preserving*
//! parallel map: independent work items (kernel launches, sweep
//! configurations) fanned across cores with results returned **in input
//! order**, so parallel profiling is bit-identical to serial profiling.
//! Work is distributed through an atomic cursor (work stealing degenerates
//! to chunk-of-one self-scheduling), which load-balances the wildly uneven
//! launch costs of GNN pipelines (an `sgemm` can be 100× an elementwise).
//!
//! # Example
//!
//! ```
//! let squares = gsuite_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used by [`par_map`]: the `GSUITE_THREADS`
/// environment variable when set, otherwise `std::thread::available_parallelism`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("GSUITE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// `f` receives `(index, &item)`. Each worker pulls the next unclaimed
/// index from a shared atomic cursor, so uneven item costs are balanced
/// automatically. The output is deterministic: element `i` of the result
/// is exactly `f(i, &items[i])` regardless of thread count or scheduling.
///
/// With one item (or one available core) this runs inline on the calling
/// thread — no spawn overhead for trivial fan-outs.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (remaining items may be
/// skipped).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(items, default_threads(), f)
}

/// [`par_map`] with an explicit worker count (`1` forces serial execution).
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                // Lock only to deposit the finished result; compute runs
                // unlocked, so contention is one uncontended-in-practice
                // lock per item.
                slots.lock().expect("no poisoned writers")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every index was claimed exactly once"))
        .collect()
}

/// Runs two closures potentially in parallel and returns both results —
/// rayon's `join` shape, used for two-way splits.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if default_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map_threads(&items, 1, |_, &x| x.wrapping_mul(0x9E3779B9) >> 7);
        let parallel = par_map_threads(&items, 8, |_, &x| x.wrapping_mul(0x9E3779B9) >> 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn uneven_costs_balance() {
        // Heavier items early; correctness must not depend on scheduling.
        let items: Vec<usize> = (0..64).rev().collect();
        let out = par_map_threads(&items, 4, |_, &n| {
            let mut acc = 0u64;
            for i in 0..(n * 1000) as u64 {
                acc = acc.wrapping_add(i ^ acc.rotate_left(7));
            }
            (n, acc)
        });
        for (slot, &(n, _)) in out.iter().enumerate() {
            assert_eq!(items[slot], n);
        }
    }
}
