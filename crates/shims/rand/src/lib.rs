//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset this repository uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<T>()` and
//! `Rng::gen_range(Range)` — on top of xoshiro256++ seeded through
//! SplitMix64 (the same construction the real `SmallRng` uses on 64-bit
//! targets). Streams are deterministic in the seed, which is all the
//! repository's reproducibility story requires; they do *not* bit-match
//! the real crate's streams.

/// Sampling support: types producible from raw RNG output.
pub trait Standard64: Sized {
    /// Derives a value from one (or two) raw 64-bit draws.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` (uniform over the type's natural range;
    /// floats are uniform in `[0, 1)`).
    fn gen<T: Standard64>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait UniformRange: Sized {
    /// Samples uniformly from `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Widening multiply keeps bias negligible for the spans the
                // repository uses (all far below 2^64). Two's-complement
                // wrapping addition keeps start + offset correct even for
                // signed ranges whose span exceeds the type's max (e.g.
                // i32::MIN..i32::MAX).
                let draw = rng.next_u64() as u128;
                range.start.wrapping_add(((draw * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformRange for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = f64::from_rng(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl UniformRange for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = f32::from_rng(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl Standard64 for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard64 for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard64 for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard64 for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard64 for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn extreme_signed_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
        }
        // Reaches both ends of a tiny range.
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[rng.gen_range(0usize..2)] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
