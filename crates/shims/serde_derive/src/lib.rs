//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io dependency is unavailable in the build environment,
//! and nothing in this repository *calls* serialization methods yet — the
//! derives exist so types stay annotated for a future swap to real serde.
//! Each derive therefore expands to an empty marker `impl`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier the derive is attached to (the first identifier
/// after the `struct`/`enum` keyword) plus its generics, and emits
/// `impl Trait for Type` with those generics passed through unconstrained.
fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let Some(name) = name else {
        return TokenStream::new();
    };
    // Collect generic parameter names (identifiers at depth 1 of a <...>
    // group that directly follow `<` or `,`), ignoring bounds/defaults.
    let mut generics: Vec<String> = Vec::new();
    let mut lifetimes: Vec<String> = Vec::new();
    {
        let rest: Vec<TokenTree> = tokens.collect();
        let mut depth = 0i32;
        let mut expect_param = false;
        let mut i = 0;
        while i < rest.len() {
            match &rest[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    expect_param = depth == 1;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                    if let Some(TokenTree::Ident(id)) = rest.get(i + 1) {
                        lifetimes.push(format!("'{id}"));
                        expect_param = false;
                        i += 1;
                    }
                }
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let s = id.to_string();
                    if s != "const" {
                        generics.push(s);
                        expect_param = false;
                    }
                }
                TokenTree::Group(_) if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
    }
    let params: Vec<String> = lifetimes.iter().cloned().chain(generics.clone()).collect();
    let code = if params.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        let p = params.join(", ");
        format!("impl<{p}> {trait_path} for {name}<{p}> {{}}")
    };
    code.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op `Deserialize` derive: emits a marker `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
