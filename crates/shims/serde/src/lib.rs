//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim keeps the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compiling. The traits are empty markers and the derives are
//! no-ops: nothing in the repository performs (de)serialization through
//! serde yet — structured output is emitted by hand (see
//! `gsuite_profile::report` and `gsuite_bench`). Swapping this shim for the
//! real crates.io `serde` is a one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided — the real
/// trait is `Deserialize<'de>`, but as a pure marker no lifetime is
/// needed).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
