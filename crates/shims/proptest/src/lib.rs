//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! implements the strategy subset the repository's property tests use:
//! integer/float range strategies, tuples (arity 2–4), [`Just`],
//! [`Strategy::prop_map`], [`collection::vec`], [`bool::ANY`], the
//! [`proptest!`] test macro and the `prop_assert*` macros.
//!
//! Semantics differ from the real crate in one deliberate way: cases are
//! sampled from a seed derived from the test name (stable across runs and
//! platforms) and failures are *not* shrunk — the failing inputs are
//! printed as-is via the panic message. This keeps the tests deterministic
//! and dependency-free; swapping back to crates.io proptest requires no
//! source changes.

use std::ops::Range;

/// A deterministic sample source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for `(test_name, case_index)`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Uniform choice over boxed alternatives — the [`prop_oneof!`] backend.
pub struct OneOf<V> {
    /// The alternatives chosen among.
    pub options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// A `Vec` strategy: `size` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The `vec` strategy type.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-bool strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration (subset of `proptest::test_runner`).
pub mod test_runner {
    /// How many sampled cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

/// The common-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` here — the shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+],
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically sampled
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($config).cases; $($rest)*);
    };
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            for case in 0..cases as u64 {
                let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut prop_rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::test_runner::Config::default().cases; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = crate::Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::Strategy::sample(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::for_case("vecs", 1);
        let s = crate::collection::vec(0u8..10, 3..7);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0u8..10, 5usize);
        assert_eq!(crate::Strategy::sample(&fixed, &mut rng).len(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_samples_and_asserts(a in 1u64..100, flip in crate::bool::ANY, pair in (0u32..4, 0u32..4)) {
            prop_assert!((1..100).contains(&a));
            let _ = flip;
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn oneof_and_just_work(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!([1u8, 2, 5, 6].contains(&v));
        }
    }
}
