//! Shared sweep options and helpers (formerly `gsuite_bench`'s top level):
//! mode flags, the dataset scale policy, backend policies, and the
//! fan-out/formatting primitives every figure renderer uses.

use std::path::PathBuf;

use gsuite_core::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use gsuite_core::pipeline::PipelineRun;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::{HwProfiler, PipelineProfile, Profiler, SimProfiler, TextTable};

/// Common figure/scenario options.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// Tiny scales / sampling caps for smoke runs.
    pub quick: bool,
    /// Full Table IV scales everywhere.
    pub full: bool,
    /// Optional CSV output directory.
    pub csv_dir: Option<PathBuf>,
    /// Extra ceiling on the per-kernel CTA sampling caps of *both*
    /// backends, on top of the mode policy. `None` (the default, and the
    /// only value the CLI flags produce) leaves the mode policy untouched;
    /// the golden-profile suite sets a small cap so every registry
    /// scenario — cycle simulator included — stays affordable under
    /// `cargo test` in debug builds.
    pub max_ctas_cap: Option<u64>,
    /// Forces one plan-optimization level on every expanded cell,
    /// replacing the spec's `opt_levels` axis (`run-scenario --opt 0|2`).
    pub opt_override: Option<gsuite_core::OptLevel>,
    /// Forces one modeled-device (shard) count on every expanded cell,
    /// replacing the spec's `gpus_per_run` axis (`run-scenario --shards N`).
    pub shards_override: Option<usize>,
    /// Forces one graph-partition strategy on every sharded cell
    /// (`run-scenario --partitioner hash|range|edgecut`).
    pub partitioner_override: Option<gsuite_graph::PartitionStrategy>,
    /// Forces one mini-batch size on every expanded cell, replacing the
    /// spec's `batch_sizes` axis (`run-scenario --batch-size N`; `0`
    /// forces full-graph inference).
    pub batch_size_override: Option<usize>,
    /// Forces one per-layer fanout vector on every expanded cell,
    /// replacing the spec's `fanouts` axis (`run-scenario --fanout 10x5`).
    pub fanout_override: Option<Vec<usize>>,
}

impl BenchOpts {
    /// Quick-mode options (tiny scales, small sampling caps).
    pub fn quick() -> Self {
        BenchOpts {
            quick: true,
            ..BenchOpts::default()
        }
    }

    /// The golden-profile test mode: quick scales plus a hard 32-CTA
    /// sampling cap, cheap enough for debug-build `cargo test`.
    pub fn golden() -> Self {
        BenchOpts {
            quick: true,
            max_ctas_cap: Some(32),
            ..BenchOpts::default()
        }
    }

    /// Parses `--quick`, `--full` and `--csv DIR` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags, so figure binaries
    /// fail fast rather than silently measuring the wrong thing.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::from_args(&args) {
            Ok(opts) => opts,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parses the figure-binary flags from an argument slice.
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown flags or a missing `--csv`
    /// directory.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Result<Self, String> {
        let mut opts = BenchOpts::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_ref() {
                "--quick" => {
                    opts.quick = true;
                    i += 1;
                }
                "--full" => {
                    opts.full = true;
                    i += 1;
                }
                "--csv" => {
                    let dir = args
                        .get(i + 1)
                        .ok_or_else(|| "--csv needs a directory".to_string())?;
                    opts.csv_dir = Some(PathBuf::from(dir.as_ref()));
                    i += 2;
                }
                other => {
                    return Err(format!(
                        "unknown flag {other:?} (expected --quick | --full | --csv DIR)"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// The dataset scale policy (see crate docs).
    pub fn scale_for(&self, dataset: Dataset) -> f64 {
        if self.full {
            return 1.0;
        }
        if self.quick {
            return match dataset {
                Dataset::Cora | Dataset::CiteSeer => 0.05,
                Dataset::PubMed => 0.02,
                Dataset::Reddit => 0.001,
                Dataset::LiveJournal => 0.0002,
                Dataset::OgbnMag => 0.0005,
            };
        }
        match dataset {
            Dataset::Cora | Dataset::CiteSeer | Dataset::PubMed => 1.0,
            Dataset::Reddit => 0.02,
            Dataset::LiveJournal => 0.005,
            Dataset::OgbnMag => 0.005,
        }
    }

    /// The cycle-simulator backend policy: a full 80-SM device for the
    /// small citation graphs (whose Fig. 7 idle behaviour depends on real
    /// SM counts) and a proportionally scaled device for the big graphs.
    pub fn sim_for(&self, dataset: Dataset) -> SimProfiler {
        let max_ctas = self.cap_ctas(if self.quick { 256 } else { 4096 });
        let sim = match dataset {
            Dataset::Cora | Dataset::CiteSeer | Dataset::PubMed => {
                if self.quick {
                    SimProfiler::scaled(16)
                } else {
                    SimProfiler::new(gsuite_gpu::Simulator::new(
                        gsuite_gpu::GpuConfig::v100(),
                        gsuite_gpu::SimOptions::default(),
                    ))
                }
            }
            Dataset::Reddit | Dataset::LiveJournal | Dataset::OgbnMag => SimProfiler::scaled(16),
        };
        sim.max_ctas(Some(max_ctas))
    }

    /// The analytical (nvprof-like) backend with a sampling cap matched to
    /// the mode.
    pub fn hw(&self) -> HwProfiler {
        HwProfiler::v100().max_ctas(self.cap_ctas(if self.quick { 512 } else { 8192 }))
    }

    /// Applies [`BenchOpts::max_ctas_cap`] to a mode-policy CTA cap.
    pub fn cap_ctas(&self, mode_cap: u64) -> u64 {
        match self.max_ctas_cap {
            Some(cap) => mode_cap.min(cap),
            None => mode_cap,
        }
    }

    /// Hidden width used across the evaluation sweeps.
    pub fn hidden(&self) -> usize {
        16
    }

    /// Layer count used across the evaluation sweeps (the paper's default
    /// 2-layer pipelines).
    pub fn layers(&self) -> usize {
        2
    }

    /// Emits a table: prints it and, with `--csv`, writes `<name>.csv`.
    pub fn emit(&self, name: &str, title: &str, table: &TextTable) {
        println!("## {title}\n");
        println!("{}", table.render());
        if let Some(dir) = &self.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            gsuite_profile::write_csv(table, &path).expect("write csv");
            println!("[csv] {}", path.display());
        }
    }

    /// The standard reproducibility header as a string (ends without a
    /// trailing newline; callers add spacing).
    pub fn header_text(&self, figure: &str, description: &str) -> String {
        let mode = if self.full {
            "full"
        } else if self.quick {
            "quick"
        } else {
            "default"
        };
        let cap = match self.max_ctas_cap {
            Some(cap) => format!(" | max-ctas<={cap}"),
            None => String::new(),
        };
        format!(
            "=== gSuite-rs :: {figure} — {description}\nmode={mode}{cap} | scales: {}",
            Dataset::ALL
                .map(|d| format!("{}={}", d.spec().short, self.scale_for(d)))
                .join(" ")
        )
    }

    /// Prints the standard reproducibility header.
    pub fn header(&self, figure: &str, description: &str) {
        println!("{}", self.header_text(figure, description));
        println!();
    }
}

/// A `RunConfig` for one sweep point.
pub fn sweep_config(
    opts: &BenchOpts,
    framework: FrameworkKind,
    model: GnnModel,
    comp: CompModel,
    dataset: Dataset,
) -> RunConfig {
    RunConfig {
        model,
        comp,
        dataset,
        scale: opts.scale_for(dataset),
        layers: opts.layers(),
        hidden: opts.hidden(),
        framework,
        seed: 42,
        functional_math: false, // profiling sweeps never need host math
        opt: gsuite_core::OptLevel::O0,
        gpus_per_run: 1,
        partitioner: gsuite_graph::PartitionStrategy::Hash,
        batch_size: 0,
        fanout: Vec::new(),
        seed_node: None,
    }
}

/// Builds and profiles one pipeline; panics on unsupported combinations
/// (callers filter those out).
pub fn profile_pipeline(config: &RunConfig, profiler: &dyn Profiler) -> PipelineProfile {
    let graph = config.load_graph();
    let run = PipelineRun::build(&graph, config)
        .unwrap_or_else(|e| panic!("cannot build {}: {e}", config.label()));
    run.profile(profiler)
}

/// Runs `f` over every sweep point in parallel, returning results in input
/// order — the figure binaries' fan-out primitive.
///
/// Every `(framework, model, dataset)` cell of a paper figure is an
/// independent build+profile, so the sweep is embarrassingly parallel;
/// input-order results keep table rows deterministic regardless of core
/// count (`GSUITE_THREADS=1` forces a serial sweep). Cells that would be
/// invalid combinations should be encoded by `f` returning a placeholder,
/// not by panicking.
pub fn par_sweep<C, R, F>(points: &[C], f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    gsuite_par::par_map(points, |_, point| f(point))
}

/// The `(model, comp)` pairs gSuite provides (paper §V-A: SAGE is MP-only).
pub fn gsuite_pairs() -> Vec<(GnnModel, CompModel)> {
    vec![
        (GnnModel::Gcn, CompModel::Mp),
        (GnnModel::Gcn, CompModel::Spmm),
        (GnnModel::Gin, CompModel::Mp),
        (GnnModel::Gin, CompModel::Spmm),
        (GnnModel::Sage, CompModel::Mp),
    ]
}

/// Formats a fraction as `"12.3%"`.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_policy_orders_modes() {
        let quick = BenchOpts::quick();
        let default = BenchOpts::default();
        let full = BenchOpts {
            full: true,
            ..BenchOpts::default()
        };
        for d in Dataset::ALL {
            assert!(quick.scale_for(d) <= default.scale_for(d));
            assert!(default.scale_for(d) <= full.scale_for(d));
            assert_eq!(full.scale_for(d), 1.0);
        }
    }

    #[test]
    fn gsuite_pairs_exclude_sage_spmm() {
        let pairs = gsuite_pairs();
        assert_eq!(pairs.len(), 5);
        assert!(!pairs.contains(&(GnnModel::Sage, CompModel::Spmm)));
    }

    #[test]
    fn quick_profile_runs() {
        let opts = BenchOpts::quick();
        let cfg = sweep_config(
            &opts,
            FrameworkKind::GSuite,
            GnnModel::Gcn,
            CompModel::Mp,
            Dataset::Cora,
        );
        let profile = profile_pipeline(&cfg, &opts.hw());
        assert!(!profile.kernels.is_empty());
        assert!(profile.total_time_ms() > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(ms(0.01234), "0.0123");
        assert_eq!(ms(12.345), "12.35");
        assert_eq!(ms(1234.5), "1234");
    }

    #[test]
    fn ctas_cap_tightens_both_backends() {
        let golden = BenchOpts::golden();
        assert_eq!(golden.cap_ctas(256), 32);
        assert_eq!(golden.cap_ctas(16), 16);
        let quick = BenchOpts::quick();
        assert_eq!(quick.cap_ctas(256), 256);
        // The cap is visible in the reproducibility header (goldens are
        // self-describing); plain modes are unchanged.
        assert!(golden.header_text("X", "y").contains("max-ctas<=32"));
        assert!(!quick.header_text("X", "y").contains("max-ctas"));
    }

    #[test]
    fn from_args_parses_flags() {
        let opts = BenchOpts::from_args(&["--quick", "--csv", "/tmp/x"]).unwrap();
        assert!(opts.quick && !opts.full);
        assert_eq!(
            opts.csv_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert!(BenchOpts::from_args(&["--nope"]).is_err());
        assert!(BenchOpts::from_args(&["--csv"]).is_err());
    }
}
