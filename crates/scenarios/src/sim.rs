//! The simulated-clock execution model of the serving layer: a
//! deterministic discrete-event simulation — FIFO bounded queue, `W`
//! workers, the byte-accounted LRU cache and request coalescing — over
//! *modeled* service times (the profiled pipeline's own end-to-end
//! milliseconds plus a modeled build cost on cache misses).
//!
//! Everything here is pure `f64` arithmetic over a fixed iteration order:
//! the same request stream always yields the same per-request latencies,
//! the same hit/miss counters and the same eviction sequence, regardless
//! of host, core count or wall time — the property that makes
//! `gsuite-cli loadgen --clock sim` a *reproducible* benchmark rather
//! than a measurement of the load generator's machine.
//!
//! # Fault injection and resilience
//!
//! The simulation optionally executes under a seeded
//! [`FaultPlan`] and a
//! [`ResilienceConfig`]: per-attempt
//! slowdowns, transient failures, worker crashes, eviction storms and
//! degraded-interconnect inflation of the Exchange share, against
//! deadlines (with cooperative cancellation that reclaims the worker at
//! the deadline), bounded retries with seeded jittered backoff, a
//! per-config circuit breaker and graceful degradation (O0 compile
//! fallback, stale-but-valid serves past the soft TTL). Fault draws are
//! keyed on `(seed, request index, attempt)` only, so a faulted run is
//! exactly as replayable as a healthy one. With no plan and an inert
//! config, every code path below is numerically identical to the
//! fault-free model.

use crate::cache::{ByteLru, LruStats};
use crate::resilience::{CircuitBreaker, FaultDraw, FaultPlan, ResilienceConfig};

/// How the serving layer satisfied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Graph + pipeline came from the LRU cache.
    Hit,
    /// Graph + pipeline were built for this request (and cached).
    Miss,
    /// The request attached to an identical in-flight execution and
    /// shared its profile run.
    Coalesced,
}

impl CacheDisposition {
    /// Wire-format name (`hit`, `miss`, `coalesced`).
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Coalesced => "coalesced",
        }
    }
}

impl std::fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The modeled execution costs of one distinct request configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCosts {
    /// Modeled inference milliseconds (the profile's end-to-end time).
    pub service_ms: f64,
    /// Modeled graph-load + pipeline-build milliseconds paid on a cache
    /// miss.
    pub build_ms: f64,
    /// The interconnect-attributable share of
    /// [`SimCosts::service_ms`] (Exchange transfers on sharded runs;
    /// zero for single-device configs). A degraded-link fault with
    /// factor `f` inflates the attempt by `exchange_ms · (f − 1)`.
    pub exchange_ms: f64,
    /// Cache accounting bytes of the built entry.
    pub bytes: u64,
    /// `Some(msg)` when the configuration cannot build (the request
    /// completes as an error after paying the build cost).
    pub error: Option<String>,
}

/// The modeled graph-load + pipeline-build cost charged on a cache miss in
/// sim-clock mode: a flat dispatch term plus ~2 ms per accounted MiB.
pub fn build_cost_ms(bytes: u64) -> f64 {
    0.2 + bytes as f64 / (512.0 * 1024.0)
}

/// Queue/worker/cache parameters of the simulated service, plus the
/// optional fault plan and resilience policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Simulated worker count.
    pub workers: usize,
    /// Bounded queue depth; arrivals beyond it are shed (open loop only).
    pub queue_cap: usize,
    /// LRU capacity in bytes.
    pub cache_bytes: u64,
    /// Seeded fault injection; `None` runs fault-free.
    pub fault: Option<FaultPlan>,
    /// Deadline/retry/breaker/degradation policy (inert by default).
    pub resilience: ResilienceConfig,
}

impl SimParams {
    /// Fault-free parameters with an inert resilience policy — the
    /// historical simulation model.
    pub fn new(workers: usize, queue_cap: usize, cache_bytes: u64) -> Self {
        SimParams {
            workers,
            queue_cap,
            cache_bytes,
            fault: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// What happened to one simulated request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimDisposition {
    /// Completed; how the cache satisfied it.
    Done(CacheDisposition),
    /// Completed as an error response (unbuildable configuration, or an
    /// injected transient failure that exhausted its retries).
    Error,
    /// Shed at arrival: queue full.
    Rejected,
    /// The per-request deadline expired (queued past it, or cancelled
    /// cooperatively mid-attempt).
    TimedOut,
    /// Shed at arrival: the config's circuit breaker was open.
    CircuitOpen,
    /// The executing worker crashed and retries (if any) were exhausted.
    Crashed,
}

/// One simulated request's timing record.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRecord {
    /// Index into the distinct-configuration table.
    pub key: usize,
    /// Simulated submission time (ms since sim start).
    pub submit_ms: f64,
    /// Milliseconds waited for a worker.
    pub queue_ms: f64,
    /// Milliseconds of (possibly shared) build + inference work.
    pub service_ms: f64,
    /// Submission-to-completion milliseconds (`0` for rejected requests).
    pub latency_ms: f64,
    /// Outcome.
    pub disposition: SimDisposition,
}

/// The full outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// One record per request, in stream order.
    pub records: Vec<SimRecord>,
    /// Cache counters after the run.
    pub cache: LruStats,
    /// Requests that shared an in-flight execution.
    pub coalesced: u64,
    /// Requests shed by the bounded queue.
    pub rejected: u64,
    /// Requests whose deadline expired.
    pub timeouts: u64,
    /// Requests shed by an open circuit breaker.
    pub circuit_open: u64,
    /// Injected worker crashes observed (each crashed attempt counts,
    /// retried or not).
    pub crashed: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Requests served degraded (O0 compile fallback).
    pub degraded: u64,
    /// Stale-but-valid cache entries served past the soft TTL under
    /// deadline pressure.
    pub stale_serves: u64,
    /// Last completion time (ms since sim start).
    pub makespan_ms: f64,
}

/// An execution in flight: submitted (at or before the current clock,
/// since requests are fed in nondecreasing submission order), possibly
/// not yet dispatched to a worker.
struct InFlight {
    key: usize,
    start_ms: f64,
    finish_ms: f64,
    /// Whether this execution completes as an error response (coalesced
    /// requests share the outcome, error or not — exactly like the live
    /// server's shared `Completion`).
    error: bool,
}

/// How one attempt's cache interaction resolved.
#[derive(PartialEq, Clone, Copy)]
enum AttemptKind {
    Hit,
    /// Hit past the soft TTL, served stale under deadline pressure.
    HitStale,
    /// Hit past the soft TTL, rebuilt in line (pays the build cost).
    Refresh,
    Miss,
    /// Miss built with the O0 fallback under deadline pressure (cheaper,
    /// not cached).
    MissDegraded,
}

/// The simulation core: workers, queue accounting, cache, the coalescing
/// window, and the fault/resilience machinery. Requests are fed one at a
/// time in nondecreasing submission order.
struct ServiceSim<'a> {
    costs: &'a [SimCosts],
    params: SimParams,
    /// Per-worker next-free time.
    worker_free: Vec<f64>,
    /// Executions whose finish time is still ahead of the clock.
    in_flight: Vec<InFlight>,
    /// Cached entries map to their build-completion time (the soft-TTL
    /// clock).
    cache: ByteLru<usize, f64>,
    /// Per-config breakers, present only when the policy enables them.
    breakers: Option<Vec<CircuitBreaker>>,
    coalesced: u64,
    rejected: u64,
    timeouts: u64,
    circuit_open: u64,
    crashed: u64,
    retries: u64,
    degraded: u64,
    stale_serves: u64,
    makespan_ms: f64,
}

impl<'a> ServiceSim<'a> {
    fn new(costs: &'a [SimCosts], params: SimParams) -> Self {
        let breakers = params
            .resilience
            .breaker
            .map(|cfg| (0..costs.len()).map(|_| CircuitBreaker::new(cfg)).collect());
        ServiceSim {
            costs,
            worker_free: vec![0.0; params.workers.max(1)],
            in_flight: Vec::new(),
            cache: ByteLru::new(params.cache_bytes),
            breakers,
            coalesced: 0,
            rejected: 0,
            timeouts: 0,
            circuit_open: 0,
            crashed: 0,
            retries: 0,
            degraded: 0,
            stale_serves: 0,
            makespan_ms: 0.0,
            params,
        }
    }

    fn record_breaker(&mut self, key: usize, now_ms: f64, success: bool) {
        if let Some(breakers) = &mut self.breakers {
            breakers[key].record(now_ms, success);
        }
    }

    fn finish(&mut self, record: SimRecord) -> SimRecord {
        self.makespan_ms = self.makespan_ms.max(record.submit_ms + record.latency_ms);
        record
    }

    /// Feeds request number `req` (the fault-draw key) for config `key`
    /// submitted at `t`; returns its record. `reject` enables the
    /// bounded-queue shed path (open loop).
    fn offer(&mut self, req: u64, key: usize, t: f64, reject: bool) -> SimRecord {
        // Retire executions that finished before `t`.
        self.in_flight.retain(|e| e.finish_ms > t);

        let shed = |key, t, disposition| SimRecord {
            key,
            submit_ms: t,
            queue_ms: 0.0,
            service_ms: 0.0,
            latency_ms: 0.0,
            disposition,
        };

        // Known-bad-config shed: the breaker is consulted before queueing
        // or coalescing, exactly like the live server's submit path.
        if let Some(breakers) = &mut self.breakers {
            if !breakers[key].admit(t) {
                self.circuit_open += 1;
                return shed(key, t, SimDisposition::CircuitOpen);
            }
        }

        // Coalescing window: an identical configuration is in flight.
        if let Some(e) = self.in_flight.iter().find(|e| e.key == key) {
            self.coalesced += 1;
            let finish = e.finish_ms;
            let start = e.start_ms;
            let disposition = if e.error {
                SimDisposition::Error
            } else {
                SimDisposition::Done(CacheDisposition::Coalesced)
            };
            return self.finish(SimRecord {
                key,
                submit_ms: t,
                queue_ms: (start - t).max(0.0),
                service_ms: finish - start.max(t),
                latency_ms: finish - t,
                disposition,
            });
        }

        // Backpressure: executions not yet started at `t` are the queue.
        if reject {
            let waiting = self.in_flight.iter().filter(|e| e.start_ms > t).count();
            if waiting >= self.params.queue_cap.max(1) {
                self.rejected += 1;
                return shed(key, t, SimDisposition::Rejected);
            }
        }

        // Dispatch to the earliest-free worker (FIFO; ties to the lowest
        // index keep the schedule deterministic).
        let w = min_index(&self.worker_free);
        let start = t.max(self.worker_free[w]);
        let deadline = self.params.resilience.deadline_ms.map(|d| t + d);

        // Cooperative cancellation while queued: a request whose worker
        // only frees past the deadline is abandoned before any work runs
        // (the worker is untouched).
        if let Some(dl) = deadline {
            if start >= dl {
                self.timeouts += 1;
                return self.finish(SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: dl - t,
                    service_ms: 0.0,
                    latency_ms: dl - t,
                    disposition: SimDisposition::TimedOut,
                });
            }
        }

        let cost = &self.costs[key];
        let mut clock = start;
        let mut attempt: u32 = 0;
        let mut retries_used: u32 = 0;
        let mut any_crash = false;
        loop {
            let draw = match &self.params.fault {
                Some(plan) => plan.draw(req, attempt),
                None => FaultDraw::healthy(),
            };
            if draw.evict > 0 {
                self.cache.evict_lru(draw.evict);
            }

            // Unbuildable configurations pay the build (discovery) cost
            // and complete as errors; nothing enters the cache and
            // retries cannot help.
            if cost.error.is_some() {
                self.cache.get(&key);
                let service = cost.build_ms * draw.slow_factor;
                if let Some(dl) = deadline {
                    if clock + service > dl {
                        return self.cancel_at(key, t, start, w, dl);
                    }
                }
                clock += service;
                self.worker_free[w] = clock;
                self.in_flight.push(InFlight {
                    key,
                    start_ms: start,
                    finish_ms: clock,
                    error: true,
                });
                self.record_breaker(key, clock, false);
                return self.finish(SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: start - t,
                    service_ms: clock - start,
                    latency_ms: clock - t,
                    disposition: SimDisposition::Error,
                });
            }

            // The attempt's cache interaction and base cost. Degraded
            // interconnect inflates the Exchange share of the service
            // time.
            let service_base = cost.service_ms + cost.exchange_ms * (draw.link_factor - 1.0);
            let (mut attempt_ms, mut kind) = match self.cache.get(&key).copied() {
                Some(built_at) => match self.params.resilience.stale_ttl_ms {
                    Some(ttl) if clock - built_at > ttl => {
                        (cost.build_ms + service_base, AttemptKind::Refresh)
                    }
                    _ => (service_base, AttemptKind::Hit),
                },
                None => (cost.build_ms + service_base, AttemptKind::Miss),
            };
            attempt_ms *= draw.slow_factor;

            // Graceful degradation under deadline pressure: serve the
            // stale entry instead of refreshing, or fall back to the O0
            // compile (skip optimize passes — modeled at half the build
            // cost; degraded builds are not cached).
            if let Some(dl) = deadline {
                if clock + attempt_ms > dl && self.params.resilience.degrade {
                    match kind {
                        AttemptKind::Refresh => {
                            attempt_ms = service_base * draw.slow_factor;
                            kind = AttemptKind::HitStale;
                        }
                        AttemptKind::Miss => {
                            attempt_ms = (0.5 * cost.build_ms + service_base) * draw.slow_factor;
                            kind = AttemptKind::MissDegraded;
                        }
                        _ => {}
                    }
                }
                if clock + attempt_ms > dl {
                    return self.cancel_at(key, t, start, w, dl);
                }
            }
            clock += attempt_ms;
            match kind {
                AttemptKind::Miss | AttemptKind::Refresh => {
                    self.cache.insert(key, clock, cost.bytes);
                }
                AttemptKind::MissDegraded => self.degraded += 1,
                AttemptKind::HitStale => self.stale_serves += 1,
                AttemptKind::Hit => {}
            }

            // Injected failures: the attempt's work is lost; retry with
            // seeded jittered backoff while the policy allows.
            if draw.crash || draw.transient {
                if draw.crash {
                    self.crashed += 1;
                    any_crash = true;
                }
                if retries_used < self.params.resilience.retry.max_retries {
                    retries_used += 1;
                    self.retries += 1;
                    let jitter = self
                        .params
                        .fault
                        .as_ref()
                        .map_or(0.0, |plan| plan.jitter(req, attempt));
                    clock += self
                        .params
                        .resilience
                        .retry
                        .backoff_ms(retries_used, jitter);
                    attempt += 1;
                    continue;
                }
                self.worker_free[w] = clock;
                self.in_flight.push(InFlight {
                    key,
                    start_ms: start,
                    finish_ms: clock,
                    error: true,
                });
                self.record_breaker(key, clock, false);
                let disposition = if any_crash {
                    SimDisposition::Crashed
                } else {
                    SimDisposition::Error
                };
                return self.finish(SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: start - t,
                    service_ms: clock - start,
                    latency_ms: clock - t,
                    disposition,
                });
            }

            // Success.
            self.worker_free[w] = clock;
            self.in_flight.push(InFlight {
                key,
                start_ms: start,
                finish_ms: clock,
                error: false,
            });
            self.record_breaker(key, clock, true);
            let cached = match kind {
                AttemptKind::Hit | AttemptKind::HitStale | AttemptKind::Refresh => {
                    CacheDisposition::Hit
                }
                AttemptKind::Miss | AttemptKind::MissDegraded => CacheDisposition::Miss,
            };
            return self.finish(SimRecord {
                key,
                submit_ms: t,
                queue_ms: start - t,
                service_ms: clock - start,
                latency_ms: clock - t,
                disposition: SimDisposition::Done(cached),
            });
        }
    }

    /// Cooperative mid-attempt cancellation: the worker is reclaimed at
    /// the deadline (the next plan-phase checkpoint observes the expired
    /// budget) and the config's breaker records a failure.
    fn cancel_at(&mut self, key: usize, t: f64, start: f64, w: usize, dl: f64) -> SimRecord {
        self.worker_free[w] = dl;
        self.timeouts += 1;
        self.record_breaker(key, dl, false);
        self.finish(SimRecord {
            key,
            submit_ms: t,
            queue_ms: start - t,
            service_ms: dl - start,
            latency_ms: dl - t,
            disposition: SimDisposition::TimedOut,
        })
    }

    fn into_outcome(self, records: Vec<SimRecord>) -> SimOutcome {
        SimOutcome {
            records,
            cache: self.cache.stats(),
            coalesced: self.coalesced,
            rejected: self.rejected,
            timeouts: self.timeouts,
            circuit_open: self.circuit_open,
            crashed: self.crashed,
            retries: self.retries,
            breaker_trips: self
                .breakers
                .as_ref()
                .map_or(0, |bs| bs.iter().map(CircuitBreaker::trips).sum()),
            degraded: self.degraded,
            stale_serves: self.stale_serves,
            makespan_ms: self.makespan_ms,
        }
    }
}

/// Simulates an **open-loop** run: request `i` (a distinct-configuration
/// index in `keys`) is submitted at `arrivals[i]` milliseconds regardless
/// of completions; a full queue sheds arrivals.
///
/// # Panics
///
/// Panics if `keys` and `arrivals` differ in length or arrivals are not
/// nondecreasing.
pub fn simulate_open(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
) -> SimOutcome {
    assert_eq!(keys.len(), arrivals.len(), "one arrival per request");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );
    let mut sim = ServiceSim::new(costs, params);
    let records = keys
        .iter()
        .zip(arrivals)
        .enumerate()
        .map(|(i, (&key, &t))| sim.offer(i as u64, key, t, true))
        .collect();
    sim.into_outcome(records)
}

/// Simulates a **closed-loop** run: `clients` clients share the request
/// stream; each submits its next request the moment its previous one
/// completes (zero think time). The queue never exceeds the client count,
/// so nothing is shed.
pub fn simulate_closed(
    keys: &[usize],
    clients: usize,
    costs: &[SimCosts],
    params: SimParams,
) -> SimOutcome {
    let clients = clients.max(1);
    let mut sim = ServiceSim::new(costs, params);
    let mut available: Vec<f64> = vec![0.0; clients];
    let mut records = Vec::with_capacity(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        let c = min_index(&available);
        let record = sim.offer(i as u64, key, available[c], false);
        available[c] += record.latency_ms.max(0.0);
        records.push(record);
    }
    sim.into_outcome(records)
}

/// Index of the minimum element (first on ties) — worker/client election.
fn min_index(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{BreakerConfig, FaultSpec, RetryPolicy};

    fn costs(n: usize, service: f64, build: f64, bytes: u64) -> Vec<SimCosts> {
        (0..n)
            .map(|_| SimCosts {
                service_ms: service,
                build_ms: build,
                exchange_ms: 0.0,
                bytes,
                error: None,
            })
            .collect()
    }

    fn params(workers: usize, queue: usize, cache: u64) -> SimParams {
        SimParams::new(workers, queue, cache)
    }

    #[test]
    fn single_worker_serializes_and_caches() {
        let costs = costs(1, 10.0, 5.0, 100);
        // Same key three times, back-to-back arrivals after completion.
        let out = simulate_open(&[0, 0, 0], &[0.0, 20.0, 40.0], &costs, params(1, 4, 1000));
        // First: miss (build + service = 15), later: hits (10 each).
        assert_eq!(out.records[0].latency_ms, 15.0);
        assert_eq!(out.records[1].latency_ms, 10.0);
        assert_eq!(out.records[2].latency_ms, 10.0);
        assert_eq!(out.cache.hits, 2);
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.coalesced, 0);
    }

    #[test]
    fn overlapping_identical_requests_coalesce() {
        let costs = costs(1, 10.0, 5.0, 100);
        // Second arrives while the first is still executing.
        let out = simulate_open(&[0, 0], &[0.0, 3.0], &costs, params(2, 4, 1000));
        assert_eq!(out.coalesced, 1);
        assert_eq!(out.records[1].latency_ms, 12.0); // finishes at 15, arrived at 3
        assert_eq!(
            out.records[1].disposition,
            SimDisposition::Done(CacheDisposition::Coalesced)
        );
        // Only one real execution touched the cache.
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.cache.hits, 0);
    }

    #[test]
    fn bounded_queue_sheds_bursts() {
        let costs = costs(3, 100.0, 0.0, 1);
        // Three distinct configs at t=0 on one worker with queue depth 1:
        // first executes, second waits, third is shed.
        let out = simulate_open(&[0, 1, 2], &[0.0, 0.0, 0.0], &costs, params(1, 1, 1000));
        assert_eq!(out.rejected, 1);
        assert_eq!(out.records[2].disposition, SimDisposition::Rejected);
        assert_eq!(out.records[1].queue_ms, 100.0);
    }

    #[test]
    fn eviction_follows_lru_under_pressure() {
        // Cache fits two of three equally sized entries.
        let costs = costs(3, 1.0, 1.0, 100);
        let keys = [0, 1, 2, 0]; // 0 evicted by 2's insertion, so the last 0 misses again
        let arrivals = [0.0, 10.0, 20.0, 30.0];
        let out = simulate_open(&keys, &arrivals, &costs, params(1, 4, 200));
        assert_eq!(out.cache.misses, 4);
        assert_eq!(out.cache.evictions, 2);
        assert_eq!(out.cache.hits, 0);
    }

    #[test]
    fn closed_loop_keeps_clients_busy() {
        let costs = costs(2, 10.0, 0.0, 1);
        let keys = [0, 1, 0, 1, 0, 1];
        let out = simulate_closed(&keys, 2, &costs, params(2, 8, 1000));
        assert_eq!(out.rejected, 0);
        // Two clients, two workers, 10 ms each, 6 requests => 30 ms.
        assert_eq!(out.makespan_ms, 30.0);
        assert!(out.records.iter().all(|r| r.queue_ms == 0.0));
    }

    #[test]
    fn error_configs_complete_as_errors() {
        let mut c = costs(2, 10.0, 5.0, 100);
        c[1].error = Some("unsupported".to_string());
        let out = simulate_open(&[1, 1], &[0.0, 100.0], &c, params(1, 4, 1000));
        assert!(out
            .records
            .iter()
            .all(|r| r.disposition == SimDisposition::Error));
        // Errors never enter the cache: both pay the build cost.
        assert_eq!(out.records[0].latency_ms, 5.0);
        assert_eq!(out.records[1].latency_ms, 5.0);
        assert_eq!(out.cache.entries, 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let costs = costs(4, 3.0, 1.5, 64);
        let keys: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..40).map(|i| i as f64 * 0.75).collect();
        let a = simulate_open(&keys, &arrivals, &costs, params(3, 8, 128));
        let b = simulate_open(&keys, &arrivals, &costs, params(3, 8, 128));
        assert_eq!(a, b);
        let c = simulate_closed(&keys, 5, &costs, params(3, 8, 128));
        let d = simulate_closed(&keys, 5, &costs, params(3, 8, 128));
        assert_eq!(c, d);
    }

    #[test]
    fn faulted_runs_replay_byte_identically() {
        let costs = costs(4, 3.0, 1.5, 64);
        let keys: Vec<usize> = (0..60).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..60).map(|i| i as f64 * 1.25).collect();
        let p = SimParams {
            fault: Some(FaultPlan::mixed(9, 0.3)),
            resilience: ResilienceConfig {
                deadline_ms: Some(40.0),
                retry: RetryPolicy::retries(2),
                breaker: Some(BreakerConfig::default()),
                degrade: true,
                stale_ttl_ms: Some(20.0),
            },
            ..params(2, 8, 256)
        };
        let a = simulate_open(&keys, &arrivals, &costs, p);
        let b = simulate_open(&keys, &arrivals, &costs, p);
        assert_eq!(a, b);
        // The fault mix actually fired something.
        assert!(a.retries + a.timeouts + a.crashed > 0);
    }

    #[test]
    fn transient_faults_retry_then_fail() {
        let costs = costs(1, 10.0, 0.0, 1);
        let always_transient = FaultPlan {
            seed: 1,
            spec: FaultSpec {
                transient_rate: 1.0,
                ..FaultSpec::none()
            },
        };
        let p = SimParams {
            fault: Some(always_transient),
            resilience: ResilienceConfig {
                retry: RetryPolicy {
                    max_retries: 2,
                    base_ms: 4.0,
                    cap_ms: 50.0,
                },
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0], &[0.0], &costs, p);
        assert_eq!(out.records[0].disposition, SimDisposition::Error);
        assert_eq!(out.retries, 2, "both retries spent");
        // 3 attempts x 10 ms plus two jittered backoffs in [2, 4) + [4, 8).
        assert!(out.records[0].latency_ms > 30.0);
        assert!(out.records[0].latency_ms < 42.0);
    }

    #[test]
    fn crashes_surface_as_crashed_and_are_retryable() {
        let costs = costs(1, 10.0, 0.0, 1);
        let always_crash = FaultPlan {
            seed: 5,
            spec: FaultSpec {
                crash_rate: 1.0,
                ..FaultSpec::none()
            },
        };
        let no_retry = SimParams {
            fault: Some(always_crash),
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0], &[0.0], &costs, no_retry);
        assert_eq!(out.records[0].disposition, SimDisposition::Crashed);
        assert_eq!(out.crashed, 1);
        let with_retry = SimParams {
            resilience: ResilienceConfig {
                retry: RetryPolicy::retries(3),
                ..ResilienceConfig::default()
            },
            ..no_retry
        };
        let out = simulate_open(&[0], &[0.0], &costs, with_retry);
        assert_eq!(out.crashed, 4, "initial attempt + 3 retries all crash");
        assert_eq!(out.records[0].disposition, SimDisposition::Crashed);
    }

    #[test]
    fn deadlines_cancel_cooperatively_and_free_the_worker() {
        let costs = costs(2, 100.0, 0.0, 1);
        let p = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(50.0),
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0, 1], &[0.0, 10.0], &costs, p);
        assert_eq!(out.records[0].disposition, SimDisposition::TimedOut);
        assert_eq!(out.records[0].latency_ms, 50.0);
        assert_eq!(out.timeouts, 2);
        // The worker was reclaimed at t=50, so the second request starts
        // there — and times out at its own deadline (10 + 50).
        assert_eq!(out.records[1].queue_ms, 40.0);
        assert_eq!(out.records[1].latency_ms, 50.0);
    }

    #[test]
    fn breaker_sheds_known_bad_configs() {
        let mut c = costs(1, 1.0, 1.0, 1);
        c[0].error = Some("always fails".to_string());
        let p = SimParams {
            resilience: ResilienceConfig {
                breaker: Some(BreakerConfig {
                    window: 4,
                    min_samples: 4,
                    fail_threshold: 0.5,
                    cooldown_ms: 1000.0,
                    half_open_probes: 1,
                }),
                ..ResilienceConfig::default()
            },
            ..params(1, 8, 100)
        };
        let keys = vec![0usize; 8];
        let arrivals: Vec<f64> = (0..8).map(|i| i as f64 * 10.0).collect();
        let out = simulate_open(&keys, &arrivals, &c, p);
        assert_eq!(out.breaker_trips, 1);
        assert_eq!(out.circuit_open, 4, "after 4 failures the rest are shed");
        assert!(out.records[7].disposition == SimDisposition::CircuitOpen);
    }

    #[test]
    fn degradation_falls_back_to_o0_when_the_build_misses_the_deadline() {
        // build 20 + service 10 = 30 > deadline 25, but the O0 fallback
        // (10 + 10 = 20) fits.
        let costs = costs(1, 10.0, 20.0, 5);
        let degrade = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(25.0),
                degrade: true,
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0, 0], &[0.0, 100.0], &costs, degrade);
        assert_eq!(
            out.records[0].disposition,
            SimDisposition::Done(CacheDisposition::Miss)
        );
        assert_eq!(out.records[0].latency_ms, 20.0);
        // Degraded builds are not cached: the second request degrades too.
        assert_eq!(out.cache.entries, 0);
        assert_eq!(out.degraded, 2);
        assert_eq!(out.timeouts, 0);

        // Refresh past the soft TTL happens in line when the budget
        // allows it.
        let warm = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(200.0),
                degrade: true,
                stale_ttl_ms: Some(50.0),
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0, 0], &[0.0, 100.0], &costs, warm);
        // Entry built at t=30; at t=100 it is 70 ms old (> 50 TTL) and the
        // refresh (30 ms) fits the 200 ms deadline: refreshed in line.
        assert_eq!(out.stale_serves, 0);
        assert_eq!(out.records[1].latency_ms, 30.0);
        assert_eq!(out.cache.hits, 1);
        assert_eq!(out.cache.insertions, 2, "the refresh re-inserts");
    }

    #[test]
    fn stale_entries_serve_under_pressure() {
        // Occupy the worker with a second config so the refresh budget
        // runs out while the stale serve still fits.
        let mut c = costs(1, 10.0, 20.0, 5);
        c.push(SimCosts {
            service_ms: 25.0,
            build_ms: 0.0,
            exchange_ms: 0.0,
            bytes: 1,
            error: None,
        });
        let p = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(35.0),
                degrade: true,
                stale_ttl_ms: Some(50.0),
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        // t=0: build+serve config 0 (finish 30). t=90: config 1 occupies
        // the worker until 115. t=100: config 0 again — dispatches at
        // 115, budget left is 20 ms (deadline 135): the 30 ms refresh
        // does not fit, the 10 ms stale serve does.
        let out = simulate_open(&[0, 1, 0], &[0.0, 90.0, 100.0], &c, p);
        assert_eq!(out.stale_serves, 1);
        assert_eq!(
            out.records[2].disposition,
            SimDisposition::Done(CacheDisposition::Hit)
        );
        assert_eq!(out.records[2].latency_ms, 25.0); // 15 queued + 10 served
        assert_eq!(out.timeouts, 0);
    }

    #[test]
    fn degraded_links_inflate_the_exchange_share_only() {
        let mut c = costs(1, 10.0, 0.0, 1);
        c[0].exchange_ms = 2.0;
        let always_link = FaultPlan {
            seed: 2,
            spec: FaultSpec {
                link_rate: 1.0,
                link_factor: 4.0,
                ..FaultSpec::none()
            },
        };
        let p = SimParams {
            fault: Some(always_link),
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0], &[0.0], &c, p);
        // service 10 + exchange 2 x (4 - 1) = 16.
        assert_eq!(out.records[0].latency_ms, 16.0);
    }

    #[test]
    fn eviction_storms_drop_cached_entries() {
        let costs = costs(2, 1.0, 1.0, 10);
        let always_evict = FaultPlan {
            seed: 3,
            spec: FaultSpec {
                evict_rate: 1.0,
                evict_n: 8,
                ..FaultSpec::none()
            },
        };
        let p = SimParams {
            fault: Some(always_evict),
            ..params(1, 4, 1000)
        };
        // Every attempt's storm clears the cache first: all misses.
        let out = simulate_open(&[0, 0, 0], &[0.0, 10.0, 20.0], &costs, p);
        assert_eq!(out.cache.hits, 0);
        assert_eq!(out.cache.misses, 3);
        assert_eq!(out.cache.evictions, 2, "two cached entries were stormed");
    }
}
